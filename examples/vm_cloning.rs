//! Clone a VM across a simulated WAN, twice, and watch temporal locality
//! at the proxy caches do its thing (paper §3.2.3 / Figure 6).
//!
//! The golden image lives on a WAN image server; middleware has
//! pre-processed its memory state (zero map + compressed file channel).
//! The first cloning pays the (compressed) transfer; the second is served
//! from the compute server's proxy disk caches.
//!
//! Run with: `cargo run --release --example vm_cloning`

use gvfs_bench::{run_cloning, CloneParams, CloneScenario};

fn main() {
    let params = CloneParams {
        clones: 3,
        // Quarter-size image so the example finishes in a couple of
        // wall-clock seconds; drop this for the paper-scale run.
        image_scale: Some(4),
        ..CloneParams::default()
    };
    println!(
        "cloning a {} MB-RAM VM three times over the WAN...\n",
        (320 / 4)
    );
    let res = run_cloning(CloneScenario::WanS1, &params);
    for (i, t) in res.times.iter().enumerate() {
        println!(
            "clone #{}: config {:>6}  memory {:>8}  symlink {:>6}  configure {:>6}  resume {:>7}  => total {}",
            i + 1,
            format!("{}", t.copy_config),
            format!("{}", t.copy_memory),
            format!("{}", t.links),
            format!("{}", t.configure),
            format!("{}", t.resume),
            t.total,
        );
    }
    let first = res.times[0].total.as_secs_f64();
    let warm = res.times[1].total.as_secs_f64();
    println!(
        "\ntemporal locality: clone #2 is {:.1}x faster than clone #1",
        first / warm
    );
    println!("(the paper: first clone <160 s, subsequent clones ~25 s)");
}
