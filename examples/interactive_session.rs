//! An interactive "virtual workspace" session (paper §2, In-VIGO): a
//! user edits and rebuilds a document inside a VM whose state sits on a
//! wide-area GVFS mount. Compares response times with and without the
//! client-side proxy disk cache.
//!
//! Run with: `cargo run --release --example interactive_session`

use gvfs_bench::{run_app_scenario, AppParams, AppScenario};
use workloads::latex::{generate, LatexParams};

fn main() {
    let params = AppParams::default();
    let wl = generate(&LatexParams {
        iterations: 6,
        ..LatexParams::default()
    });

    println!("six edit/rebuild iterations of a 190-page LaTeX document,");
    println!("VM state on a WAN mount (~34 ms RTT):\n");

    for scn in [AppScenario::Wan, AppScenario::WanC] {
        let res = run_app_scenario(scn, &wl, &params, 1);
        let run = &res.runs[0];
        print!("{:>6}:", scn.label());
        for (_, secs) in &run.phases {
            print!(" {secs:6.1}s");
        }
        println!("   (total {:.0}s)", run.total);
        if let Some(f) = res.flush_secs {
            println!(
                "        ... then the middleware flushes write-back data in {f:.0}s, off the user's critical path"
            );
        }
    }
    println!(
        "\nThe first iteration cold-reads the tool working set either way; with the\n\
         proxy disk cache (WAN+C) every later iteration responds at near-local speed\n\
         because re-referenced blocks hit the 8 GB cache instead of re-crossing the WAN."
    );
}
