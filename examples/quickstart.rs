//! Quickstart: mount a wide-area GVFS file system and feel the caches.
//!
//! Builds the paper's basic topology — kernel NFS client → client-side
//! caching proxy → WAN → server-side proxy → kernel NFS server — reads a
//! file twice, and prints how the proxy disk cache turns wide-area RTTs
//! into local-disk hits.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, DedupTuning, FileCache,
    IdentityMapper, Middleware, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{KernelClient, KernelConfig, Nfs3Client};
use oncrpc::{RpcClient, WireSpec};
use simnet::{Link, SimDuration, Simulation};
use vfs::{Disk, DiskModel, FileIo};

fn main() {
    let sim = Simulation::new();
    let h = sim.handle();

    // --- image server across the WAN -------------------------------------
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let server = gvfs_bench::build_server(&h, wan_up, wan_down, 768 << 20, true);

    // Put a 64 MB file on it (setup-time, costs nothing).
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        let f = fs.create(dir, "dataset.bin", 0o644, 0).unwrap();
        fs.setattr(f, Some(64 << 20), None, 0).unwrap();
        fs.write(f, 0, &vec![0xAB; 1 << 20], 0).unwrap();
    }

    // --- middleware session ----------------------------------------------
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "alice", 0, u64::MAX / 2);

    // --- compute server: client-side proxy with an 8 GB disk cache --------
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let upstream = RpcClient::new(server.channel.clone(), cred.clone());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "client-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: true,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream.clone(),
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk.clone(),
        BlockCacheConfig::paper_default(),
    )))
    .with_file_channel(
        Arc::new(FileCache::new(cache_disk, 8 << 30)),
        ChannelClient::new(upstream, CodecModel::default()),
    )
    .into_handler();
    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let ep = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    ep.listener.serve("client-proxy", proxy.clone(), 8);

    // --- use it like a kernel would ---------------------------------------
    let channel = ep.channel;
    let mapper: Arc<IdentityMapper> = server.mapper.clone();
    sim.spawn("user", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(channel, cred));
        let kc = KernelClient::mount(&env, nfs, "/exports", KernelConfig::default()).unwrap();
        let file = kc.lookup_path(&env, "dataset.bin").unwrap();

        let t0 = env.now();
        kc.read(&env, file, 0, 64 << 20).unwrap();
        let cold = env.now() - t0;

        // Drop the kernel's memory cache (umount/mount) — the proxy's
        // *disk* cache survives, which is the paper's point.
        kc.invalidate_caches();
        let t1 = env.now();
        kc.read(&env, file, 0, 64 << 20).unwrap();
        let warm = env.now() - t1;

        println!("cold read over WAN : {cold}");
        println!("warm read via proxy: {warm}");
        println!(
            "speedup            : {:.1}x",
            cold.as_secs_f64() / warm.as_secs_f64()
        );
        let st = proxy.stats();
        println!(
            "proxy: {} reads, {} forwarded upstream, cache hits {}",
            st.reads,
            st.forwarded,
            proxy.block_cache().unwrap().stats().hits
        );
        println!("live middleware sessions: {}", mapper.len());
    });
    sim.run();
}
