//! Per-application cache policy (paper §3.2.1): middleware configures
//! each user's proxy according to what it knows about the application.
//!
//! A high-throughput batch task whose outputs nobody reads until the job
//! finishes gets a write-back proxy (session consistency, flush on
//! signal); a task with concurrent readers elsewhere gets write-through.
//! Same machinery, one config field — the point of user-level proxies.
//!
//! Run with: `cargo run --release --example custom_cache_policy`

use std::sync::Arc;

use gvfs::Middleware;
use gvfs::{
    BlockCache, BlockCacheConfig, DedupTuning, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use gvfs_bench::build_server;
use nfs3::proto::StableHow;
use nfs3::Nfs3Client;
use oncrpc::{RpcClient, WireSpec};
use simnet::{Link, SimDuration, Simulation};
use vfs::{Disk, DiskModel};

fn run_with_policy(policy: WritePolicy) -> (f64, f64) {
    let sim = Simulation::new();
    let h = sim.handle();
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let server = build_server(&h, wan_up, wan_down, 768 << 20, true);
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        fs.create(dir, "out.dat", 0o644, 0).unwrap();
    }
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "batch-user", 0, u64::MAX / 2);

    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: format!("{policy:?}-proxy"),
            write_policy: policy,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        RpcClient::new(server.channel.clone(), cred.clone()),
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(2 << 30, 64, 16, 32 * 1024),
    )))
    .into_handler();
    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let ep = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    ep.listener.serve("proxy", proxy.clone(), 8);

    let out = Arc::new(parking_lot::Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let channel = ep.channel;
    sim.spawn("batch-task", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(channel, cred.clone()));
        let root = nfs.mount(&env, "/exports").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "out.dat").unwrap();
        // Write 16 MB of results.
        let t0 = env.now();
        for i in 0..512u64 {
            nfs.write(
                &env,
                fh,
                i * 32 * 1024,
                vec![0x42; 32 * 1024],
                StableHow::Unstable,
            )
            .unwrap();
        }
        nfs.commit(&env, fh).unwrap();
        let write_time = (env.now() - t0).as_secs_f64();
        // Session ends: middleware signals write-back.
        let t1 = env.now();
        proxy.flush(&env, &cred);
        let flush_time = (env.now() - t1).as_secs_f64();
        *out2.lock() = (write_time, flush_time);
    });
    sim.run();
    let r = *out.lock();
    r
}

fn main() {
    println!("writing 16 MB of batch results to a WAN mount:\n");
    let (wt_write, wt_flush) = run_with_policy(WritePolicy::WriteThrough);
    let (wb_write, wb_flush) = run_with_policy(WritePolicy::WriteBack);
    println!("write-through: task blocked {wt_write:6.1}s on writes, flush adds {wt_flush:5.1}s");
    println!("write-back:    task blocked {wb_write:6.1}s on writes, flush adds {wb_flush:5.1}s");
    println!(
        "\nWith write-back, the user-perceived write latency drops {:.0}x; the upload\n\
         happens when the middleware signals the flush (user off-line / session idle).",
        wt_write / wb_write
    );
}
