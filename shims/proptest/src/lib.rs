//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot download crates, so this crate provides a
//! compatible mini property-testing harness: deterministic seeded random
//! sampling (no shrinking), the `proptest!` / `prop_assert*` /
//! `prop_oneof!` macros, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `collection::vec`, `.prop_map`, and a small
//! regex-subset string strategy (`\PC`, `[a-z]`-style classes, `{m,n}`
//! repetition) — everything the workspace's property tests exercise.
//!
//! Each test runs `PROPTEST_CASES` (default 64) deterministic cases from a
//! seed derived from the test name, so failures are reproducible run to
//! run. There is no shrinking: the failing inputs are printed via the
//! assertion message instead.

use std::fmt;
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// RNG: splitmix64, deterministic per test.
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Failure type.
// ---------------------------------------------------------------------------

/// Error produced by a failing property-test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators.
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`] and consumed by
/// [`prop_oneof!`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// Integer range strategies, lightly edge-biased: 1/8 of draws pick an
// endpoint, the classic off-by-one hunting ground.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                match rng.below(16) {
                    0 => lo,
                    1 => hi,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Edge-bias toward 0 / MIN / MAX.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (edge-biased for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// String pattern strategy (regex subset).
// ---------------------------------------------------------------------------

enum Atom {
    /// `\PC`: any printable character.
    Printable,
    /// `[a-z0_]`-style class, stored as inclusive char ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

struct PatternPart {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // Accept proptest's `\PC` (printable char) spelling.
                    let n = chars.next();
                    assert_eq!(n, Some('C'), "unsupported escape in pattern {pat:?}");
                    Atom::Printable
                }
                Some(other) => Atom::Literal(other),
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().expect("unterminated class range");
                                assert!(hi != ']', "unterminated class range in {pat:?}");
                                ranges.push((lo, hi));
                            } else {
                                ranges.push((lo, lo));
                            }
                        }
                        None => panic!("unterminated character class in {pat:?}"),
                    }
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat min"),
                    hi.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

/// A small pool of printable characters, ASCII-heavy with several
/// multi-byte code points so UTF-8 alignment bugs get exercised.
const PRINTABLE_POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '!', '~', '"', '\\', '/', '%', '.', ',', ':', '=', '+',
    '-', '_', '(', ')', 'é', 'ß', 'Ω', 'щ', '中', '日', '𝄞', '🦀',
];

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Printable => PRINTABLE_POOL[rng.below(PRINTABLE_POOL.len() as u64) as usize],
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
        }
        Atom::Literal(c) => *c,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let n = part.min + rng.below((part.max - part.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(sample_atom(&part.atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max_exclusive - self.min) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Define property tests. Each function body runs [`cases`] times with
/// fresh sampled inputs; `prop_assert*` failures report the case number.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..$crate::cases() {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!("property '{}' falsified at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
    )+};
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property, failing the case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 3usize..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert_eq!(w, 3);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u8..1).prop_map(|_| 111u32),
                (0u8..1).prop_map(|_| 222u32),
            ]
        ) {
            prop_assert!(x == 111 || x == 222);
        }

        #[test]
        fn string_patterns_sample(s in "[a-z]{1,8}", t in "\\PC{0,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
