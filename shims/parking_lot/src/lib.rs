//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! external crates cannot be downloaded. This crate re-implements the
//! `Mutex`/`MutexGuard`/`Condvar` API on top of `std::sync`, with
//! parking_lot's ergonomics: `lock()` returns a guard directly (poisoning
//! is swallowed — a poisoned lock in this workspace means a simulation
//! process panicked, and the scheduler already collects and re-raises
//! those panics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive, `parking_lot::Mutex`-flavoured.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike
    /// `std::sync::Mutex::lock`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// out, hand it to `std::sync::Condvar::wait` (which consumes guards),
/// and put the returned guard back — preserving parking_lot's
/// `wait(&mut guard)` signature.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// Condition variable compatible with [`Mutex`], `parking_lot`-flavoured:
/// `wait` takes `&mut MutexGuard` instead of consuming it.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(std_guard);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
