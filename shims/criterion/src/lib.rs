//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `Throughput` and
//! `BatchSize`, backed by a simple median-of-samples wall-clock timer.
//! No statistics beyond min/median, no plots — enough to keep
//! `cargo bench` working and to eyeball hot-path regressions offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark configuration and sink for results.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Unit for throughput reporting.
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// call individually, so the variants behave identically.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        let rate = match (&self.throughput, median.as_secs_f64()) {
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  {:10.1} MiB/s", *n as f64 / s / (1 << 20) as f64)
            }
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  {:10.1} elem/s", *n as f64 / s)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{:<32} median {:>12.3?}{}",
            self.name, name, median, rate
        );
        self
    }

    /// Finish the group (reporting already happened per-function).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` with fresh per-iteration input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up pass
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
