//! Cheaply clonable, reference-counted byte slices.
//!
//! The RPC data path used to copy each message body several times on its
//! way from the wire into the caches: `oncrpc::msg` re-vec'd call and
//! reply bodies, the transport copied envelopes, and the proxy caches
//! copied payloads again. [`Bytes`] is a `(Arc<Vec<u8>>, offset, len)`
//! view: cloning it is a reference-count bump, and slicing it shares the
//! same backing allocation, so a reply body can travel codec → channel →
//! block/file cache without a single copy.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte slice.
///
/// `Clone` and [`Bytes::slice`] are O(1) and never copy the payload. The
/// backing buffer is freed when the last view drops.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty slice. All empty views share one backing buffer.
    pub fn new() -> Bytes {
        static EMPTY: std::sync::OnceLock<Arc<Vec<u8>>> = std::sync::OnceLock::new();
        Bytes {
            buf: Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new()))),
            off: 0,
            len: 0,
        }
    }

    /// Wrap an owned buffer without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `self` sharing the same backing buffer. O(1).
    ///
    /// # Panics
    /// Panics if the range is out of bounds, mirroring slice indexing.
    pub fn slice(&self, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= self.len, "Bytes::slice out of range");
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Promote a borrowed sub-slice of `self` back into a shared view.
    ///
    /// `sub` must point into `self` (as returned by e.g. a decoder that
    /// borrowed from `self`); the result shares `self`'s backing buffer.
    ///
    /// # Panics
    /// Panics if `sub` does not lie within `self`.
    pub fn slice_ref(&self, sub: &[u8]) -> Bytes {
        if sub.is_empty() {
            return Bytes::new();
        }
        let base = self.as_slice().as_ptr() as usize;
        let p = sub.as_ptr() as usize;
        assert!(
            p >= base && p + sub.len() <= base + self.len,
            "Bytes::slice_ref: slice does not borrow from this buffer"
        );
        let start = p - base;
        self.slice(start, start + sub.len())
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Copy this view out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_the_backing_buffer() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1, 4);
        assert_eq!(&*c, &[1, 2, 3, 4, 5]);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(
            s.as_slice().as_ptr(),
            unsafe { b.as_slice().as_ptr().add(1) },
            "slice must not copy"
        );
    }

    #[test]
    fn slice_ref_promotes_borrowed_subslices() {
        let b = Bytes::from_vec((0u8..32).collect());
        let borrowed = &b.as_slice()[8..20];
        let promoted = b.slice_ref(borrowed);
        assert_eq!(&*promoted, borrowed);
        assert_eq!(promoted.as_slice().as_ptr(), borrowed.as_ptr());
        // Empty slices promote to the canonical empty view.
        assert!(b.slice_ref(&b.as_slice()[4..4]).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not borrow")]
    fn slice_ref_rejects_foreign_slices() {
        let b = Bytes::from_vec(vec![0; 16]);
        let other = [0u8; 4];
        let _ = b.slice_ref(&other);
    }

    #[test]
    fn equality_and_conversions() {
        let b: Bytes = b"abcd".into();
        assert_eq!(b, Bytes::from_vec(b"abcd".to_vec()));
        assert_eq!(b.to_vec(), b"abcd".to_vec());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
