//! XDR encoder.

use crate::padded;

/// Appends XDR-encoded items to a growable byte buffer.
///
/// All integers are big-endian; opaque data and strings are padded with
/// zero bytes to a four-byte boundary (RFC 4506 §3–§4.11).
#[derive(Default, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Create an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            // lint:allow(bounded-decode): encoder capacity is caller-chosen, never wire-derived
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append an unsigned 32-bit word.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 32-bit word.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an unsigned 64-bit hyper.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 64-bit hyper.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a boolean (0 or 1 word).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Append fixed-length opaque data (padded, length not written).
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad_to_boundary(data.len());
    }

    /// Append variable-length opaque data (length word, data, padding).
    pub fn put_opaque_var(&mut self, data: &[u8]) {
        assert!(
            data.len() <= u32::MAX as usize,
            "XDR opaque data longer than u32::MAX"
        );
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Append a UTF-8 string as variable-length opaque data.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque_var(s.as_bytes());
    }

    /// Append a counted array: length word followed by each element.
    pub fn put_array<T, F: FnMut(&mut Encoder, &T)>(&mut self, items: &[T], mut f: F) {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }

    fn pad_to_boundary(&mut self, raw_len: usize) {
        for _ in raw_len..padded(raw_len) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut e = Encoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.as_bytes(), &[1, 2, 3, 4]);
        let mut e = Encoder::new();
        e.put_u64(0x0102_0304_0506_0708);
        assert_eq!(e.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn negative_i32_uses_twos_complement() {
        let mut e = Encoder::new();
        e.put_i32(-2);
        assert_eq!(e.as_bytes(), &[0xFF, 0xFF, 0xFF, 0xFE]);
    }

    #[test]
    fn opaque_var_is_length_prefixed_and_padded() {
        let mut e = Encoder::new();
        e.put_opaque_var(&[0xAA, 0xBB, 0xCC]);
        assert_eq!(e.as_bytes(), &[0, 0, 0, 3, 0xAA, 0xBB, 0xCC, 0x00]);
    }

    #[test]
    fn opaque_fixed_pads_without_length() {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&[1, 2, 3, 4, 5]);
        assert_eq!(e.as_bytes(), &[1, 2, 3, 4, 5, 0, 0, 0]);
        assert_eq!(e.len() % 4, 0);
    }

    #[test]
    fn string_encodes_like_opaque() {
        let mut e = Encoder::new();
        e.put_string("ok");
        assert_eq!(e.as_bytes(), &[0, 0, 0, 2, b'o', b'k', 0, 0]);
    }

    #[test]
    fn array_writes_count_then_elements() {
        let mut e = Encoder::new();
        e.put_array(&[10u32, 20, 30], |enc, v| enc.put_u32(*v));
        assert_eq!(
            e.as_bytes(),
            &[0, 0, 0, 3, 0, 0, 0, 10, 0, 0, 0, 20, 0, 0, 0, 30]
        );
    }
}
