//! # xdr — RFC 4506 External Data Representation
//!
//! A small, allocation-conscious XDR codec used by the [ONC-RPC] and
//! [NFSv3] substrates of the GVFS reproduction. XDR is the wire format of
//! Sun RPC and NFS: big-endian 32-bit words, with opaque data padded to a
//! four-byte boundary.
//!
//! [ONC-RPC]: https://datatracker.ietf.org/doc/html/rfc5531
//! [NFSv3]: https://datatracker.ietf.org/doc/html/rfc1813
//!
//! ```
//! use xdr::{Encoder, Decoder};
//!
//! let mut enc = Encoder::new();
//! enc.put_u32(7);
//! enc.put_string("hello");
//! enc.put_opaque_var(&[1, 2, 3]);
//!
//! let buf = enc.into_bytes();
//! let mut dec = Decoder::new(&buf);
//! assert_eq!(dec.get_u32().unwrap(), 7);
//! assert_eq!(dec.get_string().unwrap(), "hello");
//! assert_eq!(dec.get_opaque_var().unwrap(), vec![1, 2, 3]);
//! dec.finish().unwrap();
//! ```

#![warn(missing_docs)]

mod bytes;
mod decode;
mod encode;
mod error;

pub use bytes::Bytes;
pub use decode::Decoder;
pub use encode::Encoder;
pub use error::{Error, Result};

/// Default cap on variable-length opaque/string/array lengths, protecting
/// decoders from hostile or corrupted length words. NFSv3 payloads in this
/// repository never exceed the 32 KB protocol block size plus headers, but
/// whole-file reads through the file channel can be larger, so the default
/// is generous.
pub const DEFAULT_MAX_LEN: u32 = 64 * 1024 * 1024;

/// Pad `len` up to the next multiple of four, per RFC 4506 §3.
#[inline]
pub const fn padded(len: usize) -> usize {
    (len + 3) & !3
}

/// Cap on the speculative reservation made by [`bounded_alloc`]: even an
/// in-limit declared length only pre-reserves this many elements; larger
/// results grow geometrically as real data arrives and the decode fails
/// naturally on EOF long before a hostile length is materialized.
pub const MAX_PREALLOC: usize = 64 * 1024;

/// Allocate a `Vec` sized from a **wire-decoded** length without trusting
/// it. This is the single blessed sink for the `bounded-decode` lint rule
/// (see DESIGN.md §5.2): every `Vec::with_capacity`/`vec![_; n]`/`resize`
/// in a decode path whose size derives from wire bytes must flow through
/// here.
///
/// A declared `len` above `limit` is rejected with
/// [`Error::LengthOverLimit`]; an accepted one pre-reserves at most
/// [`MAX_PREALLOC`] elements.
pub fn bounded_alloc<T>(len: usize, limit: usize) -> Result<Vec<T>> {
    if len > limit {
        return Err(Error::LengthOverLimit {
            declared: u32::try_from(len).unwrap_or(u32::MAX),
            limit: u32::try_from(limit).unwrap_or(u32::MAX),
        });
    }
    Ok(Vec::with_capacity(len.min(MAX_PREALLOC)))
}

/// Types that serialize to XDR.
pub trait Encode {
    /// Append this value's XDR representation to the encoder.
    fn encode(&self, enc: &mut Encoder);
}

/// Types that deserialize from XDR.
pub trait Decode: Sized {
    /// Parse a value of this type from the decoder.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;
}

impl Encode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}
impl Decode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_u32()
    }
}
impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_u64()
    }
}
impl Encode for i32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i32(*self);
    }
}
impl Decode for i32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_i32()
    }
}
impl Encode for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
}
impl Decode for i64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_i64()
    }
}
impl Encode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
}
impl Decode for bool {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_bool()
    }
}
impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_string(self);
    }
}
impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_string()
    }
}
impl Encode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_opaque_var(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.get_opaque_var()
    }
}

impl<T: Encode> Encode for Option<T> {
    // XDR "optional-data": bool discriminant then the value if present.
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decode a value from a byte slice, requiring the slice to be fully
/// consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T> {
    let mut dec = Decoder::new(bytes);
    let v = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rounds_up_to_four() {
        assert_eq!(padded(0), 0);
        assert_eq!(padded(1), 4);
        assert_eq!(padded(3), 4);
        assert_eq!(padded(4), 4);
        assert_eq!(padded(5), 8);
    }

    #[test]
    fn bounded_alloc_rejects_over_limit_and_caps_reservation() {
        assert!(matches!(
            bounded_alloc::<u8>(10, 9),
            Err(Error::LengthOverLimit {
                declared: 10,
                limit: 9
            })
        ));
        let v: Vec<u8> = bounded_alloc(16, 1 << 20).unwrap();
        assert_eq!(v.capacity(), 16);
        // A huge but in-limit length must not reserve huge memory.
        let v: Vec<u8> = bounded_alloc(1 << 28, 1 << 30).unwrap();
        assert!(v.capacity() <= 2 * MAX_PREALLOC);
    }

    #[test]
    fn optional_round_trips() {
        let some: Option<u32> = Some(9);
        let none: Option<u32> = None;
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&some)).unwrap(), some);
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&none)).unwrap(), none);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut b = to_bytes(&5u32);
        b.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            from_bytes::<u32>(&b),
            Err(Error::TrailingBytes { .. })
        ));
    }
}
