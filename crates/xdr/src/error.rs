//! XDR codec errors.

use std::fmt;

/// Result alias for XDR operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while decoding XDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The buffer ended before the requested item was complete.
    UnexpectedEof {
        /// Bytes needed to finish the current item.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A boolean word held something other than 0 or 1.
    InvalidBool(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A variable-length item declared a length beyond the decoder's cap.
    LengthOverLimit {
        /// Declared length.
        declared: u32,
        /// Configured cap.
        limit: u32,
    },
    /// Padding bytes were non-zero (RFC 4506 requires zero fill).
    NonZeroPadding,
    /// An enum/union discriminant had no matching arm.
    InvalidDiscriminant(u32),
    /// Input remained after a complete top-level decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of XDR data: need {needed} bytes, {remaining} remain"
            ),
            Error::InvalidBool(v) => write!(f, "invalid XDR boolean word {v}"),
            Error::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            Error::LengthOverLimit { declared, limit } => write!(
                f,
                "XDR variable-length item declares {declared} bytes, over the {limit} byte cap"
            ),
            Error::NonZeroPadding => write!(f, "XDR padding bytes are not zero"),
            Error::InvalidDiscriminant(d) => {
                write!(f, "XDR union discriminant {d} has no matching arm")
            }
            Error::TrailingBytes { remaining } => {
                write!(f, "{remaining} bytes remain after a complete XDR decode")
            }
        }
    }
}

impl std::error::Error for Error {}
