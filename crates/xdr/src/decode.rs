//! XDR decoder.

use crate::error::{Error, Result};
use crate::{padded, DEFAULT_MAX_LEN};

/// Reads XDR items from a byte slice, tracking position and enforcing a
/// cap on variable-length items.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    max_len: u32,
}

impl<'a> Decoder<'a> {
    /// Decode from `data` with the default length cap.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder {
            data,
            pos: 0,
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Decode with a custom cap on variable-length items.
    pub fn with_max_len(data: &'a [u8], max_len: u32) -> Self {
        Decoder {
            data,
            pos: 0,
            max_len,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Require that every byte has been consumed.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned 32-bit word.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a signed 32-bit word.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an unsigned 64-bit hyper.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a signed 64-bit hyper.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a boolean, rejecting words other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(Error::InvalidBool(v)),
        }
    }

    /// Read fixed-length opaque data of `len` bytes (consumes padding,
    /// which must be zero).
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8]> {
        let body = self.take(len)?;
        let pad = self.take(padded(len) - len)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(Error::NonZeroPadding);
        }
        Ok(body)
    }

    /// Read variable-length opaque data as a borrowed slice.
    pub fn get_opaque_var_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()?;
        if len > self.max_len {
            return Err(Error::LengthOverLimit {
                declared: len,
                limit: self.max_len,
            });
        }
        self.get_opaque_fixed(len as usize)
    }

    /// Read variable-length opaque data as an owned vector.
    pub fn get_opaque_var(&mut self) -> Result<Vec<u8>> {
        Ok(self.get_opaque_var_ref()?.to_vec())
    }

    /// Read a UTF-8 string.
    pub fn get_string(&mut self) -> Result<String> {
        let bytes = self.get_opaque_var_ref()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| Error::InvalidUtf8)
    }

    /// Read a counted array, decoding each element with `f`.
    pub fn get_array<T, F: FnMut(&mut Decoder<'a>) -> Result<T>>(
        &mut self,
        mut f: F,
    ) -> Result<Vec<T>> {
        let n = self.get_u32()?;
        // The blessed sink rejects counts over the decoder cap and bounds
        // the pre-allocation: a hostile count must not OOM us before
        // element decoding fails naturally on EOF.
        let mut out = crate::bounded_alloc(n as usize, self.max_len as usize)?;
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn round_trip_all_primitives() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        e.put_i32(i32::MIN);
        e.put_u64(u64::MAX);
        e.put_i64(i64::MIN);
        e.put_bool(true);
        e.put_bool(false);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_u32().unwrap(), u32::MAX);
        assert_eq!(d.get_i32().unwrap(), i32::MIN);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let mut d = Decoder::new(&[0, 0]);
        assert_eq!(
            d.get_u32(),
            Err(Error::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn invalid_bool_word_is_rejected() {
        let mut d = Decoder::new(&[0, 0, 0, 2]);
        assert_eq!(d.get_bool(), Err(Error::InvalidBool(2)));
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        // length 1, byte 0xAA, padding 0x01 0x00 0x00 — invalid.
        let mut d = Decoder::new(&[0, 0, 0, 1, 0xAA, 1, 0, 0]);
        assert_eq!(d.get_opaque_var(), Err(Error::NonZeroPadding));
    }

    #[test]
    fn length_cap_is_enforced() {
        let mut e = Encoder::new();
        e.put_u32(1_000_000); // declared length far beyond the cap
        let b = e.into_bytes();
        let mut d = Decoder::with_max_len(&b, 1024);
        assert_eq!(
            d.get_opaque_var(),
            Err(Error::LengthOverLimit {
                declared: 1_000_000,
                limit: 1024
            })
        );
    }

    #[test]
    fn invalid_utf8_string_is_rejected() {
        let mut e = Encoder::new();
        e.put_opaque_var(&[0xFF, 0xFE]);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_string(), Err(Error::InvalidUtf8));
    }

    #[test]
    fn array_round_trips() {
        let mut e = Encoder::new();
        e.put_array(&[7u32, 8, 9], |enc, v| enc.put_u32(*v));
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        let v = d.get_array(|dd| dd.get_u32()).unwrap();
        assert_eq!(v, vec![7, 8, 9]);
        d.finish().unwrap();
    }

    #[test]
    fn hostile_array_count_fails_on_eof_not_oom() {
        let mut e = Encoder::new();
        e.put_u32(1_000_000); // count with no elements following
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        assert!(d.get_array(|dd| dd.get_u32()).is_err());
    }
}
