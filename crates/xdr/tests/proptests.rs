//! Property-based round-trip tests for the XDR codec.

use proptest::prelude::*;
use xdr::{Decoder, Encoder};

proptest! {
    #[test]
    fn u32_round_trips(v in any::<u32>()) {
        let mut e = Encoder::new();
        e.put_u32(v);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_u32().unwrap(), v);
        prop_assert!(d.finish().is_ok());
    }

    #[test]
    fn i64_round_trips(v in any::<i64>()) {
        let mut e = Encoder::new();
        e.put_i64(v);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_i64().unwrap(), v);
    }

    #[test]
    fn opaque_round_trips_and_is_word_aligned(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut e = Encoder::new();
        e.put_opaque_var(&data);
        prop_assert_eq!(e.len() % 4, 0);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_opaque_var().unwrap(), data);
        prop_assert!(d.finish().is_ok());
    }

    #[test]
    fn string_round_trips(s in "\\PC{0,200}") {
        let mut e = Encoder::new();
        e.put_string(&s);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_string().unwrap(), s);
    }

    #[test]
    fn mixed_sequences_round_trip(
        a in any::<u32>(),
        s in "\\PC{0,50}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
        flag in any::<bool>(),
        h in any::<u64>(),
    ) {
        let mut e = Encoder::new();
        e.put_u32(a);
        e.put_string(&s);
        e.put_opaque_var(&data);
        e.put_bool(flag);
        e.put_u64(h);
        let b = e.into_bytes();
        let mut d = Decoder::new(&b);
        prop_assert_eq!(d.get_u32().unwrap(), a);
        prop_assert_eq!(d.get_string().unwrap(), s);
        prop_assert_eq!(d.get_opaque_var().unwrap(), data);
        prop_assert_eq!(d.get_bool().unwrap(), flag);
        prop_assert_eq!(d.get_u64().unwrap(), h);
        prop_assert!(d.finish().is_ok());
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_input(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Fuzz the decoder: every operation must return Ok/Err, never panic.
        let mut d = Decoder::new(&data);
        let _ = d.get_u32();
        let _ = d.get_bool();
        let _ = d.get_opaque_var();
        let _ = d.get_string();
        let _ = d.get_array(|dd| dd.get_u64());
    }
}
