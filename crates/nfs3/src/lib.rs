//! # nfs3 — NFSv3 and MOUNT over simulated ONC-RPC
//!
//! The distributed-file-system substrate of the GVFS reproduction:
//!
//! * [`proto`]/[`args`] — RFC 1813 wire types,
//! * [`Nfs3Server`]/[`MountServer`] — a simulated kernel NFS server
//!   exporting a [`vfs::Fs`] with disk and buffer-cache timing,
//! * [`Nfs3Client`] — a typed client stub,
//! * [`KernelClient`] — the compute server's kernel NFS client model
//!   (buffer/attribute/dentry caches, write staging, read gathering),
//!   implementing [`vfs::FileIo`].
//!
//! GVFS (crate `gvfs`) interposes user-level proxies between
//! [`KernelClient`] and [`Nfs3Server`] without either of them changing —
//! which is the paper's core claim.

#![warn(missing_docs)]

pub mod args;
pub mod client;
pub mod kernel;
pub mod proto;
pub mod server;

pub use client::{Nfs3Client, NfsError, NfsResult};
pub use kernel::{KernelClient, KernelConfig, KernelStats};
pub use proto::{proc3_name, Fh3, Status, MAX_BLOCK, MOUNT_PROGRAM, MOUNT_V3, NFS_PROGRAM, NFS_V3};
pub use server::{MountServer, Nfs3Server, ServerConfig, ServerStats};
