//! NFSv3 wire protocol definitions (RFC 1813).
//!
//! Program 100003 version 3, plus the MOUNT protocol (program 100005
//! version 3) used to obtain the root file handle of an export.
//!
//! The GVFS proxy operates at exactly this level: it decodes the kernel
//! client's calls, consults its disk caches and meta-data, and forwards
//! misses upstream — so these types are shared by the server, the client,
//! and the proxy.

use vfs::{Attr, FileType, FsError, Handle};
use xdr::{Decode, Decoder, Encode, Encoder, Error as XdrError, Result as XdrResult};

/// NFS program number.
pub const NFS_PROGRAM: u32 = 100_003;
/// NFS protocol version implemented here.
pub const NFS_V3: u32 = 3;
/// MOUNT program number.
pub const MOUNT_PROGRAM: u32 = 100_005;
/// MOUNT protocol version.
pub const MOUNT_V3: u32 = 3;

/// Maximum READ/WRITE payload the protocol allows here (the paper's "up
/// to the NFS protocol limit of 32KB").
pub const MAX_BLOCK: u32 = 32 * 1024;

/// NFSv3 procedure numbers.
pub mod proc3 {
    /// Do nothing (ping).
    pub const NULL: u32 = 0;
    /// Get attributes.
    pub const GETATTR: u32 = 1;
    /// Set attributes.
    pub const SETATTR: u32 = 2;
    /// Look up a name in a directory.
    pub const LOOKUP: u32 = 3;
    /// Check access rights.
    pub const ACCESS: u32 = 4;
    /// Read a symlink target.
    pub const READLINK: u32 = 5;
    /// Read from a file.
    pub const READ: u32 = 6;
    /// Write to a file.
    pub const WRITE: u32 = 7;
    /// Create a regular file.
    pub const CREATE: u32 = 8;
    /// Create a directory.
    pub const MKDIR: u32 = 9;
    /// Create a symlink.
    pub const SYMLINK: u32 = 10;
    /// Create a device node (unimplemented).
    pub const MKNOD: u32 = 11;
    /// Remove a file.
    pub const REMOVE: u32 = 12;
    /// Remove a directory.
    pub const RMDIR: u32 = 13;
    /// Rename.
    pub const RENAME: u32 = 14;
    /// Hard link (unimplemented).
    pub const LINK: u32 = 15;
    /// Read directory entries.
    pub const READDIR: u32 = 16;
    /// Read directory entries with attributes (unimplemented).
    pub const READDIRPLUS: u32 = 17;
    /// Filesystem statistics.
    pub const FSSTAT: u32 = 18;
    /// Static filesystem info.
    pub const FSINFO: u32 = 19;
    /// Pathconf (unimplemented).
    pub const PATHCONF: u32 = 20;
    /// Commit unstable writes to stable storage.
    pub const COMMIT: u32 = 21;
}

/// Human-readable name of an NFSv3 procedure number, for metric names
/// and reports ("RPC count by procedure").
pub fn proc3_name(proc: u32) -> &'static str {
    match proc {
        proc3::NULL => "NULL",
        proc3::GETATTR => "GETATTR",
        proc3::SETATTR => "SETATTR",
        proc3::LOOKUP => "LOOKUP",
        proc3::ACCESS => "ACCESS",
        proc3::READLINK => "READLINK",
        proc3::READ => "READ",
        proc3::WRITE => "WRITE",
        proc3::CREATE => "CREATE",
        proc3::MKDIR => "MKDIR",
        proc3::SYMLINK => "SYMLINK",
        proc3::MKNOD => "MKNOD",
        proc3::REMOVE => "REMOVE",
        proc3::RMDIR => "RMDIR",
        proc3::RENAME => "RENAME",
        proc3::LINK => "LINK",
        proc3::READDIR => "READDIR",
        proc3::READDIRPLUS => "READDIRPLUS",
        proc3::FSSTAT => "FSSTAT",
        proc3::FSINFO => "FSINFO",
        proc3::PATHCONF => "PATHCONF",
        proc3::COMMIT => "COMMIT",
        _ => "UNKNOWN",
    }
}

/// MOUNT procedure numbers.
pub mod mountproc {
    /// Ping.
    pub const NULL: u32 = 0;
    /// Mount an export: path → root file handle.
    pub const MNT: u32 = 1;
    /// Unmount.
    pub const UMNT: u32 = 3;
}

/// NFSv3 status codes (subset used by this implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok,
    /// Not owner.
    Perm,
    /// No such entry.
    NoEnt,
    /// Hard I/O error.
    Io,
    /// Access denied.
    Access,
    /// Already exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Invalid argument.
    Inval,
    /// Directory not empty.
    NotEmpty,
    /// Stale file handle.
    Stale,
    /// Malformed handle.
    BadHandle,
    /// Operation not supported.
    NotSupp,
    /// READDIR cookie is no longer valid (verifier mismatch).
    BadCookie,
    /// Server fault.
    ServerFault,
}

impl Status {
    /// Wire value.
    pub fn as_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::Perm => 1,
            Status::NoEnt => 2,
            Status::Io => 5,
            Status::Access => 13,
            Status::Exist => 17,
            Status::NotDir => 20,
            Status::IsDir => 21,
            Status::Inval => 22,
            Status::NotEmpty => 66,
            Status::Stale => 70,
            Status::BadHandle => 10_001,
            Status::BadCookie => 10_003,
            Status::NotSupp => 10_004,
            Status::ServerFault => 10_006,
        }
    }

    /// Parse a wire value.
    pub fn from_u32(v: u32) -> XdrResult<Status> {
        Ok(match v {
            0 => Status::Ok,
            1 => Status::Perm,
            2 => Status::NoEnt,
            5 => Status::Io,
            13 => Status::Access,
            17 => Status::Exist,
            20 => Status::NotDir,
            21 => Status::IsDir,
            22 => Status::Inval,
            66 => Status::NotEmpty,
            70 => Status::Stale,
            10_001 => Status::BadHandle,
            10_003 => Status::BadCookie,
            10_004 => Status::NotSupp,
            10_006 => Status::ServerFault,
            other => return Err(XdrError::InvalidDiscriminant(other)),
        })
    }
}

impl From<FsError> for Status {
    fn from(e: FsError) -> Status {
        match e {
            FsError::NotFound => Status::NoEnt,
            FsError::NotDir => Status::NotDir,
            FsError::IsDir => Status::IsDir,
            FsError::Exists => Status::Exist,
            FsError::NotEmpty => Status::NotEmpty,
            FsError::Stale => Status::Stale,
            FsError::InvalidName => Status::Inval,
            FsError::BadType => Status::Inval,
        }
    }
}

/// An NFS file handle: the opaque bytes of a [`vfs::Handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fh3(pub Handle);

impl Encode for Fh3 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_opaque_var(&self.0.to_bytes());
    }
}

impl Decode for Fh3 {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let bytes = dec.get_opaque_var_ref()?;
        Handle::from_bytes(bytes)
            .map(Fh3)
            .ok_or(XdrError::InvalidDiscriminant(bytes.len() as u32))
    }
}

fn put_time(enc: &mut Encoder, ns: u64) {
    enc.put_u32((ns / 1_000_000_000) as u32);
    enc.put_u32((ns % 1_000_000_000) as u32);
}

fn get_time(dec: &mut Decoder<'_>) -> XdrResult<u64> {
    let s = dec.get_u32()? as u64;
    let n = dec.get_u32()? as u64;
    Ok(s * 1_000_000_000 + n)
}

/// `fattr3`: full attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fattr3(pub Attr);

impl Encode for Fattr3 {
    fn encode(&self, enc: &mut Encoder) {
        let a = &self.0;
        enc.put_u32(match a.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 5,
        });
        enc.put_u32(a.mode);
        enc.put_u32(a.nlink);
        enc.put_u32(a.uid);
        enc.put_u32(a.gid);
        enc.put_u64(a.size);
        enc.put_u64(a.used);
        enc.put_u32(0); // rdev major
        enc.put_u32(0); // rdev minor
        enc.put_u64(1); // fsid
        enc.put_u64(a.fileid);
        put_time(enc, a.atime_ns);
        put_time(enc, a.mtime_ns);
        put_time(enc, a.ctime_ns);
    }
}

impl Decode for Fattr3 {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let ftype = match dec.get_u32()? {
            1 => FileType::Regular,
            2 => FileType::Directory,
            5 => FileType::Symlink,
            other => return Err(XdrError::InvalidDiscriminant(other)),
        };
        let mode = dec.get_u32()?;
        let nlink = dec.get_u32()?;
        let uid = dec.get_u32()?;
        let gid = dec.get_u32()?;
        let size = dec.get_u64()?;
        let used = dec.get_u64()?;
        let _rdev_major = dec.get_u32()?;
        let _rdev_minor = dec.get_u32()?;
        let _fsid = dec.get_u64()?;
        let fileid = dec.get_u64()?;
        let atime_ns = get_time(dec)?;
        let mtime_ns = get_time(dec)?;
        let ctime_ns = get_time(dec)?;
        Ok(Fattr3(Attr {
            ftype,
            mode,
            nlink,
            uid,
            gid,
            size,
            used,
            fileid,
            atime_ns,
            mtime_ns,
            ctime_ns,
        }))
    }
}

/// `post_op_attr`: optional attributes attached to most replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostOpAttr(pub Option<Attr>);

impl Encode for PostOpAttr {
    fn encode(&self, enc: &mut Encoder) {
        match &self.0 {
            Some(a) => {
                enc.put_bool(true);
                Fattr3(a.clone()).encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
}

impl Decode for PostOpAttr {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        if dec.get_bool()? {
            Ok(PostOpAttr(Some(Fattr3::decode(dec)?.0)))
        } else {
            Ok(PostOpAttr(None))
        }
    }
}

/// `wcc_data`: weak cache consistency data (we always send empty pre-op
/// and a post-op attribute, which is what the Linux server commonly does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccData(pub Option<Attr>);

impl Encode for WccData {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(false); // pre_op_attr: none
        PostOpAttr(self.0.clone()).encode(enc);
    }
}

impl Decode for WccData {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let has_pre = dec.get_bool()?;
        if has_pre {
            // pre_op_attr is (size, mtime, ctime)
            let _size = dec.get_u64()?;
            let _mtime = get_time(dec)?;
            let _ctime = get_time(dec)?;
        }
        Ok(WccData(PostOpAttr::decode(dec)?.0))
    }
}

/// `sattr3`: settable attributes (subset: mode and size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sattr3 {
    /// New permission bits, if set.
    pub mode: Option<u32>,
    /// New size, if set.
    pub size: Option<u64>,
}

impl Encode for Sattr3 {
    fn encode(&self, enc: &mut Encoder) {
        match self.mode {
            Some(m) => {
                enc.put_bool(true);
                enc.put_u32(m);
            }
            None => enc.put_bool(false),
        }
        enc.put_bool(false); // uid
        enc.put_bool(false); // gid
        match self.size {
            Some(s) => {
                enc.put_bool(true);
                enc.put_u64(s);
            }
            None => enc.put_bool(false),
        }
        enc.put_u32(0); // atime: DONT_CHANGE
        enc.put_u32(0); // mtime: DONT_CHANGE
    }
}

impl Decode for Sattr3 {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let mode = if dec.get_bool()? {
            Some(dec.get_u32()?)
        } else {
            None
        };
        if dec.get_bool()? {
            let _uid = dec.get_u32()?;
        }
        if dec.get_bool()? {
            let _gid = dec.get_u32()?;
        }
        let size = if dec.get_bool()? {
            Some(dec.get_u64()?)
        } else {
            None
        };
        let atime_how = dec.get_u32()?;
        if atime_how == 2 {
            let _t = get_time(dec)?;
        }
        let mtime_how = dec.get_u32()?;
        if mtime_how == 2 {
            let _t = get_time(dec)?;
        }
        Ok(Sattr3 { mode, size })
    }
}

/// `diropargs3`: directory handle + name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpArgs3 {
    /// Directory handle.
    pub dir: Fh3,
    /// Entry name.
    pub name: String,
}

impl Encode for DirOpArgs3 {
    fn encode(&self, enc: &mut Encoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
    }
}

impl Decode for DirOpArgs3 {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(DirOpArgs3 {
            dir: Fh3::decode(dec)?,
            name: dec.get_string()?,
        })
    }
}

/// Write stability levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StableHow {
    /// Server may keep the data in memory.
    Unstable,
    /// Data must be on stable storage before replying.
    DataSync,
    /// Data and metadata must be stable before replying.
    FileSync,
}

impl StableHow {
    /// Wire value.
    pub fn as_u32(self) -> u32 {
        match self {
            StableHow::Unstable => 0,
            StableHow::DataSync => 1,
            StableHow::FileSync => 2,
        }
    }

    /// Parse wire value.
    pub fn from_u32(v: u32) -> XdrResult<Self> {
        Ok(match v {
            0 => StableHow::Unstable,
            1 => StableHow::DataSync,
            2 => StableHow::FileSync,
            other => return Err(XdrError::InvalidDiscriminant(other)),
        })
    }
}

/// READ3 results (success arm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRes {
    /// Post-op file attributes.
    pub attr: Option<Attr>,
    /// Bytes actually read.
    pub data: Vec<u8>,
    /// Whether this read reached end-of-file.
    pub eof: bool,
}

/// WRITE3 results (success arm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRes {
    /// Post-op file attributes.
    pub attr: Option<Attr>,
    /// Bytes committed by this call.
    pub count: u32,
    /// Stability the server actually provided.
    pub committed: StableHow,
    /// Write verifier (changes on server restart).
    pub verf: u64,
}

/// One READDIR entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number.
    pub fileid: u64,
    /// Entry name.
    pub name: String,
}

/// FSINFO results (static properties).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsInfo {
    /// Maximum/preferred read transfer size.
    pub rtmax: u32,
    /// Maximum/preferred write transfer size.
    pub wtmax: u32,
    /// Preferred readdir size.
    pub dtpref: u32,
    /// Maximum file size.
    pub maxfilesize: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr() -> Attr {
        Attr {
            ftype: FileType::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 500,
            gid: 500,
            size: 1_700_000_000,
            used: 300_000_000,
            fileid: 42,
            atime_ns: 1_500_000_123,
            mtime_ns: 2_000_000_456,
            ctime_ns: 3_000_000_789,
        }
    }

    #[test]
    fn fattr3_round_trips() {
        let f = Fattr3(attr());
        let b = xdr::to_bytes(&f);
        // fattr3 is 84 bytes on the wire (RFC 1813).
        assert_eq!(b.len(), 84);
        let back: Fattr3 = xdr::from_bytes(&b).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn post_op_attr_round_trips_both_arms() {
        for v in [PostOpAttr(Some(attr())), PostOpAttr(None)] {
            let back: PostOpAttr = xdr::from_bytes(&xdr::to_bytes(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn fh3_round_trips() {
        let fh = Fh3(Handle {
            fileid: 7,
            generation: 99,
        });
        let back: Fh3 = xdr::from_bytes(&xdr::to_bytes(&fh)).unwrap();
        assert_eq!(back, fh);
    }

    #[test]
    fn sattr3_round_trips() {
        for v in [
            Sattr3 {
                mode: Some(0o600),
                size: Some(4096),
            },
            Sattr3::default(),
        ] {
            let back: Sattr3 = xdr::from_bytes(&xdr::to_bytes(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn status_codes_round_trip() {
        for s in [
            Status::Ok,
            Status::NoEnt,
            Status::Io,
            Status::Access,
            Status::Exist,
            Status::NotDir,
            Status::IsDir,
            Status::Inval,
            Status::NotEmpty,
            Status::Stale,
            Status::BadHandle,
            Status::BadCookie,
            Status::NotSupp,
            Status::ServerFault,
        ] {
            assert_eq!(Status::from_u32(s.as_u32()).unwrap(), s);
        }
        assert!(Status::from_u32(12345).is_err());
    }

    #[test]
    fn stable_how_round_trips() {
        for s in [
            StableHow::Unstable,
            StableHow::DataSync,
            StableHow::FileSync,
        ] {
            assert_eq!(StableHow::from_u32(s.as_u32()).unwrap(), s);
        }
    }

    #[test]
    fn fs_errors_map_to_protocol_codes() {
        assert_eq!(Status::from(FsError::NotFound), Status::NoEnt);
        assert_eq!(Status::from(FsError::Stale), Status::Stale);
        assert_eq!(Status::from(FsError::NotEmpty), Status::NotEmpty);
    }
}
