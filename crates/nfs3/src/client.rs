//! Typed NFSv3 client stub: one method per procedure, decoding replies
//! into Rust types. The kernel-client model ([`crate::kernel`]) sits on
//! top of this; GVFS proxies use it too when they need to issue their own
//! upstream calls (e.g. fetching meta-data files).

use oncrpc::{RpcClient, RpcError};
use simnet::Env;
use vfs::{Attr, Handle};
use xdr::{Decode, Decoder, Encode, Encoder};

use crate::args::*;
use crate::proto::*;

/// Errors from typed NFS operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NfsError {
    /// RPC-level failure.
    Rpc(RpcError),
    /// Server returned a non-OK NFS status.
    Status(Status),
    /// Reply failed to decode.
    Decode(xdr::Error),
}

impl From<RpcError> for NfsError {
    fn from(e: RpcError) -> Self {
        NfsError::Rpc(e)
    }
}

impl From<xdr::Error> for NfsError {
    fn from(e: xdr::Error) -> Self {
        NfsError::Decode(e)
    }
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::Rpc(e) => write!(f, "rpc: {e}"),
            NfsError::Status(s) => write!(f, "nfs status: {s:?}"),
            NfsError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for NfsError {}

/// Result alias for NFS client calls.
pub type NfsResult<T> = Result<T, NfsError>;

/// Typed NFSv3 + MOUNT client over an [`RpcClient`].
#[derive(Clone)]
pub struct Nfs3Client {
    rpc: RpcClient,
}

impl Nfs3Client {
    /// Wrap an RPC client stub.
    pub fn new(rpc: RpcClient) -> Self {
        Nfs3Client { rpc }
    }

    /// Access the underlying RPC stub.
    pub fn rpc(&self) -> &RpcClient {
        &self.rpc
    }

    fn call(&self, env: &Env, proc: u32, args: &[u8]) -> NfsResult<xdr::Bytes> {
        // Deadline-aware entry point: retransmits under the stub's
        // RetryPolicy (if any); identical to plain call() without one.
        Ok(self.rpc.call_dl(env, NFS_PROGRAM, NFS_V3, proc, args)?)
    }

    fn status_of(dec: &mut Decoder<'_>) -> NfsResult<Status> {
        Ok(Status::from_u32(dec.get_u32()?)?)
    }

    /// MOUNT: obtain the root handle of an export.
    pub fn mount(&self, env: &Env, export: &str) -> NfsResult<Handle> {
        let args = xdr::to_bytes(&export.to_string());
        let res = self
            .rpc
            .call_dl(env, MOUNT_PROGRAM, MOUNT_V3, mountproc::MNT, &args)?;
        let mut dec = Decoder::new(&res);
        let status = dec.get_u32()?;
        if status != 0 {
            return Err(NfsError::Status(
                Status::from_u32(status).unwrap_or(Status::Io),
            ));
        }
        let fh = Fh3::decode(&mut dec)?;
        Ok(fh.0)
    }

    /// NULL ping (useful for RTT measurement).
    pub fn null(&self, env: &Env) -> NfsResult<()> {
        self.call(env, proc3::NULL, &[])?;
        Ok(())
    }

    /// GETATTR.
    pub fn getattr(&self, env: &Env, h: Handle) -> NfsResult<Attr> {
        let res = self.call(env, proc3::GETATTR, &xdr::to_bytes(&Fh3(h)))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => Ok(Fattr3::decode(&mut dec)?.0),
            s => Err(NfsError::Status(s)),
        }
    }

    /// SETATTR (size/mode subset).
    pub fn setattr(
        &self,
        env: &Env,
        h: Handle,
        size: Option<u64>,
        mode: Option<u32>,
    ) -> NfsResult<()> {
        let args = SetattrArgs {
            file: Fh3(h),
            attrs: Sattr3 { mode, size },
        };
        let res = self.call(env, proc3::SETATTR, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => Ok(()),
            s => Err(NfsError::Status(s)),
        }
    }

    /// LOOKUP a name, returning the handle and its attributes.
    pub fn lookup(&self, env: &Env, dir: Handle, name: &str) -> NfsResult<(Handle, Option<Attr>)> {
        let args = DirOpArgs3 {
            dir: Fh3(dir),
            name: name.to_string(),
        };
        let res = self.call(env, proc3::LOOKUP, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let fh = Fh3::decode(&mut dec)?;
                let obj_attr = PostOpAttr::decode(&mut dec)?.0;
                Ok((fh.0, obj_attr))
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// READLINK.
    pub fn readlink(&self, env: &Env, h: Handle) -> NfsResult<String> {
        let res = self.call(env, proc3::READLINK, &xdr::to_bytes(&Fh3(h)))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let _attr = PostOpAttr::decode(&mut dec)?;
                Ok(dec.get_string()?)
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// READ up to `count` bytes at `offset`.
    pub fn read(&self, env: &Env, h: Handle, offset: u64, count: u32) -> NfsResult<ReadRes> {
        let args = ReadArgs {
            file: Fh3(h),
            offset,
            count,
        };
        let res = self.call(env, proc3::READ, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let attr = PostOpAttr::decode(&mut dec)?.0;
                let _count = dec.get_u32()?;
                let eof = dec.get_bool()?;
                let data = dec.get_opaque_var()?;
                Ok(ReadRes { attr, data, eof })
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// WRITE `data` at `offset` with the given stability.
    pub fn write(
        &self,
        env: &Env,
        h: Handle,
        offset: u64,
        data: Vec<u8>,
        stable: StableHow,
    ) -> NfsResult<WriteRes> {
        let count = data.len() as u32;
        let args = WriteArgs {
            file: Fh3(h),
            offset,
            count,
            stable,
            data,
        };
        let res = self.call(env, proc3::WRITE, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let attr = WccData::decode(&mut dec)?.0;
                let count = dec.get_u32()?;
                let committed = StableHow::from_u32(dec.get_u32()?)?;
                let verf = dec.get_u64()?;
                Ok(WriteRes {
                    attr,
                    count,
                    committed,
                    verf,
                })
            }
            s => Err(NfsError::Status(s)),
        }
    }

    fn create_like(&self, env: &Env, proc: u32, args: &[u8]) -> NfsResult<Handle> {
        let res = self.call(env, proc, args)?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let has_fh = dec.get_bool()?;
                if !has_fh {
                    return Err(NfsError::Decode(xdr::Error::InvalidDiscriminant(0)));
                }
                let fh = Fh3::decode(&mut dec)?;
                Ok(fh.0)
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// CREATE (UNCHECKED).
    pub fn create(&self, env: &Env, dir: Handle, name: &str) -> NfsResult<Handle> {
        let args = CreateArgs {
            whereto: DirOpArgs3 {
                dir: Fh3(dir),
                name: name.to_string(),
            },
            attrs: Sattr3 {
                mode: Some(0o644),
                size: None,
            },
        };
        self.create_like(env, proc3::CREATE, &xdr::to_bytes(&args))
    }

    /// MKDIR.
    pub fn mkdir(&self, env: &Env, dir: Handle, name: &str) -> NfsResult<Handle> {
        let args = CreateArgs {
            whereto: DirOpArgs3 {
                dir: Fh3(dir),
                name: name.to_string(),
            },
            attrs: Sattr3 {
                mode: Some(0o755),
                size: None,
            },
        };
        self.create_like(env, proc3::MKDIR, &xdr::to_bytes(&args))
    }

    /// SYMLINK.
    pub fn symlink(&self, env: &Env, dir: Handle, name: &str, target: &str) -> NfsResult<Handle> {
        let args = SymlinkArgs {
            whereto: DirOpArgs3 {
                dir: Fh3(dir),
                name: name.to_string(),
            },
            attrs: Sattr3::default(),
            target: target.to_string(),
        };
        self.create_like(env, proc3::SYMLINK, &xdr::to_bytes(&args))
    }

    fn remove_like(&self, env: &Env, proc: u32, dir: Handle, name: &str) -> NfsResult<()> {
        let args = DirOpArgs3 {
            dir: Fh3(dir),
            name: name.to_string(),
        };
        let res = self.call(env, proc, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => Ok(()),
            s => Err(NfsError::Status(s)),
        }
    }

    /// REMOVE a file or symlink.
    pub fn remove(&self, env: &Env, dir: Handle, name: &str) -> NfsResult<()> {
        self.remove_like(env, proc3::REMOVE, dir, name)
    }

    /// RMDIR.
    pub fn rmdir(&self, env: &Env, dir: Handle, name: &str) -> NfsResult<()> {
        self.remove_like(env, proc3::RMDIR, dir, name)
    }

    /// RENAME.
    pub fn rename(
        &self,
        env: &Env,
        from_dir: Handle,
        from_name: &str,
        to_dir: Handle,
        to_name: &str,
    ) -> NfsResult<()> {
        let args = RenameArgs {
            from: DirOpArgs3 {
                dir: Fh3(from_dir),
                name: from_name.to_string(),
            },
            to: DirOpArgs3 {
                dir: Fh3(to_dir),
                name: to_name.to_string(),
            },
        };
        let res = self.call(env, proc3::RENAME, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => Ok(()),
            s => Err(NfsError::Status(s)),
        }
    }

    /// READDIR: full listing (issues as many calls as cookies require).
    pub fn readdir(&self, env: &Env, dir: Handle) -> NfsResult<Vec<DirEntry>> {
        let mut out = Vec::new();
        let mut cookie = 0u64;
        loop {
            let args = ReaddirArgs {
                dir: Fh3(dir),
                cookie,
                cookieverf: if cookie == 0 {
                    0
                } else {
                    crate::server::READDIR_VERF
                },
                count: 8192,
            };
            let res = self.call(env, proc3::READDIR, &xdr::to_bytes(&args))?;
            let mut dec = Decoder::new(&res);
            match Self::status_of(&mut dec)? {
                Status::Ok => {
                    let _attr = PostOpAttr::decode(&mut dec)?;
                    let _verf = dec.get_u64()?;
                    while dec.get_bool()? {
                        let fileid = dec.get_u64()?;
                        let name = dec.get_string()?;
                        cookie = dec.get_u64()?;
                        out.push(DirEntry { fileid, name });
                    }
                    let eof = dec.get_bool()?;
                    if eof {
                        return Ok(out);
                    }
                }
                s => return Err(NfsError::Status(s)),
            }
        }
    }

    /// FSINFO.
    pub fn fsinfo(&self, env: &Env, root: Handle) -> NfsResult<FsInfo> {
        let res = self.call(env, proc3::FSINFO, &xdr::to_bytes(&Fh3(root)))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let _attr = PostOpAttr::decode(&mut dec)?;
                let rtmax = dec.get_u32()?;
                let _rtpref = dec.get_u32()?;
                let _rtmult = dec.get_u32()?;
                let wtmax = dec.get_u32()?;
                let _wtpref = dec.get_u32()?;
                let _wtmult = dec.get_u32()?;
                let dtpref = dec.get_u32()?;
                let maxfilesize = dec.get_u64()?;
                Ok(FsInfo {
                    rtmax,
                    wtmax,
                    dtpref,
                    maxfilesize,
                })
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// COMMIT unstable writes.
    pub fn commit(&self, env: &Env, h: Handle) -> NfsResult<u64> {
        let args = CommitArgs {
            file: Fh3(h),
            offset: 0,
            count: 0,
        };
        let res = self.call(env, proc3::COMMIT, &xdr::to_bytes(&args))?;
        let mut dec = Decoder::new(&res);
        match Self::status_of(&mut dec)? {
            Status::Ok => {
                let _wcc = WccData::decode(&mut dec)?;
                Ok(dec.get_u64()?)
            }
            s => Err(NfsError::Status(s)),
        }
    }

    /// Resolve a slash-separated path with repeated LOOKUPs.
    pub fn lookup_path(&self, env: &Env, root: Handle, path: &str) -> NfsResult<Handle> {
        let mut h = root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let (next, _) = self.lookup(env, h, comp)?;
            h = next;
        }
        Ok(h)
    }
}

#[allow(unused)]
fn _assert_traits() {
    fn is_send<T: Send>() {}
    is_send::<Nfs3Client>();
}

// Re-export for the Encode bound used above.
use crate::proto::Sattr3 as _Sattr3Check;
const _: () = {
    fn _check(enc: &mut Encoder, s: &_Sattr3Check) {
        s.encode(enc);
    }
};
