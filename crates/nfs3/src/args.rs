//! Argument/result structs for the NFS procedures the GVFS proxy needs to
//! understand. The proxy decodes READ and WRITE calls to consult its block
//! cache, so these types are shared between server, client and proxy.

use crate::proto::{DirOpArgs3, Fh3, Sattr3, StableHow};
use xdr::{Decode, Decoder, Encode, Encoder, Result as XdrResult};

/// READ3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadArgs {
    /// File to read.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Byte count.
    pub count: u32,
}

impl Encode for ReadArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
}

impl Decode for ReadArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(ReadArgs {
            file: Fh3::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// WRITE3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteArgs {
    /// File to write.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Byte count (== data.len()).
    pub count: u32,
    /// Requested stability.
    pub stable: StableHow,
    /// Payload.
    pub data: Vec<u8>,
}

impl Encode for WriteArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        enc.put_u32(self.stable.as_u32());
        enc.put_opaque_var(&self.data);
    }
}

impl Decode for WriteArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(WriteArgs {
            file: Fh3::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
            stable: StableHow::from_u32(dec.get_u32()?)?,
            data: dec.get_opaque_var()?,
        })
    }
}

/// SETATTR3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetattrArgs {
    /// Target file.
    pub file: Fh3,
    /// New attributes.
    pub attrs: Sattr3,
}

impl Encode for SetattrArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        self.attrs.encode(enc);
        enc.put_bool(false); // guard: no ctime check
    }
}

impl Decode for SetattrArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let file = Fh3::decode(dec)?;
        let attrs = Sattr3::decode(dec)?;
        let has_guard = dec.get_bool()?;
        if has_guard {
            let _sec = dec.get_u32()?;
            let _nsec = dec.get_u32()?;
        }
        Ok(SetattrArgs { file, attrs })
    }
}

/// CREATE3 arguments (UNCHECKED mode only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateArgs {
    /// Where and what to create.
    pub whereto: DirOpArgs3,
    /// Initial attributes.
    pub attrs: Sattr3,
}

impl Encode for CreateArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.whereto.encode(enc);
        enc.put_u32(0); // UNCHECKED
        self.attrs.encode(enc);
    }
}

impl Decode for CreateArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        let whereto = DirOpArgs3::decode(dec)?;
        let how = dec.get_u32()?;
        let attrs = match how {
            0 | 1 => Sattr3::decode(dec)?,
            2 => {
                let _verf = dec.get_u64()?;
                Sattr3::default()
            }
            other => return Err(xdr::Error::InvalidDiscriminant(other)),
        };
        Ok(CreateArgs { whereto, attrs })
    }
}

/// SYMLINK3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymlinkArgs {
    /// Where to create the link.
    pub whereto: DirOpArgs3,
    /// Link attributes.
    pub attrs: Sattr3,
    /// Link target path.
    pub target: String,
}

impl Encode for SymlinkArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.whereto.encode(enc);
        self.attrs.encode(enc);
        enc.put_string(&self.target);
    }
}

impl Decode for SymlinkArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(SymlinkArgs {
            whereto: DirOpArgs3::decode(dec)?,
            attrs: Sattr3::decode(dec)?,
            target: dec.get_string()?,
        })
    }
}

/// RENAME3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameArgs {
    /// Source.
    pub from: DirOpArgs3,
    /// Destination.
    pub to: DirOpArgs3,
}

impl Encode for RenameArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.from.encode(enc);
        self.to.encode(enc);
    }
}

impl Decode for RenameArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(RenameArgs {
            from: DirOpArgs3::decode(dec)?,
            to: DirOpArgs3::decode(dec)?,
        })
    }
}

/// READDIR3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaddirArgs {
    /// Directory handle.
    pub dir: Fh3,
    /// Resume cookie (0 = from the start).
    pub cookie: u64,
    /// Cookie verifier.
    pub cookieverf: u64,
    /// Maximum reply size.
    pub count: u32,
}

impl Encode for ReaddirArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.dir.encode(enc);
        enc.put_u64(self.cookie);
        enc.put_u64(self.cookieverf);
        enc.put_u32(self.count);
    }
}

impl Decode for ReaddirArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(ReaddirArgs {
            dir: Fh3::decode(dec)?,
            cookie: dec.get_u64()?,
            cookieverf: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// COMMIT3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitArgs {
    /// File whose unstable writes should be committed.
    pub file: Fh3,
    /// Range start (0 = whole file).
    pub offset: u64,
    /// Range length (0 = to EOF).
    pub count: u32,
}

impl Encode for CommitArgs {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
}

impl Decode for CommitArgs {
    fn decode(dec: &mut Decoder<'_>) -> XdrResult<Self> {
        Ok(CommitArgs {
            file: Fh3::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Handle;

    fn fh(n: u64) -> Fh3 {
        Fh3(Handle {
            fileid: n,
            generation: 1,
        })
    }

    #[test]
    fn read_args_round_trip() {
        let a = ReadArgs {
            file: fh(3),
            offset: 1 << 30,
            count: 32768,
        };
        let back: ReadArgs = xdr::from_bytes(&xdr::to_bytes(&a)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn write_args_round_trip() {
        let a = WriteArgs {
            file: fh(9),
            offset: 12345,
            count: 5,
            stable: StableHow::Unstable,
            data: b"hello".to_vec(),
        };
        let back: WriteArgs = xdr::from_bytes(&xdr::to_bytes(&a)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn create_symlink_rename_round_trip() {
        let c = CreateArgs {
            whereto: DirOpArgs3 {
                dir: fh(1),
                name: "new.vmss".into(),
            },
            attrs: Sattr3 {
                mode: Some(0o644),
                size: None,
            },
        };
        let back: CreateArgs = xdr::from_bytes(&xdr::to_bytes(&c)).unwrap();
        assert_eq!(back, c);

        let s = SymlinkArgs {
            whereto: DirOpArgs3 {
                dir: fh(1),
                name: "disk.vmdk".into(),
            },
            attrs: Sattr3::default(),
            target: "/exports/golden/disk.vmdk".into(),
        };
        let back: SymlinkArgs = xdr::from_bytes(&xdr::to_bytes(&s)).unwrap();
        assert_eq!(back, s);

        let r = RenameArgs {
            from: DirOpArgs3 {
                dir: fh(1),
                name: "a".into(),
            },
            to: DirOpArgs3 {
                dir: fh(2),
                name: "b".into(),
            },
        };
        let back: RenameArgs = xdr::from_bytes(&xdr::to_bytes(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn readdir_commit_round_trip() {
        let a = ReaddirArgs {
            dir: fh(1),
            cookie: 7,
            cookieverf: 9,
            count: 4096,
        };
        let back: ReaddirArgs = xdr::from_bytes(&xdr::to_bytes(&a)).unwrap();
        assert_eq!(back, a);

        let c = CommitArgs {
            file: fh(2),
            offset: 0,
            count: 0,
        };
        let back: CommitArgs = xdr::from_bytes(&xdr::to_bytes(&c)).unwrap();
        assert_eq!(back, c);
    }
}
