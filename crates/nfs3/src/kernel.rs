//! Kernel NFS client model.
//!
//! Models the compute server's in-kernel NFS client, the layer the paper
//! deliberately leaves unmodified:
//!
//! * a bounded **memory buffer cache** (the "memory file system buffer" of
//!   Figure 2, step 1) holding real data blocks — capacity misses on
//!   multi-GB VM state are exactly the behaviour that motivates GVFS's
//!   proxy *disk* caches;
//! * an **attribute cache** and a **dentry cache** with timeouts, giving
//!   close-to-open consistency semantics;
//! * **write staging**: writes dirty cache blocks and are pushed with
//!   UNSTABLE WRITE RPCs (bounded in-flight parallelism, like `nfsd`
//!   request slots), with a dirty-limit back-pressure and a flush +
//!   COMMIT on close — "staging writes for a limited time in kernel
//!   memory buffers" (paper §3.2.1);
//! * **read gathering**: a large application read issues its missing
//!   blocks as parallel READ RPCs, modelling kernel readahead pipelining.
//!
//! It implements [`vfs::FileIo`], so the VM monitor and the workloads are
//! oblivious to whether they run on a local disk or an NFS mount that may
//! have a chain of GVFS proxies behind it.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::telemetry::Counter;
use simnet::{Env, SimDuration};
use vfs::{Attr, FileIo, FileType, Handle, IoError, IoResult, LruMap};

use crate::client::{Nfs3Client, NfsError};
use crate::proto::{StableHow, Status};

/// `(block, data)` results shared between read-gathering workers.
type SharedBlockList = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
/// Pending `(block, data)` writes shared between write-staging workers.
type SharedBlockQueue = Arc<Mutex<VecDeque<(u64, Vec<u8>)>>>;

/// Kernel client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// READ transfer size (bytes per READ RPC).
    pub rsize: u32,
    /// WRITE transfer size.
    pub wsize: u32,
    /// Buffer cache capacity in bytes.
    pub cache_bytes: u64,
    /// Dirty bytes allowed before writers block on writeback.
    pub dirty_limit_bytes: u64,
    /// Maximum concurrent RPCs for read gathering / write flushing.
    pub max_inflight: usize,
    /// CPU cost of serving one block from the buffer cache.
    pub hit_cost: SimDuration,
    /// Attribute/dentry cache lifetime.
    pub attr_timeout: SimDuration,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            rsize: 32 * 1024,
            wsize: 32 * 1024,
            cache_bytes: 256 * 1024 * 1024,
            dirty_limit_bytes: 16 * 1024 * 1024,
            max_inflight: 8,
            hit_cost: SimDuration::from_micros(25),
            attr_timeout: SimDuration::from_secs(30),
        }
    }
}

/// RPC/cache counters for reports and tests.
///
/// A point-in-time view over the telemetry registry: the client updates
/// the shared `nfs3/<instance>.*` counters, and [`KernelClient::stats`]
/// reads them back into this struct.
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelStats {
    /// READ RPCs issued.
    pub read_rpcs: u64,
    /// WRITE RPCs issued.
    pub write_rpcs: u64,
    /// Metadata RPCs (lookup/getattr/readdir/...).
    pub meta_rpcs: u64,
    /// Buffer cache block hits.
    pub cache_hits: u64,
    /// Buffer cache block misses.
    pub cache_misses: u64,
    /// Payload bytes fetched by READ RPCs.
    pub bytes_read: u64,
    /// Payload bytes pushed by WRITE RPCs.
    pub bytes_written: u64,
}

struct Block {
    data: Vec<u8>,
    dirty: bool,
}

struct KcState {
    cache: LruMap<(u64, u64), Block>,
    dirty_bytes: u64,
    // BTreeMap: sync() scans these to recover handles, so iteration order
    // must be deterministic (lint: determinism).
    dcache: BTreeMap<String, (Handle, u64)>, // path -> (handle, expires_ns)
    acache: BTreeMap<Handle, (Attr, u64)>,
    local_size: HashMap<u64, u64>, // fileid -> size as seen through our writes
}

/// Telemetry counters backing [`KernelStats`]; registered once at mount.
struct KcTel {
    read_rpcs: Counter,
    write_rpcs: Counter,
    meta_rpcs: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
}

impl KcTel {
    fn register(env: &Env) -> Self {
        let tel = env.telemetry();
        let inst = tel.instance_name("kernel-client");
        let c = |name: &str| tel.counter("nfs3", format!("{inst}.{name}"));
        KcTel {
            read_rpcs: c("read_rpcs"),
            write_rpcs: c("write_rpcs"),
            meta_rpcs: c("meta_rpcs"),
            cache_hits: c("buffer_cache.hits"),
            cache_misses: c("buffer_cache.misses"),
            bytes_read: c("bytes_read"),
            bytes_written: c("bytes_written"),
        }
    }
}

/// The kernel NFS client for one mount.
pub struct KernelClient {
    nfs: Nfs3Client,
    root: Handle,
    cfg: KernelConfig,
    state: Mutex<KcState>,
    tel: KcTel,
}

impl KernelClient {
    /// Mount `export` through `nfs` and return the client.
    pub fn mount(
        env: &Env,
        nfs: Nfs3Client,
        export: &str,
        cfg: KernelConfig,
    ) -> IoResult<Arc<Self>> {
        let root = nfs.mount(env, export).map_err(map_err)?;
        Ok(Arc::new(KernelClient {
            nfs,
            root,
            cfg,
            state: Mutex::new(KcState {
                cache: LruMap::new(((cfg.cache_bytes / cfg.rsize as u64) as usize).max(1)),
                dirty_bytes: 0,
                dcache: BTreeMap::new(),
                acache: BTreeMap::new(),
                local_size: HashMap::new(),
            }),
            tel: KcTel::register(env),
        }))
    }

    /// The mount's root handle.
    pub fn root(&self) -> Handle {
        self.root
    }

    /// Counter snapshot (a view over the telemetry registry).
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            read_rpcs: self.tel.read_rpcs.get(),
            write_rpcs: self.tel.write_rpcs.get(),
            meta_rpcs: self.tel.meta_rpcs.get(),
            cache_hits: self.tel.cache_hits.get(),
            cache_misses: self.tel.cache_misses.get(),
            bytes_read: self.tel.bytes_read.get(),
            bytes_written: self.tel.bytes_written.get(),
        }
    }

    /// Reset counters.
    pub fn reset_stats(&self) {
        self.tel.read_rpcs.reset();
        self.tel.write_rpcs.reset();
        self.tel.meta_rpcs.reset();
        self.tel.cache_hits.reset();
        self.tel.cache_misses.reset();
        self.tel.bytes_read.reset();
        self.tel.bytes_written.reset();
    }

    /// Drop all cached data and metadata, as a umount/mount cycle does.
    /// Benchmarks call this to start a phase with cold kernel caches
    /// (the paper: "initially setup with cold caches by un-mounting and
    /// mounting the virtual file system").
    pub fn invalidate_caches(&self) {
        let mut st = self.state.lock();
        assert_eq!(st.dirty_bytes, 0, "invalidate with dirty data pending");
        st.cache.clear();
        st.dcache.clear();
        st.acache.clear();
        st.local_size.clear();
    }

    fn bs(&self) -> u64 {
        self.cfg.rsize as u64
    }

    fn cached_attr(&self, env: &Env, h: Handle) -> IoResult<Attr> {
        let now = env.now().as_nanos();
        {
            let st = self.state.lock();
            if let Some((attr, exp)) = st.acache.get(&h) {
                if *exp > now {
                    let mut a = attr.clone();
                    // Our dirty writes may have grown the file past the
                    // server-reported size.
                    if let Some(sz) = st.local_size.get(&h.fileid) {
                        a.size = a.size.max(*sz);
                    }
                    return Ok(a);
                }
            }
        }
        let attr = self.nfs.getattr(env, h).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        let mut st = self.state.lock();
        let exp = now + self.cfg.attr_timeout.as_nanos();
        st.acache.insert(h, (attr.clone(), exp));
        let mut a = attr;
        if let Some(sz) = st.local_size.get(&h.fileid) {
            a.size = a.size.max(*sz);
        }
        Ok(a)
    }

    /// Fetch the given blocks with bounded parallelism; returns (block,
    /// data) pairs. Data is padded to the block size.
    fn fetch_blocks(
        &self,
        env: &Env,
        h: Handle,
        blocks: Vec<u64>,
    ) -> IoResult<Vec<(u64, Vec<u8>)>> {
        if blocks.is_empty() {
            return Ok(Vec::new());
        }
        let bs = self.bs();
        let n = blocks.len();
        let results: SharedBlockList = Arc::new(Mutex::new(Vec::with_capacity(n)));
        let queue: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(blocks.into_iter().collect()));
        let workers = self.cfg.max_inflight.min(n).max(1);
        if workers == 1 {
            // Fast path: no helper processes.
            while let Some(b) = {
                let q = queue.lock().pop_front();
                q
            } {
                let res = self.nfs.read(env, h, b * bs, bs as u32).map_err(map_err)?;
                let mut data = res.data;
                data.resize(bs as usize, 0);
                results.lock().push((b, data));
            }
        } else {
            let mut joins = Vec::with_capacity(workers);
            for w in 0..workers {
                let queue = queue.clone();
                let results = results.clone();
                let nfs = self.nfs.clone();
                let bs_w = bs;
                joins.push(env.spawn(format!("nfs-read-{w}"), move |env| loop {
                    let b = match queue.lock().pop_front() {
                        Some(b) => b,
                        None => return,
                    };
                    match nfs.read(&env, h, b * bs_w, bs_w as u32) {
                        Ok(res) => {
                            let mut data = res.data;
                            data.resize(bs_w as usize, 0);
                            results.lock().push((b, data));
                        }
                        Err(_) => return, // surfaces as a short result below
                    }
                }));
            }
            for j in joins {
                j.join(env);
            }
        }
        let mut out = Arc::try_unwrap(results)
            .map_err(|_| IoError::Io("read worker leak".into()))?
            .into_inner();
        if out.len() != n {
            return Err(IoError::Io("read RPC failed".into()));
        }
        self.tel.read_rpcs.add(n as u64);
        self.tel.bytes_read.add(n as u64 * bs);
        out.sort_unstable_by_key(|(b, _)| *b);
        Ok(out)
    }

    /// Push dirty blocks with bounded parallelism and COMMIT.
    fn write_blocks(&self, env: &Env, h: Handle, blocks: Vec<(u64, Vec<u8>)>) -> IoResult<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        let bs = self.bs();
        let n = blocks.len();
        // Do not write past the file's logical size: the tail block may
        // extend beyond EOF.
        let size = {
            let st = self.state.lock();
            st.local_size.get(&h.fileid).copied()
        };
        let queue: SharedBlockQueue = Arc::new(Mutex::new(blocks.into_iter().collect()));
        let failures = Arc::new(Mutex::new(0usize));
        let workers = self.cfg.max_inflight.min(n).max(1);
        if workers == 1 {
            while let Some((b, data)) = {
                let q = queue.lock().pop_front();
                q
            } {
                let (off, data) = clip_to_size(b, data, bs, size);
                if data.is_empty() {
                    continue;
                }
                self.nfs
                    .write(env, h, off, data, StableHow::Unstable)
                    .map_err(map_err)?;
            }
        } else {
            let mut joins = Vec::with_capacity(workers);
            for w in 0..workers {
                let queue = queue.clone();
                let failures = failures.clone();
                let nfs = self.nfs.clone();
                joins.push(env.spawn(format!("nfs-write-{w}"), move |env| loop {
                    let (b, data) = match queue.lock().pop_front() {
                        Some(t) => t,
                        None => return,
                    };
                    let (off, data) = clip_to_size(b, data, bs, size);
                    if data.is_empty() {
                        continue;
                    }
                    if nfs.write(&env, h, off, data, StableHow::Unstable).is_err() {
                        *failures.lock() += 1;
                        return;
                    }
                }));
            }
            for j in joins {
                j.join(env);
            }
        }
        if *failures.lock() > 0 {
            return Err(IoError::Io("write RPC failed".into()));
        }
        self.nfs.commit(env, h).map_err(map_err)?;
        self.tel.write_rpcs.add(n as u64);
        self.tel.bytes_written.add(n as u64 * bs);
        self.tel.meta_rpcs.inc(); // the COMMIT
        Ok(())
    }

    /// Take dirty blocks (for `only_file` if given) out of the cache's
    /// dirty set, returning them for writeback. Blocks stay cached clean.
    fn collect_dirty(&self, only_file: Option<u64>) -> Vec<(Handle, u64, Vec<u8>)> {
        let mut st = self.state.lock();
        let keys: Vec<(u64, u64)> = st
            .cache
            .iter_mru()
            .filter(|((f, _), blk)| blk.dirty && only_file.is_none_or(|of| *f == of))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(blk) = st.cache.get_mut(&k) {
                blk.dirty = false;
                let data = blk.data.clone();
                out.push((
                    Handle {
                        fileid: k.0,
                        generation: 0, // filled by caller per-file
                    },
                    k.1,
                    data,
                ));
            }
        }
        st.dirty_bytes = st.dirty_bytes.saturating_sub(out.len() as u64 * self.bs());
        out.sort_unstable_by_key(|(_, b, _)| *b);
        out
    }

    fn flush_file(&self, env: &Env, h: Handle) -> IoResult<()> {
        let dirty = self.collect_dirty(Some(h.fileid));
        let blocks: Vec<(u64, Vec<u8>)> = dirty.into_iter().map(|(_, b, d)| (b, d)).collect();
        self.write_blocks(env, h, blocks)
    }

    /// Handle eviction results: a dirty block falling out of the LRU
    /// triggers a batched write-back of the file's dirty set (the kernel
    /// coalesces write-back rather than dribbling single pages).
    fn writeback_evicted(
        &self,
        env: &Env,
        evicted: Vec<((u64, u64), Block)>,
        h: Handle,
    ) -> IoResult<()> {
        let bs = self.bs();
        let mut flush_needed = false;
        let mut stragglers = Vec::new();
        for ((fileid, b), blk) in evicted {
            if blk.dirty {
                {
                    let mut st = self.state.lock();
                    st.dirty_bytes = st.dirty_bytes.saturating_sub(bs);
                }
                if fileid == h.fileid {
                    stragglers.push((b, blk.data));
                    flush_needed = true;
                }
                // Dirty data for another file evicted here would need its
                // handle; our workloads only hold one hot written file at
                // a time, and flush_file on close covers the rest.
            }
        }
        if flush_needed {
            // The evicted blocks themselves plus everything else dirty in
            // the file, in one pipelined batch.
            let mut batch: Vec<(u64, Vec<u8>)> = self
                .collect_dirty(Some(h.fileid))
                .into_iter()
                .map(|(_, b, d)| (b, d))
                .collect();
            batch.extend(stragglers);
            batch.sort_unstable_by_key(|(b, _)| *b);
            batch.dedup_by_key(|(b, _)| *b);
            self.write_blocks(env, h, batch)?;
        }
        Ok(())
    }
}

fn clip_to_size(b: u64, mut data: Vec<u8>, bs: u64, size: Option<u64>) -> (u64, Vec<u8>) {
    let off = b * bs;
    if let Some(sz) = size {
        if off >= sz {
            return (off, Vec::new());
        }
        let max = (sz - off).min(bs) as usize;
        data.truncate(max);
    }
    (off, data)
}

fn map_err(e: NfsError) -> IoError {
    match e {
        NfsError::Status(Status::NoEnt) => IoError::NotFound,
        NfsError::Status(Status::Exist) => IoError::Exists,
        NfsError::Status(Status::NotDir) => IoError::NotDir,
        NfsError::Status(Status::IsDir) => IoError::IsDir,
        NfsError::Status(Status::NotEmpty) => IoError::NotEmpty,
        NfsError::Status(Status::Stale) => IoError::Stale,
        NfsError::Status(Status::Inval) => IoError::InvalidName,
        other => IoError::Io(other.to_string()),
    }
}

impl FileIo for KernelClient {
    fn lookup_path(&self, env: &Env, path: &str) -> IoResult<Handle> {
        let now = env.now().as_nanos();
        let key = path.trim_matches('/').to_string();
        {
            let st = self.state.lock();
            if let Some((h, exp)) = st.dcache.get(&key) {
                if *exp > now {
                    return Ok(*h);
                }
            }
        }
        // Walk components, one LOOKUP RPC each (dentry-cache miss path).
        let mut h = self.root;
        let mut rpcs = 0u64;
        for comp in key.split('/').filter(|c| !c.is_empty()) {
            let (next, _) = self.nfs.lookup(env, h, comp).map_err(map_err)?;
            rpcs += 1;
            h = next;
        }
        self.tel.meta_rpcs.add(rpcs);
        let mut st = self.state.lock();
        let exp = now + self.cfg.attr_timeout.as_nanos();
        st.dcache.insert(key, (h, exp));
        Ok(h)
    }

    fn getattr(&self, env: &Env, h: Handle) -> IoResult<Attr> {
        self.cached_attr(env, h)
    }

    fn read(&self, env: &Env, h: Handle, offset: u64, len: u32) -> IoResult<Vec<u8>> {
        let attr = self.cached_attr(env, h)?;
        if attr.ftype != FileType::Regular {
            return Err(IoError::BadType);
        }
        if offset >= attr.size {
            return Ok(Vec::new());
        }
        let len = (len as u64).min(attr.size - offset) as usize;
        if len == 0 {
            return Ok(Vec::new());
        }
        let bs = self.bs();
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;

        // Scan the cache: copy hits, collect misses.
        // BTreeMap: the copy-out loop below iterates it (lint: determinism).
        let mut assembled: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut misses = Vec::new();
        {
            let mut st = self.state.lock();
            for b in first..=last {
                if let Some(blk) = st.cache.get(&(h.fileid, b)) {
                    assembled.insert(b, blk.data.clone());
                    self.tel.cache_hits.inc();
                } else {
                    misses.push(b);
                    self.tel.cache_misses.inc();
                }
            }
        }
        for _ in first..=last {
            env.sleep(self.cfg.hit_cost);
        }
        if !misses.is_empty() {
            let fetched = self.fetch_blocks(env, h, misses)?;
            let mut evicted_all = Vec::new();
            {
                let mut st = self.state.lock();
                for (b, data) in &fetched {
                    if let Some(ev) = st.cache.insert(
                        (h.fileid, *b),
                        Block {
                            data: data.clone(),
                            dirty: false,
                        },
                    ) {
                        evicted_all.push(ev);
                    }
                }
            }
            self.writeback_evicted(env, evicted_all, h)?;
            for (b, data) in fetched {
                assembled.insert(b, data);
            }
        }
        // Assemble the byte range from block copies.
        let mut out = vec![0u8; len];
        for (b, data) in assembled {
            let block_start = b * bs;
            let copy_from = offset.max(block_start);
            let copy_to = (offset + len as u64).min(block_start + bs);
            if copy_from >= copy_to {
                continue;
            }
            let src = &data[(copy_from - block_start) as usize..(copy_to - block_start) as usize];
            out[(copy_from - offset) as usize..(copy_to - offset) as usize].copy_from_slice(src);
        }
        Ok(out)
    }

    fn write(&self, env: &Env, h: Handle, offset: u64, data: &[u8]) -> IoResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = self.bs();
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let size_now = self.cached_attr(env, h)?.size;

        // Read-modify-write: partially-overwritten blocks that exist on
        // the server and are not cached must be fetched first.
        let mut rmw = Vec::new();
        {
            let st = self.state.lock();
            for b in [first, last] {
                let bstart = b * bs;
                let bend = bstart + bs;
                let fully_covered = offset <= bstart && (offset + data.len() as u64) >= bend;
                let exists = bstart < size_now;
                if !fully_covered
                    && exists
                    && !st.cache.contains(&(h.fileid, b))
                    && !rmw.contains(&b)
                {
                    rmw.push(b);
                }
            }
        }
        if !rmw.is_empty() {
            let fetched = self.fetch_blocks(env, h, rmw)?;
            let mut st = self.state.lock();
            for (b, d) in fetched {
                st.cache.insert(
                    (h.fileid, b),
                    Block {
                        data: d,
                        dirty: false,
                    },
                );
            }
        }

        // Apply the write into cache blocks, marking dirty.
        let mut evicted_all = Vec::new();
        {
            let mut st = self.state.lock();
            for b in first..=last {
                let bstart = b * bs;
                let from = offset.max(bstart);
                let to = (offset + data.len() as u64).min(bstart + bs);
                let src = &data[(from - offset) as usize..(to - offset) as usize];
                let was_dirty = match st.cache.get_mut(&(h.fileid, b)) {
                    Some(blk) => {
                        let was = blk.dirty;
                        blk.data[(from - bstart) as usize..(to - bstart) as usize]
                            .copy_from_slice(src);
                        blk.dirty = true;
                        Some(was)
                    }
                    None => None,
                };
                match was_dirty {
                    Some(true) => {}
                    Some(false) => st.dirty_bytes += bs,
                    None => {
                        let mut block = vec![0u8; bs as usize];
                        block[(from - bstart) as usize..(to - bstart) as usize]
                            .copy_from_slice(src);
                        if let Some(ev) = st.cache.insert(
                            (h.fileid, b),
                            Block {
                                data: block,
                                dirty: true,
                            },
                        ) {
                            evicted_all.push(ev);
                        }
                        st.dirty_bytes += bs;
                    }
                }
            }
            let end = offset + data.len() as u64;
            let e = st.local_size.entry(h.fileid).or_insert(size_now);
            *e = (*e).max(end);
            // Keep the attribute cache's size fresh for subsequent reads.
            if let Some((attr, _)) = st.acache.get_mut(&h) {
                attr.size = attr.size.max(end);
            }
        }
        for _ in first..=last {
            env.sleep(self.cfg.hit_cost);
        }
        self.writeback_evicted(env, evicted_all, h)?;

        // Back-pressure: too much dirty data forces a synchronous flush,
        // like the kernel's dirty-ratio writeback.
        let over_limit = { self.state.lock().dirty_bytes > self.cfg.dirty_limit_bytes };
        if over_limit {
            self.flush_file(env, h)?;
        }
        Ok(())
    }

    fn create_path(&self, env: &Env, path: &str) -> IoResult<Handle> {
        let (parent, name) = vfs::io::split_path(path)?;
        let dir = self.lookup_path(env, parent)?;
        let h = self.nfs.create(env, dir, name).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        let now = env.now().as_nanos();
        let mut st = self.state.lock();
        st.dcache.insert(
            path.trim_matches('/').to_string(),
            (h, now + self.cfg.attr_timeout.as_nanos()),
        );
        st.local_size.insert(h.fileid, 0);
        Ok(h)
    }

    fn mkdir_path(&self, env: &Env, path: &str) -> IoResult<Handle> {
        let (parent, name) = vfs::io::split_path(path)?;
        let dir = self.lookup_path(env, parent)?;
        let h = self.nfs.mkdir(env, dir, name).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        Ok(h)
    }

    fn symlink_path(&self, env: &Env, path: &str, target: &str) -> IoResult<()> {
        let (parent, name) = vfs::io::split_path(path)?;
        let dir = self.lookup_path(env, parent)?;
        self.nfs.symlink(env, dir, name, target).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        Ok(())
    }

    fn readlink(&self, env: &Env, h: Handle) -> IoResult<String> {
        let t = self.nfs.readlink(env, h).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        Ok(t)
    }

    fn readdir_path(&self, env: &Env, path: &str) -> IoResult<Vec<String>> {
        let dir = self.lookup_path(env, path)?;
        let entries = self.nfs.readdir(env, dir).map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        Ok(entries.into_iter().map(|e| e.name).collect())
    }

    fn remove_path(&self, env: &Env, path: &str) -> IoResult<()> {
        let (parent, name) = vfs::io::split_path(path)?;
        let dir = self.lookup_path(env, parent)?;
        let res = match self.nfs.remove(env, dir, name) {
            Ok(()) => Ok(()),
            Err(NfsError::Status(Status::IsDir)) => self.nfs.rmdir(env, dir, name),
            Err(e) => Err(e),
        };
        res.map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        let mut st = self.state.lock();
        st.dcache.remove(path.trim_matches('/'));
        Ok(())
    }

    fn set_size(&self, env: &Env, h: Handle, size: u64) -> IoResult<()> {
        self.nfs
            .setattr(env, h, Some(size), None)
            .map_err(map_err)?;
        self.tel.meta_rpcs.inc();
        let mut st = self.state.lock();
        st.local_size.insert(h.fileid, size);
        if let Some((attr, _)) = st.acache.get_mut(&h) {
            attr.size = size;
        }
        Ok(())
    }

    fn close(&self, env: &Env, h: Handle) -> IoResult<()> {
        // Close-to-open consistency: flush dirty data and drop the
        // attribute cache entry so the next open revalidates.
        self.flush_file(env, h)?;
        self.state.lock().acache.remove(&h);
        Ok(())
    }

    fn sync(&self, env: &Env) -> IoResult<()> {
        // Flush every file with dirty blocks.
        loop {
            let next_file = {
                let st = self.state.lock();
                let nf = st
                    .cache
                    .iter_mru()
                    .find(|(_, blk)| blk.dirty)
                    .map(|((f, _), _)| *f);
                nf
            };
            let fileid = match next_file {
                Some(f) => f,
                None => break,
            };
            // Recover a usable handle for the file: generation is not
            // tracked per block, so find it in the dcache/acache.
            let h = {
                let st = self.state.lock();
                let found = st
                    .acache
                    .keys()
                    .chain(st.dcache.values().map(|(h, _)| h))
                    .find(|h| h.fileid == fileid)
                    .copied();
                found
            };
            match h {
                Some(h) => self.flush_file(env, h)?,
                None => {
                    // No handle — drop the dirty bits (cannot happen in
                    // practice: writes require a handle, which populates
                    // the attribute cache).
                    let _ = self.collect_dirty(Some(fileid));
                }
            }
        }
        Ok(())
    }
}
