//! The simulated kernel NFSv3 server (plus the MOUNT v3 program).
//!
//! Exports a [`vfs::Fs`] with realistic timing: a bounded server memory
//! buffer cache, a disk with positioning/streaming costs, readahead-style
//! sequential detection, NFSv3 unstable writes gathered in memory until a
//! COMMIT (or sync write) flushes them.
//!
//! This is the component the paper treats as untouchable: GVFS
//! explicitly works with *unmodified* kernel NFS servers, extending the
//! system purely with user-level proxies in front of this server.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use oncrpc::{OpaqueAuth, ProgramError, RpcProgram};
use parking_lot::Mutex;
use simnet::telemetry::{Counter, Telemetry};
use simnet::{splitmix64, Env, SimDuration, SimHandle};
use vfs::{Disk, Fs, FsResult, Handle, LruMap};
use xdr::{Decode, Encode, Encoder};

use crate::args::*;
use crate::proto::*;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Memory buffer cache capacity in bytes.
    pub memory_cache_bytes: u64,
    /// Cache/transfer block size.
    pub block_size: u32,
    /// Per-call CPU cost (decode, dispatch, encode).
    pub op_cpu: SimDuration,
    /// Whether AUTH_SYS credentials are required (kernel servers reject
    /// the middleware's AUTH_GVFS flavor — that mapping is the GVFS
    /// server-side proxy's job).
    pub require_auth_sys: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            memory_cache_bytes: 768 * 1024 * 1024,
            block_size: 32 * 1024,
            op_cpu: SimDuration::from_micros(30),
            require_auth_sys: true,
        }
    }
}

/// Operation counters, used by tests and by the benchmark reports (e.g.
/// the paper's "65,750 NFS reads, 60,452 filtered" claim).
///
/// A view over the telemetry registry: the server updates the shared
/// `nfs3/<instance>.*` counters and [`Nfs3Server::stats`] reads them back.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerStats {
    /// READ calls served.
    pub reads: u64,
    /// WRITE calls served.
    pub writes: u64,
    /// Payload bytes read.
    pub read_bytes: u64,
    /// Payload bytes written.
    pub write_bytes: u64,
    /// Buffer-cache block hits.
    pub cache_hits: u64,
    /// Buffer-cache block misses.
    pub cache_misses: u64,
    /// Calls of any kind.
    pub calls: u64,
}

/// One cached reply in the duplicate-request cache. A retransmitted call
/// arrives bearing the xid of the original; if credential and procedure
/// also match, the server replays the stored reply instead of
/// re-executing a non-idempotent operation (the classic Juszczak DRC).
struct DrcEntry {
    cred_hash: u64,
    proc: u32,
    reply: Vec<u8>,
}

/// Bound on cached replies; old entries age out LRU-style, matching the
/// fixed-size cache of a real kernel server.
const DRC_CAPACITY: usize = 1024;

struct SrvState {
    cache: LruMap<(u64, u64), ()>,
    next_seq_offset: HashMap<u64, u64>,
    unstable_bytes: HashMap<u64, u64>,
    /// Uncommitted write extents per fileid: `(handle, offset, len)`.
    /// A crash loses exactly these bytes (zero-filled on restart), which
    /// is what forces clients to honour the write-verifier protocol.
    /// BTreeMap so restart replays losses in deterministic order.
    unstable_extents: BTreeMap<u64, Vec<(Handle, u64, u64)>>,
    /// Duplicate-request cache, keyed by xid.
    drc: LruMap<u32, DrcEntry>,
    /// Write verifier for this boot of this instance. Changes on every
    /// [`Nfs3Server::restart`], signalling to clients that unstable
    /// writes from before the crash may have been lost.
    write_verf: u64,
    boot_seq: u64,
}

/// FNV-1a over a byte string; used to derive the per-instance write
/// verifier and to fingerprint credentials for DRC matching.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn cred_hash(cred: &OpaqueAuth) -> u64 {
    fnv1a(&cred.body) ^ splitmix64(cred.flavor.as_u32() as u64)
}

/// Procedures whose effect is not idempotent: re-executing a retransmit
/// would create/remove/rename twice (or bump ctime twice). These are the
/// calls the DRC must intercept.
fn is_nonidempotent(proc: u32) -> bool {
    matches!(
        proc,
        proc3::SETATTR
            | proc3::CREATE
            | proc3::MKDIR
            | proc3::SYMLINK
            | proc3::REMOVE
            | proc3::RMDIR
            | proc3::RENAME
    )
}

/// Telemetry counters backing [`ServerStats`]; registered at construction.
struct SrvTel {
    registry: Telemetry,
    inst: String,
    /// Per-procedure call counters, cached after first registration so the
    /// dispatch path never takes the registry lock (or formats a `String`
    /// key) per request.
    procs: Mutex<Vec<(u32, Counter)>>,
    /// Registered on first DRC hit (not at construction): snapshots list
    /// every registered metric, so an eager `drc.hits: 0` would add a
    /// line to reports that the lazy resolution never produced.
    drc_hits: std::sync::OnceLock<Counter>,
    reads: Counter,
    writes: Counter,
    read_bytes: Counter,
    write_bytes: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    calls: Counter,
}

impl SrvTel {
    fn register(registry: &Telemetry) -> Self {
        let inst = registry.instance_name("nfs3-server");
        let c = |name: &str| registry.counter("nfs3", format!("{inst}.{name}"));
        SrvTel {
            reads: c("reads"),
            writes: c("writes"),
            read_bytes: c("read_bytes"),
            write_bytes: c("write_bytes"),
            cache_hits: c("buffer_cache.hits"),
            cache_misses: c("buffer_cache.misses"),
            calls: c("calls"),
            drc_hits: std::sync::OnceLock::new(),
            procs: Mutex::new(Vec::new()),
            registry: registry.clone(),
            inst,
        }
    }

    /// `nfs3/<inst>.proc.<name>` counter for a procedure, cached.
    fn proc_counter(&self, proc: u32) -> Counter {
        let mut procs = self.procs.lock();
        match procs.binary_search_by_key(&proc, |(p, _)| *p) {
            Ok(i) => procs[i].1.clone(),
            Err(i) => {
                let c = self
                    .registry
                    .counter("nfs3", format!("{}.proc.{}", self.inst, proc3_name(proc)));
                procs.insert(i, (proc, c.clone()));
                c
            }
        }
    }
}

/// The NFSv3 server program.
pub struct Nfs3Server {
    fs: Arc<Mutex<Fs>>,
    disk: Disk,
    state: Mutex<SrvState>,
    cfg: ServerConfig,
    tel: SrvTel,
}

impl Nfs3Server {
    /// Create a server exporting `fs`, storing data on `disk`.
    pub fn new(handle: &SimHandle, fs: Arc<Mutex<Fs>>, disk: Disk, cfg: ServerConfig) -> Arc<Self> {
        let cache_blocks = ((cfg.memory_cache_bytes / cfg.block_size as u64) as usize).max(1);
        let tel = SrvTel::register(handle.telemetry());
        // Boot 0's verifier: a pure function of the instance name, so
        // runs replay identically; restart() rotates it.
        let write_verf = splitmix64(fnv1a(tel.inst.as_bytes()));
        Arc::new(Nfs3Server {
            fs,
            disk,
            state: Mutex::new(SrvState {
                cache: LruMap::new(cache_blocks),
                next_seq_offset: HashMap::new(),
                unstable_bytes: HashMap::new(),
                unstable_extents: BTreeMap::new(),
                drc: LruMap::new(DRC_CAPACITY),
                write_verf,
                boot_seq: 0,
            }),
            cfg,
            tel,
        })
    }

    /// The write verifier of the current boot (clients compare the value
    /// returned by WRITE against the one returned by COMMIT).
    pub fn write_verf(&self) -> u64 {
        self.state.lock().write_verf
    }

    /// Simulate a crash + reboot at virtual time `now_ns`: the buffer
    /// cache, sequential-detection state, duplicate-request cache and all
    /// *uncommitted* writes are lost (their extents zero-fill, as data
    /// that never reached disk), and the write verifier rotates so
    /// clients detect at COMMIT time that they must resend.
    pub fn restart(&self, now_ns: u64) {
        let lost = {
            let mut st = self.state.lock();
            st.boot_seq += 1;
            st.write_verf = splitmix64(fnv1a(self.tel.inst.as_bytes()) ^ st.boot_seq);
            st.cache.clear();
            st.next_seq_offset.clear();
            st.unstable_bytes.clear();
            st.drc.clear();
            std::mem::take(&mut st.unstable_extents)
        };
        {
            let mut fs = self.fs.lock();
            for ranges in lost.into_values() {
                for (h, offset, len) in ranges {
                    let zeros = vec![0u8; len as usize];
                    let _ = fs.write(h, offset, &zeros, now_ns);
                }
            }
        }
        self.tel
            .registry
            .counter("nfs3", format!("{}.restarts", self.tel.inst))
            .inc();
    }

    /// Convenience: build a fresh filesystem + server.
    pub fn with_new_fs(
        handle: &SimHandle,
        disk: Disk,
        cfg: ServerConfig,
    ) -> (Arc<Mutex<Fs>>, Arc<Self>) {
        let fs = Arc::new(Mutex::new(Fs::new(handle.now().as_nanos())));
        let srv = Self::new(handle, fs.clone(), disk, cfg);
        (fs, srv)
    }

    /// Snapshot of the operation counters (a telemetry view).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            reads: self.tel.reads.get(),
            writes: self.tel.writes.get(),
            read_bytes: self.tel.read_bytes.get(),
            write_bytes: self.tel.write_bytes.get(),
            cache_hits: self.tel.cache_hits.get(),
            cache_misses: self.tel.cache_misses.get(),
            calls: self.tel.calls.get(),
        }
    }

    /// Reset counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.tel.reads.reset();
        self.tel.writes.reset();
        self.tel.read_bytes.reset();
        self.tel.write_bytes.reset();
        self.tel.cache_hits.reset();
        self.tel.cache_misses.reset();
        self.tel.calls.reset();
    }

    /// Shared filesystem (scenario setup pre-populates images through it).
    pub fn fs(&self) -> Arc<Mutex<Fs>> {
        self.fs.clone()
    }

    /// Charge cache/disk time for reading `len` bytes at `offset`.
    fn charge_read(&self, env: &Env, fileid: u64, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let bs = self.cfg.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        for b in first..=last {
            let (hit, sequential) = {
                let mut st = self.state.lock();
                let hit = st.cache.get(&(fileid, b)).is_some();
                let sequential = st.next_seq_offset.get(&fileid) == Some(&b);
                st.next_seq_offset.insert(fileid, b + 1);
                if hit {
                    self.tel.cache_hits.inc();
                } else {
                    self.tel.cache_misses.inc();
                    st.cache.insert((fileid, b), ());
                }
                (hit, sequential)
            };
            if !hit {
                if sequential {
                    self.disk.stream_io(env, bs);
                } else {
                    self.disk.random_io(env, bs);
                }
            }
        }
    }

    fn check_auth(&self, cred: &OpaqueAuth, proc: u32) -> Result<(), ProgramError> {
        if !self.cfg.require_auth_sys || proc == proc3::NULL {
            return Ok(());
        }
        match cred.flavor {
            oncrpc::AuthFlavor::Sys => Ok(()),
            // A kernel server has no idea what a GVFS middleware
            // credential is: too weak.
            _ => Err(ProgramError::AuthError(oncrpc::msg::auth_stat::TOOWEAK)),
        }
    }

    fn getattr_of(&self, h: Handle) -> FsResult<vfs::Attr> {
        self.fs.lock().getattr(h)
    }

    fn ok_header(status: Status) -> Encoder {
        let mut enc = Encoder::new();
        enc.put_u32(status.as_u32());
        enc
    }

    fn err_with_postop(&self, status: Status, h: Option<Handle>) -> Vec<u8> {
        let mut enc = Self::ok_header(status);
        let attr = h.and_then(|h| self.getattr_of(h).ok());
        PostOpAttr(attr).encode(&mut enc);
        enc.into_bytes()
    }

    fn err_with_wcc(&self, status: Status, h: Option<Handle>) -> Vec<u8> {
        let mut enc = Self::ok_header(status);
        let attr = h.and_then(|h| self.getattr_of(h).ok());
        WccData(attr).encode(&mut enc);
        enc.into_bytes()
    }

    fn proc_getattr(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        match self.getattr_of(fh.0) {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                Fattr3(attr).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(Self::ok_header(e.into()).into_bytes()),
        }
    }

    fn proc_setattr(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: SetattrArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let res = self
            .fs
            .lock()
            .setattr(a.file.0, a.attrs.size, a.attrs.mode, now);
        match res {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                WccData(Some(attr)).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_wcc(e.into(), Some(a.file.0))),
        }
    }

    fn proc_lookup(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: DirOpArgs3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        match fs.lookup(a.dir.0, &a.name) {
            Ok(obj) => {
                let mut enc = Self::ok_header(Status::Ok);
                Fh3(obj).encode(&mut enc);
                PostOpAttr(fs.getattr(obj).ok()).encode(&mut enc);
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                let mut enc = Self::ok_header(e.into());
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
        }
    }

    fn proc_access(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let mut dec = xdr::Decoder::new(args);
        let fh = Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
        let wanted = dec.get_u32().map_err(|_| ProgramError::GarbageArgs)?;
        match self.getattr_of(fh.0) {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(Some(attr)).encode(&mut enc);
                enc.put_u32(wanted); // grant everything requested
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_postop(e.into(), None)),
        }
    }

    fn proc_readlink(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        match fs.readlink(fh.0) {
            Ok(target) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(fs.getattr(fh.0).ok()).encode(&mut enc);
                enc.put_string(&target);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_postop(e.into(), Some(fh.0)))
            }
        }
    }

    fn proc_read(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: ReadArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let count = a.count.min(MAX_BLOCK);
        let now = env.now().as_nanos();
        let res = self.fs.lock().read(a.file.0, a.offset, count as usize, now);
        match res {
            Ok((data, eof)) => {
                self.charge_read(env, a.file.0.fileid, a.offset, data.len().max(1));
                let attr = self.getattr_of(a.file.0).ok();
                self.tel.reads.inc();
                self.tel.read_bytes.add(data.len() as u64);
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(attr).encode(&mut enc);
                enc.put_u32(data.len() as u32);
                enc.put_bool(eof);
                enc.put_opaque_var(&data);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_postop(e.into(), Some(a.file.0))),
        }
    }

    fn proc_write(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: WriteArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let res = self.fs.lock().write(a.file.0, a.offset, &a.data, now);
        match res {
            Ok(_newlen) => {
                let bytes = a.data.len() as u64;
                self.tel.writes.inc();
                self.tel.write_bytes.add(bytes);
                {
                    let mut st = self.state.lock();
                    // Written blocks land in the memory cache.
                    let bs = self.cfg.block_size as u64;
                    if bytes > 0 {
                        let first = a.offset / bs;
                        let last = (a.offset + bytes - 1) / bs;
                        for b in first..=last {
                            st.cache.insert((a.file.0.fileid, b), ());
                        }
                    }
                }
                let committed = match a.stable {
                    StableHow::Unstable => {
                        let mut st = self.state.lock();
                        *st.unstable_bytes.entry(a.file.0.fileid).or_insert(0) += bytes;
                        if bytes > 0 {
                            st.unstable_extents
                                .entry(a.file.0.fileid)
                                .or_default()
                                .push((a.file.0, a.offset, bytes));
                        }
                        StableHow::Unstable
                    }
                    sync => {
                        self.disk.sequential_io(env, bytes);
                        sync
                    }
                };
                let verf = self.state.lock().write_verf;
                let attr = self.getattr_of(a.file.0).ok();
                let mut enc = Self::ok_header(Status::Ok);
                WccData(attr).encode(&mut enc);
                enc.put_u32(a.data.len() as u32);
                enc.put_u32(committed.as_u32());
                enc.put_u64(verf);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_wcc(e.into(), Some(a.file.0))),
        }
    }

    fn proc_create(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CreateArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.create(
            a.whereto.dir.0,
            &a.whereto.name,
            a.attrs.mode.unwrap_or(0o644),
            now,
        ) {
            Ok(h) => {
                if let Some(sz) = a.attrs.size {
                    let _ = fs.setattr(h, Some(sz), None, now);
                }
                let mut enc = Self::ok_header(Status::Ok);
                // post_op_fh3
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_mkdir(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CreateArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.mkdir(
            a.whereto.dir.0,
            &a.whereto.name,
            a.attrs.mode.unwrap_or(0o755),
            now,
        ) {
            Ok(h) => {
                let mut enc = Self::ok_header(Status::Ok);
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_symlink(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: SymlinkArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.symlink(a.whereto.dir.0, &a.whereto.name, &a.target, now) {
            Ok(h) => {
                let mut enc = Self::ok_header(Status::Ok);
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_remove(&self, env: &Env, args: &[u8], is_rmdir: bool) -> Result<Vec<u8>, ProgramError> {
        let a: DirOpArgs3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        let res = if is_rmdir {
            fs.rmdir(a.dir.0, &a.name, now)
        } else {
            fs.remove(a.dir.0, &a.name, now)
        };
        let status = match res {
            Ok(()) => Status::Ok,
            Err(e) => e.into(),
        };
        let mut enc = Self::ok_header(status);
        WccData(fs.getattr(a.dir.0).ok()).encode(&mut enc);
        Ok(enc.into_bytes())
    }

    fn proc_rename(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: RenameArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        let status = match fs.rename(a.from.dir.0, &a.from.name, a.to.dir.0, &a.to.name, now) {
            Ok(()) => Status::Ok,
            Err(e) => e.into(),
        };
        let mut enc = Self::ok_header(status);
        WccData(fs.getattr(a.from.dir.0).ok()).encode(&mut enc);
        WccData(fs.getattr(a.to.dir.0).ok()).encode(&mut enc);
        Ok(enc.into_bytes())
    }

    fn proc_readdir(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: ReaddirArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        // A continued listing must present the verifier we handed out
        // with the first chunk; a stale one means the client's cookie
        // space is no longer valid (RFC 1813 §3.3.16 NFS3ERR_BAD_COOKIE).
        if a.cookie != 0 && a.cookieverf != READDIR_VERF {
            let mut enc = Self::ok_header(Status::BadCookie);
            PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
            return Ok(enc.into_bytes());
        }
        match fs.readdir(a.dir.0) {
            Ok(entries) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                enc.put_u64(READDIR_VERF);
                let start = a.cookie as usize;
                let mut budget = a.count as usize;
                let mut idx = start;
                while idx < entries.len() && budget > 48 + entries[idx].0.len() {
                    let (name, h) = &entries[idx];
                    enc.put_bool(true); // another entry follows
                    enc.put_u64(h.fileid);
                    enc.put_string(name);
                    enc.put_u64(idx as u64 + 1); // cookie
                    budget = budget.saturating_sub(24 + name.len());
                    idx += 1;
                }
                enc.put_bool(false); // entry list terminator
                enc.put_bool(idx >= entries.len()); // eof
                Ok(enc.into_bytes())
            }
            Err(e) => {
                let mut enc = Self::ok_header(e.into());
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
        }
    }

    fn proc_fsinfo(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let mut enc = Self::ok_header(Status::Ok);
        PostOpAttr(self.getattr_of(fh.0).ok()).encode(&mut enc);
        let bs = self.cfg.block_size;
        enc.put_u32(bs); // rtmax
        enc.put_u32(bs); // rtpref
        enc.put_u32(512); // rtmult
        enc.put_u32(bs); // wtmax
        enc.put_u32(bs); // wtpref
        enc.put_u32(512); // wtmult
        enc.put_u32(bs); // dtpref
        enc.put_u64(u64::MAX >> 1); // maxfilesize
        enc.put_u32(0); // time_delta sec
        enc.put_u32(1); // time_delta nsec
        enc.put_u32(0x1b); // properties: LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
        Ok(enc.into_bytes())
    }

    fn proc_commit(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CommitArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let (pending, verf) = {
            let mut st = self.state.lock();
            // These extents are durable now; a future crash won't lose
            // them.
            st.unstable_extents.remove(&a.file.0.fileid);
            let pending = st.unstable_bytes.remove(&a.file.0.fileid).unwrap_or(0);
            (pending, st.write_verf)
        };
        if pending > 0 {
            self.disk.sequential_io(env, pending);
        }
        let attr = self.getattr_of(a.file.0).ok();
        let mut enc = Self::ok_header(Status::Ok);
        WccData(attr).encode(&mut enc);
        enc.put_u64(verf);
        Ok(enc.into_bytes())
    }
}

/// READDIR cookie verifier.
pub const READDIR_VERF: u64 = 0x0DDC_00C1_E000_0001;

impl RpcProgram for Nfs3Server {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }

    fn version(&self) -> u32 {
        NFS_V3
    }

    fn call(
        &self,
        env: &Env,
        cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        self.check_auth(cred, proc)?;
        self.tel.calls.inc();
        self.tel.proc_counter(proc).inc();
        env.sleep(self.cfg.op_cpu);
        match proc {
            proc3::NULL => Ok(Vec::new()),
            proc3::GETATTR => self.proc_getattr(args),
            proc3::SETATTR => self.proc_setattr(env, args),
            proc3::LOOKUP => self.proc_lookup(args),
            proc3::ACCESS => self.proc_access(args),
            proc3::READLINK => self.proc_readlink(args),
            proc3::READ => self.proc_read(env, args),
            proc3::WRITE => self.proc_write(env, args),
            proc3::CREATE => self.proc_create(env, args),
            proc3::MKDIR => self.proc_mkdir(env, args),
            proc3::SYMLINK => self.proc_symlink(env, args),
            proc3::REMOVE => self.proc_remove(env, args, false),
            proc3::RMDIR => self.proc_remove(env, args, true),
            proc3::RENAME => self.proc_rename(env, args),
            proc3::READDIR => self.proc_readdir(args),
            proc3::FSINFO => self.proc_fsinfo(args),
            proc3::COMMIT => self.proc_commit(env, args),
            // MKNOD, LINK, READDIRPLUS, FSSTAT, PATHCONF are not needed by
            // any workload in this reproduction.
            _ => Err(ProgramError::ProcUnavail),
        }
    }

    fn call_with_xid(
        &self,
        env: &Env,
        xid: u32,
        cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        if !is_nonidempotent(proc) {
            return self.call(env, cred, proc, args);
        }
        let ch = cred_hash(cred);
        let cached = {
            let mut st = self.state.lock();
            match st.drc.get(&xid) {
                Some(e) if e.cred_hash == ch && e.proc == proc => Some(e.reply.clone()),
                _ => None,
            }
        };
        if let Some(reply) = cached {
            // A retransmit of a call we already executed: replay the
            // stored reply. The operation's side effect happens once.
            self.tel
                .drc_hits
                .get_or_init(|| {
                    self.tel
                        .registry
                        .counter("nfs3", format!("{}.drc.hits", self.tel.inst))
                })
                .inc();
            env.sleep(self.cfg.op_cpu);
            return Ok(reply);
        }
        let res = self.call(env, cred, proc, args);
        if let Ok(reply) = &res {
            let mut st = self.state.lock();
            st.drc.insert(
                xid,
                DrcEntry {
                    cred_hash: ch,
                    proc,
                    reply: reply.clone(),
                },
            );
        }
        res
    }
}

/// The MOUNT v3 program: maps export paths to root file handles.
pub struct MountServer {
    fs: Arc<Mutex<Fs>>,
    exports: Vec<String>,
}

impl MountServer {
    /// Serve mounts of `exports` (paths inside `fs`; `/` exports the root).
    pub fn new(fs: Arc<Mutex<Fs>>, exports: Vec<String>) -> Arc<Self> {
        Arc::new(MountServer { fs, exports })
    }
}

impl RpcProgram for MountServer {
    fn program(&self) -> u32 {
        MOUNT_PROGRAM
    }

    fn version(&self) -> u32 {
        MOUNT_V3
    }

    fn call(
        &self,
        _env: &Env,
        _cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        match proc {
            mountproc::NULL => Ok(Vec::new()),
            mountproc::MNT => {
                let path: String = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
                let exported = self
                    .exports
                    .iter()
                    .any(|e| e == &path || (e == "/" && path.is_empty()));
                let mut enc = Encoder::new();
                if !exported {
                    enc.put_u32(13); // MNT3ERR_ACCES
                    return Ok(enc.into_bytes());
                }
                match self.fs.lock().resolve(&path) {
                    Ok(h) => {
                        enc.put_u32(0); // MNT3_OK
                        Fh3(h).encode(&mut enc);
                        // auth flavors accepted: AUTH_SYS
                        enc.put_array(&[1u32], |e, v| e.put_u32(*v));
                    }
                    Err(_) => enc.put_u32(2), // MNT3ERR_NOENT
                }
                Ok(enc.into_bytes())
            }
            mountproc::UMNT => Ok(Vec::new()),
            _ => Err(ProgramError::ProcUnavail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;
    use vfs::DiskModel;

    fn setup(sim: &Simulation) -> (Arc<Mutex<Fs>>, Arc<Nfs3Server>) {
        let h = sim.handle();
        let disk = Disk::new(&h, DiskModel::server_array());
        Nfs3Server::with_new_fs(&h, disk, ServerConfig::default())
    }

    fn sys_cred() -> OpaqueAuth {
        OpaqueAuth::sys(&oncrpc::AuthSys::new("t", 1, 1))
    }

    fn mkdir_args(dir: Handle, name: &str) -> Vec<u8> {
        xdr::to_bytes(&CreateArgs {
            whereto: DirOpArgs3 {
                dir: Fh3(dir),
                name: name.to_string(),
            },
            attrs: Sattr3 {
                mode: Some(0o755),
                size: None,
            },
        })
    }

    #[test]
    fn drc_replays_nonidempotent_calls_without_reexecution() {
        let sim = Simulation::new();
        let (fs, srv) = setup(&sim);
        let fs2 = fs.clone();
        sim.spawn("t", move |env| {
            let root = fs2.lock().resolve("/").unwrap();
            let args = mkdir_args(root, "d");
            // Original call and a retransmit bearing the same xid.
            let r1 = srv
                .call_with_xid(&env, 77, &sys_cred(), proc3::MKDIR, &args)
                .unwrap();
            let r2 = srv
                .call_with_xid(&env, 77, &sys_cred(), proc3::MKDIR, &args)
                .unwrap();
            assert_eq!(r1, r2, "retransmit must replay the cached reply");
            let entries = fs2.lock().readdir(root).unwrap();
            assert_eq!(entries.len(), 1, "MKDIR must have executed once");
            // A NEW xid is a genuinely new call: it re-executes and now
            // collides with the existing directory.
            let r3 = srv
                .call_with_xid(&env, 78, &sys_cred(), proc3::MKDIR, &args)
                .unwrap();
            let mut dec = xdr::Decoder::new(&r3);
            assert_eq!(dec.get_u32().unwrap(), Status::Exist.as_u32());
            // Same xid but a different credential must NOT replay.
            let other = OpaqueAuth::sys(&oncrpc::AuthSys::new("mallory", 9, 9));
            let r4 = srv
                .call_with_xid(&env, 77, &other, proc3::MKDIR, &args)
                .unwrap();
            let mut dec = xdr::Decoder::new(&r4);
            assert_eq!(dec.get_u32().unwrap(), Status::Exist.as_u32());
        });
        sim.run();
    }

    #[test]
    fn drc_hits_counter_registers_on_first_hit_not_at_construction() {
        // The `drc.hits` cell is an OnceLock resolved on the first
        // replay (DESIGN.md §5.6): report snapshots list every
        // registered metric, so an eager zero-valued registration would
        // change committed reports. Pin both halves of that contract —
        // absent before any hit, present (and correct) after.
        let sim = Simulation::new();
        let (fs, srv) = setup(&sim);
        let tel = sim.handle().telemetry().clone();
        let has_drc = |t: &simnet::Telemetry| {
            t.snapshot()
                .counters
                .iter()
                .any(|c| c.layer == "nfs3" && c.name.ends_with(".drc.hits"))
        };
        assert!(!has_drc(&tel), "drc.hits registered at construction");
        let fs2 = fs.clone();
        let tel2 = tel.clone();
        sim.spawn("t", move |env| {
            let root = fs2.lock().resolve("/").unwrap();
            let args = mkdir_args(root, "d");
            srv.call_with_xid(&env, 5, &sys_cred(), proc3::MKDIR, &args)
                .unwrap();
            // A fresh call (miss) must still not register the counter.
            assert!(!has_drc(&tel2), "a DRC miss registered drc.hits");
            srv.call_with_xid(&env, 5, &sys_cred(), proc3::MKDIR, &args)
                .unwrap();
        });
        sim.run();
        let snap = tel.snapshot();
        let hit = snap
            .counters
            .iter()
            .find(|c| c.layer == "nfs3" && c.name.ends_with(".drc.hits"))
            .expect("replay registered drc.hits");
        assert_eq!(hit.value, 1);
    }

    #[test]
    fn restart_rotates_write_verifier_and_loses_uncommitted_writes() {
        let sim = Simulation::new();
        let (fs, srv) = setup(&sim);
        let fs2 = fs.clone();
        sim.spawn("t", move |env| {
            let root = fs2.lock().resolve("/").unwrap();
            let file = fs2.lock().create(root, "f", 0o644, 0).unwrap();
            let v0 = srv.write_verf();
            let write = |offset: u64, data: Vec<u8>, stable: StableHow| {
                xdr::to_bytes(&WriteArgs {
                    file: Fh3(file),
                    offset,
                    count: data.len() as u32,
                    stable,
                    data,
                })
            };
            // A committed prefix and an uncommitted suffix.
            srv.call(
                &env,
                &sys_cred(),
                proc3::WRITE,
                &write(0, vec![1u8; 100], StableHow::FileSync),
            )
            .unwrap();
            srv.call(
                &env,
                &sys_cred(),
                proc3::WRITE,
                &write(100, vec![2u8; 100], StableHow::Unstable),
            )
            .unwrap();
            srv.restart(env.now().as_nanos());
            let v1 = srv.write_verf();
            assert_ne!(v0, v1, "crash must rotate the write verifier");
            let (data, _) = fs2.lock().read(file, 0, 200, 1).unwrap();
            assert_eq!(&data[..100], &[1u8; 100][..], "synced data survives");
            assert_eq!(&data[100..], &[0u8; 100][..], "unstable data is lost");
            // Once committed, a crash no longer loses the bytes.
            srv.call(
                &env,
                &sys_cred(),
                proc3::WRITE,
                &write(100, vec![3u8; 100], StableHow::Unstable),
            )
            .unwrap();
            srv.call(
                &env,
                &sys_cred(),
                proc3::COMMIT,
                &xdr::to_bytes(&CommitArgs {
                    file: Fh3(file),
                    offset: 0,
                    count: 0,
                }),
            )
            .unwrap();
            srv.restart(env.now().as_nanos());
            assert_ne!(srv.write_verf(), v1);
            let (data, _) = fs2.lock().read(file, 100, 100, 2).unwrap();
            assert_eq!(data, vec![3u8; 100]);
        });
        sim.run();
    }

    #[test]
    fn readdir_with_stale_cookieverf_reports_bad_cookie() {
        let sim = Simulation::new();
        let (fs, srv) = setup(&sim);
        let fs2 = fs.clone();
        sim.spawn("t", move |env| {
            let root = fs2.lock().resolve("/").unwrap();
            fs2.lock().create(root, "a", 0o644, 0).unwrap();
            let args = |cookie: u64, cookieverf: u64| {
                xdr::to_bytes(&ReaddirArgs {
                    dir: Fh3(root),
                    cookie,
                    cookieverf,
                    count: 8192,
                })
            };
            // First chunk: cookie 0 ignores the verifier.
            let r = srv
                .call(&env, &sys_cred(), proc3::READDIR, &args(0, 0))
                .unwrap();
            let mut dec = xdr::Decoder::new(&r);
            assert_eq!(dec.get_u32().unwrap(), Status::Ok.as_u32());
            // Continuation with the canonical verifier is accepted.
            let r = srv
                .call(&env, &sys_cred(), proc3::READDIR, &args(1, READDIR_VERF))
                .unwrap();
            let mut dec = xdr::Decoder::new(&r);
            assert_eq!(dec.get_u32().unwrap(), Status::Ok.as_u32());
            // Continuation with a stale verifier must be refused.
            let r = srv
                .call(&env, &sys_cred(), proc3::READDIR, &args(1, 0xBAD))
                .unwrap();
            let mut dec = xdr::Decoder::new(&r);
            assert_eq!(dec.get_u32().unwrap(), Status::BadCookie.as_u32());
        });
        sim.run();
    }

    #[test]
    fn write_verifiers_differ_between_server_instances() {
        let sim = Simulation::new();
        let (_fs_a, a) = setup(&sim);
        let (_fs_b, b) = setup(&sim);
        assert_ne!(a.write_verf(), b.write_verf());
    }
}
