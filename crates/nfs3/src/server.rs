//! The simulated kernel NFSv3 server (plus the MOUNT v3 program).
//!
//! Exports a [`vfs::Fs`] with realistic timing: a bounded server memory
//! buffer cache, a disk with positioning/streaming costs, readahead-style
//! sequential detection, NFSv3 unstable writes gathered in memory until a
//! COMMIT (or sync write) flushes them.
//!
//! This is the component the paper treats as untouchable: GVFS
//! explicitly works with *unmodified* kernel NFS servers, extending the
//! system purely with user-level proxies in front of this server.

use std::collections::HashMap;
use std::sync::Arc;

use oncrpc::{OpaqueAuth, ProgramError, RpcProgram};
use parking_lot::Mutex;
use simnet::telemetry::{Counter, Telemetry};
use simnet::{Env, SimDuration, SimHandle};
use vfs::{Disk, Fs, FsResult, Handle, LruMap};
use xdr::{Decode, Encode, Encoder};

use crate::args::*;
use crate::proto::*;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Memory buffer cache capacity in bytes.
    pub memory_cache_bytes: u64,
    /// Cache/transfer block size.
    pub block_size: u32,
    /// Per-call CPU cost (decode, dispatch, encode).
    pub op_cpu: SimDuration,
    /// Whether AUTH_SYS credentials are required (kernel servers reject
    /// the middleware's AUTH_GVFS flavor — that mapping is the GVFS
    /// server-side proxy's job).
    pub require_auth_sys: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            memory_cache_bytes: 768 * 1024 * 1024,
            block_size: 32 * 1024,
            op_cpu: SimDuration::from_micros(30),
            require_auth_sys: true,
        }
    }
}

/// Operation counters, used by tests and by the benchmark reports (e.g.
/// the paper's "65,750 NFS reads, 60,452 filtered" claim).
///
/// A view over the telemetry registry: the server updates the shared
/// `nfs3/<instance>.*` counters and [`Nfs3Server::stats`] reads them back.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerStats {
    /// READ calls served.
    pub reads: u64,
    /// WRITE calls served.
    pub writes: u64,
    /// Payload bytes read.
    pub read_bytes: u64,
    /// Payload bytes written.
    pub write_bytes: u64,
    /// Buffer-cache block hits.
    pub cache_hits: u64,
    /// Buffer-cache block misses.
    pub cache_misses: u64,
    /// Calls of any kind.
    pub calls: u64,
}

struct SrvState {
    cache: LruMap<(u64, u64), ()>,
    next_seq_offset: HashMap<u64, u64>,
    unstable_bytes: HashMap<u64, u64>,
}

/// Telemetry counters backing [`ServerStats`]; registered at construction.
struct SrvTel {
    registry: Telemetry,
    inst: String,
    reads: Counter,
    writes: Counter,
    read_bytes: Counter,
    write_bytes: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    calls: Counter,
}

impl SrvTel {
    fn register(registry: &Telemetry) -> Self {
        let inst = registry.instance_name("nfs3-server");
        let c = |name: &str| registry.counter("nfs3", format!("{inst}.{name}"));
        SrvTel {
            reads: c("reads"),
            writes: c("writes"),
            read_bytes: c("read_bytes"),
            write_bytes: c("write_bytes"),
            cache_hits: c("buffer_cache.hits"),
            cache_misses: c("buffer_cache.misses"),
            calls: c("calls"),
            registry: registry.clone(),
            inst,
        }
    }
}

/// The NFSv3 server program.
pub struct Nfs3Server {
    fs: Arc<Mutex<Fs>>,
    disk: Disk,
    state: Mutex<SrvState>,
    cfg: ServerConfig,
    tel: SrvTel,
}

impl Nfs3Server {
    /// Create a server exporting `fs`, storing data on `disk`.
    pub fn new(handle: &SimHandle, fs: Arc<Mutex<Fs>>, disk: Disk, cfg: ServerConfig) -> Arc<Self> {
        let cache_blocks = ((cfg.memory_cache_bytes / cfg.block_size as u64) as usize).max(1);
        Arc::new(Nfs3Server {
            fs,
            disk,
            state: Mutex::new(SrvState {
                cache: LruMap::new(cache_blocks),
                next_seq_offset: HashMap::new(),
                unstable_bytes: HashMap::new(),
            }),
            cfg,
            tel: SrvTel::register(handle.telemetry()),
        })
    }

    /// Convenience: build a fresh filesystem + server.
    pub fn with_new_fs(
        handle: &SimHandle,
        disk: Disk,
        cfg: ServerConfig,
    ) -> (Arc<Mutex<Fs>>, Arc<Self>) {
        let fs = Arc::new(Mutex::new(Fs::new(handle.now().as_nanos())));
        let srv = Self::new(handle, fs.clone(), disk, cfg);
        (fs, srv)
    }

    /// Snapshot of the operation counters (a telemetry view).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            reads: self.tel.reads.get(),
            writes: self.tel.writes.get(),
            read_bytes: self.tel.read_bytes.get(),
            write_bytes: self.tel.write_bytes.get(),
            cache_hits: self.tel.cache_hits.get(),
            cache_misses: self.tel.cache_misses.get(),
            calls: self.tel.calls.get(),
        }
    }

    /// Reset counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.tel.reads.reset();
        self.tel.writes.reset();
        self.tel.read_bytes.reset();
        self.tel.write_bytes.reset();
        self.tel.cache_hits.reset();
        self.tel.cache_misses.reset();
        self.tel.calls.reset();
    }

    /// Shared filesystem (scenario setup pre-populates images through it).
    pub fn fs(&self) -> Arc<Mutex<Fs>> {
        self.fs.clone()
    }

    /// Charge cache/disk time for reading `len` bytes at `offset`.
    fn charge_read(&self, env: &Env, fileid: u64, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let bs = self.cfg.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        for b in first..=last {
            let (hit, sequential) = {
                let mut st = self.state.lock();
                let hit = st.cache.get(&(fileid, b)).is_some();
                let sequential = st.next_seq_offset.get(&fileid) == Some(&b);
                st.next_seq_offset.insert(fileid, b + 1);
                if hit {
                    self.tel.cache_hits.inc();
                } else {
                    self.tel.cache_misses.inc();
                    st.cache.insert((fileid, b), ());
                }
                (hit, sequential)
            };
            if !hit {
                if sequential {
                    self.disk.stream_io(env, bs);
                } else {
                    self.disk.random_io(env, bs);
                }
            }
        }
    }

    fn check_auth(&self, cred: &OpaqueAuth, proc: u32) -> Result<(), ProgramError> {
        if !self.cfg.require_auth_sys || proc == proc3::NULL {
            return Ok(());
        }
        match cred.flavor {
            oncrpc::AuthFlavor::Sys => Ok(()),
            // A kernel server has no idea what a GVFS middleware
            // credential is: too weak.
            _ => Err(ProgramError::AuthError(oncrpc::msg::auth_stat::TOOWEAK)),
        }
    }

    fn getattr_of(&self, h: Handle) -> FsResult<vfs::Attr> {
        self.fs.lock().getattr(h)
    }

    fn ok_header(status: Status) -> Encoder {
        let mut enc = Encoder::new();
        enc.put_u32(status.as_u32());
        enc
    }

    fn err_with_postop(&self, status: Status, h: Option<Handle>) -> Vec<u8> {
        let mut enc = Self::ok_header(status);
        let attr = h.and_then(|h| self.getattr_of(h).ok());
        PostOpAttr(attr).encode(&mut enc);
        enc.into_bytes()
    }

    fn err_with_wcc(&self, status: Status, h: Option<Handle>) -> Vec<u8> {
        let mut enc = Self::ok_header(status);
        let attr = h.and_then(|h| self.getattr_of(h).ok());
        WccData(attr).encode(&mut enc);
        enc.into_bytes()
    }

    fn proc_getattr(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        match self.getattr_of(fh.0) {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                Fattr3(attr).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(Self::ok_header(e.into()).into_bytes()),
        }
    }

    fn proc_setattr(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: SetattrArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let res = self
            .fs
            .lock()
            .setattr(a.file.0, a.attrs.size, a.attrs.mode, now);
        match res {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                WccData(Some(attr)).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_wcc(e.into(), Some(a.file.0))),
        }
    }

    fn proc_lookup(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: DirOpArgs3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        match fs.lookup(a.dir.0, &a.name) {
            Ok(obj) => {
                let mut enc = Self::ok_header(Status::Ok);
                Fh3(obj).encode(&mut enc);
                PostOpAttr(fs.getattr(obj).ok()).encode(&mut enc);
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                let mut enc = Self::ok_header(e.into());
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
        }
    }

    fn proc_access(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let mut dec = xdr::Decoder::new(args);
        let fh = Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
        let wanted = dec.get_u32().map_err(|_| ProgramError::GarbageArgs)?;
        match self.getattr_of(fh.0) {
            Ok(attr) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(Some(attr)).encode(&mut enc);
                enc.put_u32(wanted); // grant everything requested
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_postop(e.into(), None)),
        }
    }

    fn proc_readlink(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        match fs.readlink(fh.0) {
            Ok(target) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(fs.getattr(fh.0).ok()).encode(&mut enc);
                enc.put_string(&target);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_postop(e.into(), Some(fh.0)))
            }
        }
    }

    fn proc_read(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: ReadArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let count = a.count.min(MAX_BLOCK);
        let now = env.now().as_nanos();
        let res = self.fs.lock().read(a.file.0, a.offset, count as usize, now);
        match res {
            Ok((data, eof)) => {
                self.charge_read(env, a.file.0.fileid, a.offset, data.len().max(1));
                let attr = self.getattr_of(a.file.0).ok();
                self.tel.reads.inc();
                self.tel.read_bytes.add(data.len() as u64);
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(attr).encode(&mut enc);
                enc.put_u32(data.len() as u32);
                enc.put_bool(eof);
                enc.put_opaque_var(&data);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_postop(e.into(), Some(a.file.0))),
        }
    }

    fn proc_write(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: WriteArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let res = self.fs.lock().write(a.file.0, a.offset, &a.data, now);
        match res {
            Ok(_newlen) => {
                let bytes = a.data.len() as u64;
                self.tel.writes.inc();
                self.tel.write_bytes.add(bytes);
                {
                    let mut st = self.state.lock();
                    // Written blocks land in the memory cache.
                    let bs = self.cfg.block_size as u64;
                    if bytes > 0 {
                        let first = a.offset / bs;
                        let last = (a.offset + bytes - 1) / bs;
                        for b in first..=last {
                            st.cache.insert((a.file.0.fileid, b), ());
                        }
                    }
                }
                let committed = match a.stable {
                    StableHow::Unstable => {
                        let mut st = self.state.lock();
                        *st.unstable_bytes.entry(a.file.0.fileid).or_insert(0) += bytes;
                        StableHow::Unstable
                    }
                    sync => {
                        self.disk.sequential_io(env, bytes);
                        sync
                    }
                };
                let attr = self.getattr_of(a.file.0).ok();
                let mut enc = Self::ok_header(Status::Ok);
                WccData(attr).encode(&mut enc);
                enc.put_u32(a.data.len() as u32);
                enc.put_u32(committed.as_u32());
                enc.put_u64(WRITE_VERF);
                Ok(enc.into_bytes())
            }
            Err(e) => Ok(self.err_with_wcc(e.into(), Some(a.file.0))),
        }
    }

    fn proc_create(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CreateArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.create(
            a.whereto.dir.0,
            &a.whereto.name,
            a.attrs.mode.unwrap_or(0o644),
            now,
        ) {
            Ok(h) => {
                if let Some(sz) = a.attrs.size {
                    let _ = fs.setattr(h, Some(sz), None, now);
                }
                let mut enc = Self::ok_header(Status::Ok);
                // post_op_fh3
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_mkdir(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CreateArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.mkdir(
            a.whereto.dir.0,
            &a.whereto.name,
            a.attrs.mode.unwrap_or(0o755),
            now,
        ) {
            Ok(h) => {
                let mut enc = Self::ok_header(Status::Ok);
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_symlink(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: SymlinkArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        match fs.symlink(a.whereto.dir.0, &a.whereto.name, &a.target, now) {
            Ok(h) => {
                let mut enc = Self::ok_header(Status::Ok);
                enc.put_bool(true);
                Fh3(h).encode(&mut enc);
                PostOpAttr(fs.getattr(h).ok()).encode(&mut enc);
                WccData(fs.getattr(a.whereto.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
            Err(e) => {
                drop(fs);
                Ok(self.err_with_wcc(e.into(), Some(a.whereto.dir.0)))
            }
        }
    }

    fn proc_remove(&self, env: &Env, args: &[u8], is_rmdir: bool) -> Result<Vec<u8>, ProgramError> {
        let a: DirOpArgs3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        let res = if is_rmdir {
            fs.rmdir(a.dir.0, &a.name, now)
        } else {
            fs.remove(a.dir.0, &a.name, now)
        };
        let status = match res {
            Ok(()) => Status::Ok,
            Err(e) => e.into(),
        };
        let mut enc = Self::ok_header(status);
        WccData(fs.getattr(a.dir.0).ok()).encode(&mut enc);
        Ok(enc.into_bytes())
    }

    fn proc_rename(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: RenameArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let now = env.now().as_nanos();
        let mut fs = self.fs.lock();
        let status = match fs.rename(a.from.dir.0, &a.from.name, a.to.dir.0, &a.to.name, now) {
            Ok(()) => Status::Ok,
            Err(e) => e.into(),
        };
        let mut enc = Self::ok_header(status);
        WccData(fs.getattr(a.from.dir.0).ok()).encode(&mut enc);
        WccData(fs.getattr(a.to.dir.0).ok()).encode(&mut enc);
        Ok(enc.into_bytes())
    }

    fn proc_readdir(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: ReaddirArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let fs = self.fs.lock();
        match fs.readdir(a.dir.0) {
            Ok(entries) => {
                let mut enc = Self::ok_header(Status::Ok);
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                enc.put_u64(READDIR_VERF);
                let start = a.cookie as usize;
                let mut budget = a.count as usize;
                let mut idx = start;
                while idx < entries.len() && budget > 48 + entries[idx].0.len() {
                    let (name, h) = &entries[idx];
                    enc.put_bool(true); // another entry follows
                    enc.put_u64(h.fileid);
                    enc.put_string(name);
                    enc.put_u64(idx as u64 + 1); // cookie
                    budget = budget.saturating_sub(24 + name.len());
                    idx += 1;
                }
                enc.put_bool(false); // entry list terminator
                enc.put_bool(idx >= entries.len()); // eof
                Ok(enc.into_bytes())
            }
            Err(e) => {
                let mut enc = Self::ok_header(e.into());
                PostOpAttr(fs.getattr(a.dir.0).ok()).encode(&mut enc);
                Ok(enc.into_bytes())
            }
        }
    }

    fn proc_fsinfo(&self, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let fh: Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let mut enc = Self::ok_header(Status::Ok);
        PostOpAttr(self.getattr_of(fh.0).ok()).encode(&mut enc);
        let bs = self.cfg.block_size;
        enc.put_u32(bs); // rtmax
        enc.put_u32(bs); // rtpref
        enc.put_u32(512); // rtmult
        enc.put_u32(bs); // wtmax
        enc.put_u32(bs); // wtpref
        enc.put_u32(512); // wtmult
        enc.put_u32(bs); // dtpref
        enc.put_u64(u64::MAX >> 1); // maxfilesize
        enc.put_u32(0); // time_delta sec
        enc.put_u32(1); // time_delta nsec
        enc.put_u32(0x1b); // properties: LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
        Ok(enc.into_bytes())
    }

    fn proc_commit(&self, env: &Env, args: &[u8]) -> Result<Vec<u8>, ProgramError> {
        let a: CommitArgs = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
        let pending = {
            let mut st = self.state.lock();
            st.unstable_bytes.remove(&a.file.0.fileid).unwrap_or(0)
        };
        if pending > 0 {
            self.disk.sequential_io(env, pending);
        }
        let attr = self.getattr_of(a.file.0).ok();
        let mut enc = Self::ok_header(Status::Ok);
        WccData(attr).encode(&mut enc);
        enc.put_u64(WRITE_VERF);
        Ok(enc.into_bytes())
    }
}

/// Write verifier reported by this server instance.
pub const WRITE_VERF: u64 = 0xC0FF_EE00_2004_0604;
/// READDIR cookie verifier.
pub const READDIR_VERF: u64 = 0x0DDC_00C1_E000_0001;

impl RpcProgram for Nfs3Server {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }

    fn version(&self) -> u32 {
        NFS_V3
    }

    fn call(
        &self,
        env: &Env,
        cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        self.check_auth(cred, proc)?;
        self.tel.calls.inc();
        self.tel
            .registry
            .counter(
                "nfs3",
                format!("{}.proc.{}", self.tel.inst, proc3_name(proc)),
            )
            .inc();
        env.sleep(self.cfg.op_cpu);
        match proc {
            proc3::NULL => Ok(Vec::new()),
            proc3::GETATTR => self.proc_getattr(args),
            proc3::SETATTR => self.proc_setattr(env, args),
            proc3::LOOKUP => self.proc_lookup(args),
            proc3::ACCESS => self.proc_access(args),
            proc3::READLINK => self.proc_readlink(args),
            proc3::READ => self.proc_read(env, args),
            proc3::WRITE => self.proc_write(env, args),
            proc3::CREATE => self.proc_create(env, args),
            proc3::MKDIR => self.proc_mkdir(env, args),
            proc3::SYMLINK => self.proc_symlink(env, args),
            proc3::REMOVE => self.proc_remove(env, args, false),
            proc3::RMDIR => self.proc_remove(env, args, true),
            proc3::RENAME => self.proc_rename(env, args),
            proc3::READDIR => self.proc_readdir(args),
            proc3::FSINFO => self.proc_fsinfo(args),
            proc3::COMMIT => self.proc_commit(env, args),
            // MKNOD, LINK, READDIRPLUS, FSSTAT, PATHCONF are not needed by
            // any workload in this reproduction.
            _ => Err(ProgramError::ProcUnavail),
        }
    }
}

/// The MOUNT v3 program: maps export paths to root file handles.
pub struct MountServer {
    fs: Arc<Mutex<Fs>>,
    exports: Vec<String>,
}

impl MountServer {
    /// Serve mounts of `exports` (paths inside `fs`; `/` exports the root).
    pub fn new(fs: Arc<Mutex<Fs>>, exports: Vec<String>) -> Arc<Self> {
        Arc::new(MountServer { fs, exports })
    }
}

impl RpcProgram for MountServer {
    fn program(&self) -> u32 {
        MOUNT_PROGRAM
    }

    fn version(&self) -> u32 {
        MOUNT_V3
    }

    fn call(
        &self,
        _env: &Env,
        _cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        match proc {
            mountproc::NULL => Ok(Vec::new()),
            mountproc::MNT => {
                let path: String = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
                let exported = self
                    .exports
                    .iter()
                    .any(|e| e == &path || (e == "/" && path.is_empty()));
                let mut enc = Encoder::new();
                if !exported {
                    enc.put_u32(13); // MNT3ERR_ACCES
                    return Ok(enc.into_bytes());
                }
                match self.fs.lock().resolve(&path) {
                    Ok(h) => {
                        enc.put_u32(0); // MNT3_OK
                        Fh3(h).encode(&mut enc);
                        // auth flavors accepted: AUTH_SYS
                        enc.put_array(&[1u32], |e, v| e.put_u32(*v));
                    }
                    Err(_) => enc.put_u32(2), // MNT3ERR_NOENT
                }
                Ok(enc.into_bytes())
            }
            mountproc::UMNT => Ok(Vec::new()),
            _ => Err(ProgramError::ProcUnavail),
        }
    }
}
