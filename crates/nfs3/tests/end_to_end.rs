//! End-to-end NFSv3 tests: kernel client ↔ server over simulated links.

use std::sync::Arc;

use nfs3::{KernelClient, KernelConfig, MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use simnet::{Env, Link, SimDuration, SimHandle, Simulation};
use vfs::{Disk, DiskModel, FileIo, FileType};

/// Wire up a server exporting a fresh Fs and return a connected kernel
/// client factory plus the server handle.
fn rig(sim: &Simulation, latency: SimDuration, mbps: f64) -> (Arc<Nfs3Server>, Nfs3Client) {
    let h: SimHandle = sim.handle();
    let disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, disk, ServerConfig::default());
    let mount = MountServer::new(fs, vec!["/".to_string()]);
    let up = Link::from_mbps(&h, "up", mbps, latency);
    let down = Link::from_mbps(&h, "down", mbps, latency);
    let ep = oncrpc::endpoint(&h, up, down, WireSpec::plain());
    let handler = Dispatcher::new()
        .register(server.clone())
        .register(mount)
        .into_handler();
    ep.listener.serve("nfsd", handler, 8);
    let rpc = RpcClient::new(
        ep.channel,
        OpaqueAuth::sys(&AuthSys::new("client", 500, 500)),
    );
    (server, Nfs3Client::new(rpc))
}

fn fast(sim: &Simulation) -> (Arc<Nfs3Server>, Nfs3Client) {
    rig(sim, SimDuration::from_micros(100), 1000.0)
}

#[test]
fn mount_create_write_read_round_trip() {
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let dir = nfs.mkdir(&env, root, "images").unwrap();
        let file = nfs.create(&env, dir, "vm.vmss").unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(100_000).collect();
        // Write in protocol-sized chunks.
        for (i, chunk) in payload.chunks(32 * 1024).enumerate() {
            nfs.write(
                &env,
                file,
                (i * 32 * 1024) as u64,
                chunk.to_vec(),
                nfs3::proto::StableHow::Unstable,
            )
            .unwrap();
        }
        nfs.commit(&env, file).unwrap();
        // Read back through LOOKUP.
        let (file2, attr) = nfs.lookup(&env, dir, "vm.vmss").unwrap();
        assert_eq!(file2, file);
        assert_eq!(attr.unwrap().size, 100_000);
        let mut got = Vec::new();
        let mut off = 0u64;
        loop {
            let r = nfs.read(&env, file, off, 32 * 1024).unwrap();
            off += r.data.len() as u64;
            got.extend_from_slice(&r.data);
            if r.eof {
                break;
            }
        }
        assert_eq!(got, payload);
    });
    sim.run();
}

#[test]
fn stale_handles_and_missing_names_error_properly() {
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let f = nfs.create(&env, root, "x").unwrap();
        nfs.remove(&env, root, "x").unwrap();
        match nfs.getattr(&env, f) {
            Err(nfs3::NfsError::Status(nfs3::Status::Stale)) => {}
            other => panic!("expected stale, got {other:?}"),
        }
        match nfs.lookup(&env, root, "nope") {
            Err(nfs3::NfsError::Status(nfs3::Status::NoEnt)) => {}
            other => panic!("expected noent, got {other:?}"),
        }
    });
    sim.run();
}

#[test]
fn mount_of_unexported_path_is_denied() {
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        assert!(nfs.mount(&env, "/secret").is_err());
    });
    sim.run();
}

#[test]
fn gvfs_credentials_are_rejected_by_kernel_server() {
    // A kernel NFS server does not understand middleware credentials;
    // the GVFS server-side proxy must map them to AUTH_SYS first.
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let gvfs_cred = OpaqueAuth::gvfs(&oncrpc::AuthGvfs {
            session_id: 1,
            grid_user: "alice".into(),
            expires_at: u64::MAX,
        });
        let bad = Nfs3Client::new(nfs.rpc().with_cred(gvfs_cred));
        match bad.getattr(&env, root) {
            Err(nfs3::NfsError::Rpc(oncrpc::RpcError::Denied(_))) => {}
            other => panic!("expected auth denial, got {other:?}"),
        }
    });
    sim.run();
}

#[test]
fn kernel_client_reads_hit_buffer_cache_on_reread() {
    let sim = Simulation::new();
    let (_server, nfs) = rig(&sim, SimDuration::from_millis(17), 25.0); // WAN
    sim.spawn("client", move |env: Env| {
        // Server-side setup (pre-populate a 4 MB file instantly).
        let root = nfs.mount(&env, "/").unwrap();
        let file = nfs.create(&env, root, "data").unwrap();
        let kc = KernelClient::mount(&env, nfs.clone(), "/", KernelConfig::default()).unwrap();
        // Write through the kernel client, then close (flushes).
        let data: Vec<u8> = (0..4u32 * 1024 * 1024).map(|i| (i % 251) as u8).collect();
        kc.write(&env, file, 0, &data).unwrap();
        kc.close(&env, file).unwrap();

        let t0 = env.now();
        let got = kc.read(&env, file, 0, 4 * 1024 * 1024).unwrap();
        let warm = env.now() - t0;
        assert_eq!(got, data);
        // All blocks still cached from the write: no READ RPCs.
        assert_eq!(kc.stats().read_rpcs, 0);
        assert!(warm < SimDuration::from_millis(100), "warm read {warm}");

        // Cold: invalidate, read again — now RPCs and WAN time.
        kc.invalidate_caches();
        let t1 = env.now();
        let got2 = kc.read(&env, file, 0, 4 * 1024 * 1024).unwrap();
        let cold = env.now() - t1;
        assert_eq!(got2, data);
        assert_eq!(kc.stats().read_rpcs, 128); // 4 MB / 32 KB
        assert!(cold > warm * 10, "cold {cold} vs warm {warm}");
    });
    sim.run();
}

#[test]
fn kernel_client_write_staging_flushes_on_close() {
    let sim = Simulation::new();
    let (server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let kc = KernelClient::mount(&env, nfs, "/", KernelConfig::default()).unwrap();
        let h = kc.create_path(&env, "out.log").unwrap();
        // Small writes stage in memory: no WRITE RPCs yet.
        for i in 0..16u64 {
            kc.write(&env, h, i * 1000, &[0xAB; 1000]).unwrap();
        }
        assert_eq!(kc.stats().write_rpcs, 0);
        kc.close(&env, h).unwrap();
        let st = kc.stats();
        assert!(st.write_rpcs > 0, "close must flush dirty blocks");
        // The data is now on the server.
        let attr = server.fs().lock().getattr(h).unwrap();
        assert_eq!(attr.size, 16_000);
    });
    sim.run();
}

#[test]
fn kernel_client_partial_block_write_preserves_neighbors() {
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let kc = KernelClient::mount(&env, nfs, "/", KernelConfig::default()).unwrap();
        let h = kc.create_path(&env, "f").unwrap();
        kc.write(&env, h, 0, &vec![1u8; 64 * 1024]).unwrap();
        kc.close(&env, h).unwrap();
        kc.invalidate_caches();
        // Partial overwrite in the middle of block 0 (read-modify-write).
        kc.write(&env, h, 100, b"XYZ").unwrap();
        kc.close(&env, h).unwrap();
        kc.invalidate_caches();
        let data = kc.read(&env, h, 0, 64 * 1024).unwrap();
        assert_eq!(&data[..100], &vec![1u8; 100][..]);
        assert_eq!(&data[100..103], b"XYZ");
        assert_eq!(&data[103..], &vec![1u8; 64 * 1024 - 103][..]);
    });
    sim.run();
}

#[test]
fn kernel_client_namespace_operations() {
    let sim = Simulation::new();
    let (_server, nfs) = fast(&sim);
    sim.spawn("client", move |env: Env| {
        let kc = KernelClient::mount(&env, nfs, "/", KernelConfig::default()).unwrap();
        kc.mkdir_path(&env, "vm").unwrap();
        kc.create_path(&env, "vm/a.vmdk").unwrap();
        kc.symlink_path(&env, "vm/link.vmdk", "/exports/golden.vmdk")
            .unwrap();
        let mut names = kc.readdir_path(&env, "vm").unwrap();
        names.sort();
        assert_eq!(names, vec!["a.vmdk", "link.vmdk"]);
        let lh = kc.lookup_path(&env, "vm/link.vmdk").unwrap();
        let attr = kc.getattr(&env, lh).unwrap();
        assert_eq!(attr.ftype, FileType::Symlink);
        assert_eq!(kc.readlink(&env, lh).unwrap(), "/exports/golden.vmdk");
        kc.remove_path(&env, "vm/a.vmdk").unwrap();
        assert!(kc.lookup_path(&env, "vm/a.vmdk").is_err());
    });
    sim.run();
}

#[test]
fn wan_latency_dominates_small_reads() {
    // A single small cold read over a 17 ms link must cost at least one
    // RTT; over a 0.1 ms LAN it must not.
    let run = |latency_ms: u64| -> f64 {
        let sim = Simulation::new();
        let (_server, nfs) = rig(&sim, SimDuration::from_millis(latency_ms), 100.0);
        let out = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let out2 = out.clone();
        sim.spawn("client", move |env: Env| {
            let root = nfs.mount(&env, "/").unwrap();
            let f = nfs.create(&env, root, "x").unwrap();
            nfs.write(&env, f, 0, vec![9u8; 100], nfs3::proto::StableHow::FileSync)
                .unwrap();
            let kc = KernelClient::mount(&env, nfs, "/", KernelConfig::default()).unwrap();
            let t0 = env.now();
            kc.read(&env, f, 0, 100).unwrap();
            out2.store(
                (env.now() - t0).as_nanos(),
                std::sync::atomic::Ordering::SeqCst,
            );
        });
        sim.run();
        out.load(std::sync::atomic::Ordering::SeqCst) as f64 / 1e6
    };
    let wan_ms = run(17);
    let lan_ms = run(0);
    assert!(wan_ms >= 34.0, "WAN read took {wan_ms} ms");
    assert!(lan_ms < 5.0, "LAN read took {lan_ms} ms");
}
