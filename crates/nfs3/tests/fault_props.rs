//! Property tests over arbitrary fault schedules: any combination of
//! packet loss, WAN outages, and server restarts may slow a client down
//! or surface clean errors — but must never lose an acknowledged byte,
//! violate the RFC 1813 §3.3.7 write-verifier contract, or (absent a
//! restart) leak a duplicated non-idempotent side effect past the
//! duplicate-request cache.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use nfs3::proto::{StableHow, Status};
use nfs3::{MountServer, Nfs3Client, Nfs3Server, NfsError, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs, Handle};

const BS: u64 = 4096;
const NBLOCKS: u64 = 6;

fn t(secs: u64) -> SimTime {
    SimTime::from_nanos(secs * 1_000_000_000)
}

fn payload(b: u64) -> Vec<u8> {
    (0..BS as u32)
        .map(|i| ((i as u64 + b * 31) % 249) as u8)
        .collect()
}

/// What the client observed, for post-simulation verification.
#[derive(Default)]
struct Observed {
    /// FILE_SYNC write acknowledged per block.
    synced: Vec<bool>,
    /// UNSTABLE write confirmed durable (its write verifier matched a
    /// successful COMMIT's verifier) per block.
    confirmed: Vec<bool>,
    /// A MKDIR of a fresh name came back `Status::Exist` — only a server
    /// restart (which clears the duplicate-request cache) may cause this.
    spurious_exist: bool,
}

proptest! {
    /// Drive an NFSv3 client over a WAN whose loss rate, outage windows,
    /// and server restart times are all arbitrary. Afterwards, inspect
    /// the server's filesystem directly:
    ///
    /// * every block whose FILE_SYNC WRITE was acknowledged is byte-exact;
    /// * every UNSTABLE block confirmed by a matching COMMIT verifier is
    ///   byte-exact (restarts in between force re-sends, mismatched
    ///   verifiers mean "not durable" and are retried or abandoned);
    /// * with no restart scheduled, a retransmitted MKDIR never leaks
    ///   `Status::Exist` — the duplicate-request cache replays the
    ///   original reply instead of re-executing.
    #[test]
    fn acknowledged_bytes_survive_any_fault_schedule(
        seed in any::<u64>(),
        drop in 0.0f64..0.25,
        outages in proptest::collection::vec((0u64..60, 1u64..15), 0..3),
        restarts in proptest::collection::vec(1u64..70, 0..3),
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let disk = Disk::new(&h, DiskModel::server_array());
        let (fs, server) = Nfs3Server::with_new_fs(&h, disk, ServerConfig::default());
        let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
        let handler = Dispatcher::new()
            .register(server.clone())
            .register(mount)
            .into_handler();

        let up = Link::from_mbps(&h, "up", 6.0, SimDuration::from_millis(17));
        let down = Link::from_mbps(&h, "down", 14.0, SimDuration::from_millis(17));
        let mut up_plan = LinkFaultPlan::new(seed).drop_prob(drop);
        let mut down_plan = LinkFaultPlan::new(seed.wrapping_add(1)).drop_prob(drop);
        for (start, len) in &outages {
            up_plan = up_plan.outage(t(*start), t(start + len));
            down_plan = down_plan.outage(t(*start), t(start + len));
        }
        up.install_faults(up_plan);
        down.install_faults(down_plan);
        let ep = oncrpc::endpoint(&h, up, down, WireSpec::plain());
        ep.listener.serve("nfsd", handler, 8);

        for at in &restarts {
            let srv = server.clone();
            let at = *at;
            sim.spawn("chaos", move |env: Env| {
                env.sleep(t(at).saturating_since(env.now()));
                srv.restart(env.now().as_nanos());
            });
        }

        let sync_file;
        let unstable_file;
        {
            let mut f = fs.lock();
            let root = f.root();
            sync_file = f.create(root, "sync.img", 0o644, 0).unwrap();
            unstable_file = f.create(root, "unstable.img", 0o644, 0).unwrap();
        }

        let cred = OpaqueAuth::sys(&AuthSys::new("prop", 1, 1));
        let nfs = Nfs3Client::new(
            RpcClient::new(ep.channel, cred).with_policy(RetryPolicy::wan()),
        );
        let no_restarts = restarts.is_empty();
        let observed: Arc<Mutex<Observed>> = Arc::new(Mutex::new(Observed::default()));
        let obs = observed.clone();
        sim.spawn("client", move |env: Env| {
            let mut seen = Observed::default();
            // Phase 1: FILE_SYNC writes — durable the instant they are
            // acknowledged, restarts notwithstanding.
            for b in 0..NBLOCKS {
                let ok = nfs
                    .write(&env, sync_file, b * BS, payload(b), StableHow::FileSync)
                    .is_ok();
                seen.synced.push(ok);
            }
            // Phase 2: UNSTABLE writes + COMMIT with verifier checking,
            // re-sending on mismatch exactly like the proxy's flush.
            let mut verfs: Vec<Option<u64>> = (0..NBLOCKS)
                .map(|b| {
                    nfs.write(&env, unstable_file, b * BS, payload(b), StableHow::Unstable)
                        .ok()
                        .map(|r| r.verf)
                })
                .collect();
            let mut confirmed = vec![false; NBLOCKS as usize];
            for _round in 0..4 {
                let commit_verf = nfs.commit(&env, unstable_file).ok();
                let mut all_ok = true;
                for b in 0..NBLOCKS as usize {
                    if confirmed[b] {
                        continue;
                    }
                    if verfs[b].is_some() && verfs[b] == commit_verf {
                        confirmed[b] = true;
                    } else {
                        all_ok = false;
                        verfs[b] = nfs
                            .write(
                                &env,
                                unstable_file,
                                b as u64 * BS,
                                payload(b as u64),
                                StableHow::Unstable,
                            )
                            .ok()
                            .map(|r| r.verf);
                    }
                }
                if all_ok {
                    break;
                }
            }
            seen.confirmed = confirmed;
            // Phase 3: non-idempotent MKDIRs of fresh names. The DRC must
            // absorb retransmits; Status::Exist can only leak if a restart
            // wiped the cache between executions.
            let root = match nfs.mount(&env, "/") {
                Ok(r) => r,
                Err(_) => {
                    *obs.lock() = seen;
                    return;
                }
            };
            for i in 0..3u32 {
                if let Err(NfsError::Status(Status::Exist)) =
                    nfs.mkdir(&env, root, &format!("dir{i}"))
                {
                    seen.spurious_exist = true;
                }
            }
            *obs.lock() = seen;
        });
        sim.run();

        let seen = observed.lock();
        let mut f = fs.lock();
        let check = |f: &mut Fs, fh: Handle, b: u64| -> Vec<u8> {
            f.read(fh, b * BS, BS as usize, 0).map(|(d, _)| d).unwrap_or_default()
        };
        for b in 0..NBLOCKS as usize {
            if seen.synced.get(b).copied().unwrap_or(false) {
                prop_assert!(
                    check(&mut f, sync_file, b as u64) == payload(b as u64),
                    "acknowledged FILE_SYNC block {} lost (drop={}, outages={:?}, restarts={:?})",
                    b, drop, &outages, &restarts
                );
            }
            if seen.confirmed.get(b).copied().unwrap_or(false) {
                prop_assert!(
                    check(&mut f, unstable_file, b as u64) == payload(b as u64),
                    "verifier-confirmed UNSTABLE block {} lost (drop={}, outages={:?}, restarts={:?})",
                    b, drop, &outages, &restarts
                );
            }
        }
        if no_restarts {
            prop_assert!(
                !seen.spurious_exist,
                "DRC leaked a duplicated MKDIR as Status::Exist with no restart scheduled \
                 (drop={}, outages={:?})",
                drop, &outages
            );
        }
    }
}
