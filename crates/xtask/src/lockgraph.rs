//! The `lockgraph` subcommand: a lock-order analysis pass.
//!
//! Where the per-line lint rules match token windows, this pass walks the
//! token stream of every workspace source file with lightweight scope
//! tracking: it records each lock-acquisition site (`Mutex`/`RwLock`
//! guards via `.lock()`/`.read()`/`.write()`/`.try_*()`, and
//! `simnet::sync::Resource` via `.acquire(env)`), tracks which guards are
//! live at each point, and from "lock B acquired while guard on lock A is
//! held" builds a cross-crate lock-order graph. Three rule families fall
//! out:
//!
//! - `lock-order-cycle`: a strongly-connected component in the graph —
//!   two code paths acquire the same pair of locks in opposite orders, a
//!   potential deadlock.
//! - `lock-guard-suspend`: a guard held across a simnet suspend point
//!   (`env` handed to a blocking call). This is the dataflow
//!   generalization of the lint `lock-discipline` rule: instead of a
//!   per-statement pattern it uses the live-guard set, so transient
//!   guards (`x.lock().field` mid-expression) and `if let`-bound try
//!   guards are covered too.
//! - `lock-double-acquire`: the same lock class acquired while already
//!   held in the same scope — self-deadlock with non-reentrant mutexes.
//!
//! ## Lock classes
//!
//! A lock is named `<crate>::<file-stem>::<receiver-segment>`, e.g.
//! `gvfs::proxy::state` for `self.state.lock()` in
//! `crates/gvfs/src/proxy.rs`. This conflates same-named fields of
//! different types within one file and splits the same lock touched from
//! two files — both are deliberate: the analysis is intra-procedural and
//! lexical, so class granularity matches what it can actually see.
//! False positives from conflation are waived with
//! `// lint:allow(<rule>): <reason>` (same syntax and machinery as the
//! lint pass; each pass silently skips the other's rule names).
//!
//! ## Known approximations
//!
//! - Intra-procedural only: a guard held by a caller is invisible in the
//!   callee. The graph still catches cross-function cycles because edges
//!   from every function land in one global graph.
//! - Brace-bodied closures get a fresh scope (their body runs elsewhere,
//!   e.g. `spawn`); expression-bodied closures inherit the enclosing
//!   live-guard set.
//! - A transient guard inside call arguments is considered released at a
//!   `{` opening a block at its paren level (unless the statement is a
//!   `match`/`for`, whose scrutinee temporaries live through the block).
//!   This can under-report by a few tokens; it never over-reports.

use crate::json::Json;
use crate::lexer::{lex, Tok, TokKind};
use crate::lint::{self, Waiver};
use crate::rules::{self, test_mask, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub const RULE_CYCLE: &str = "lock-order-cycle";
pub const RULE_GUARD_SUSPEND: &str = "lock-guard-suspend";
pub const RULE_DOUBLE_ACQUIRE: &str = "lock-double-acquire";

/// The rules owned by this pass. `lint` treats waivers naming these as
/// foreign (and vice versa), so one waiver syntax serves both passes.
pub const LOCKGRAPH_RULES: &[&str] = &[RULE_CYCLE, RULE_GUARD_SUSPEND, RULE_DOUBLE_ACQUIRE];

/// Files whose locks are scheduler plumbing, not simulation state: the
/// engine parks OS threads on its own condvars by design and is audited
/// by the schedule-chaos oracle + TSan lane instead.
const ENGINE_WHITELIST: &[&str] = &["crates/simnet/src/engine.rs"];

/// Blocking calls on an `env` receiver that suspend the process.
const SUSPEND_METHODS: &[&str] = &["suspend", "sleep", "wait", "recv", "acquire", "join"];

// ---------------------------------------------------------------------------
// Per-file walker
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Release {
    /// Let-bound guard: released when brace depth drops below this.
    BraceDepth(i32),
    /// `if let Some(g) = x.try_lock()`: becomes `BraceDepth` at the next
    /// `{` (the if-body the guard is scoped to).
    PendingBrace,
    /// Mid-expression temporary: released at the statement end.
    Transient { pd0: i32, acq_depth: i32 },
}

#[derive(Debug, Clone)]
struct Held {
    class: String,
    name: Option<String>,
    line: u32,
    /// Token index from which the guard counts as held. For
    /// `.acquire(env)` this is *after* the call's closing paren so the
    /// acquisition's own `env` argument (itself a suspend point) is
    /// charged to previously-held guards only.
    active_from: usize,
    release: Release,
}

/// One closure (or file-base) scope: guards held by the code that runs
/// *here*. A brace-bodied closure body executes on some other
/// process/thread, so it starts with no inherited guards.
struct Frame {
    start_depth: i32,
    held: Vec<Held>,
}

/// An acquisition edge: `from` held while `to` acquired, at file:line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeSite {
    pub file: String,
    pub line: u32,
    pub held_line: u32,
}

#[derive(Debug, Default)]
pub struct Analysis {
    pub violations: Vec<Violation>,
    /// class -> (acquisition count, files seen in)
    pub nodes: BTreeMap<String, (u64, BTreeSet<String>)>,
    /// (from, to) -> sites
    pub edges: BTreeMap<(String, String), Vec<EdgeSite>>,
    /// Edges that participate in a cycle (for DOT highlighting).
    pub cycle_edges: BTreeSet<(String, String)>,
    pub waivers_declared: usize,
    pub waivers_used: usize,
}

/// `crates/gvfs/src/block_cache.rs` -> `gvfs::block_cache`.
fn class_prefix(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    let krate = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1]
    } else {
        "unknown"
    };
    let stem = parts
        .last()
        .map(|f| f.trim_end_matches(".rs"))
        .unwrap_or("unknown");
    format!("{krate}::{stem}")
}

/// Walk back from the acquisition `.` to find the receiver's last named
/// segment and the chain's first token index. Skips `self`, postfix
/// `()`/`[]` groups, `?`, `.`/`::` links, and tuple-field numbers.
fn chain_info(toks: &[Tok], dot: usize) -> (String, usize) {
    let mut seg: Option<String> = None;
    let mut start = dot;
    let mut k = dot as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" => {
                    let (open, close) = if t.text == ")" {
                        ("(", ")")
                    } else {
                        ("[", "]")
                    };
                    let mut d = 1i32;
                    k -= 1;
                    while k >= 0 && d > 0 {
                        let u = toks[k as usize].text.as_str();
                        if toks[k as usize].kind == TokKind::Punct {
                            if u == close {
                                d += 1;
                            } else if u == open {
                                d -= 1;
                            }
                        }
                        if d == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    if k < 0 {
                        break;
                    }
                    start = k as usize;
                    k -= 1;
                    continue;
                }
                "?" | "." => {
                    start = k as usize;
                    k -= 1;
                    continue;
                }
                ":" => {
                    if k >= 1 && toks[(k - 1) as usize].is_punct(":") {
                        start = (k - 1) as usize;
                        k -= 2;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        if t.kind == TokKind::Ident || t.kind == TokKind::Number {
            if seg.is_none() && t.kind == TokKind::Ident && t.text != "self" && t.text != "await" {
                seg = Some(t.text.clone());
            }
            start = k as usize;
            let p = k - 1;
            if p >= 0 && (toks[p as usize].is_punct(".") || toks[p as usize].is_punct(":")) {
                k = p;
                continue;
            }
            break;
        }
        break;
    }
    (seg.unwrap_or_else(|| "self".to_string()), start)
}

/// `let [mut] name = <chain>` immediately before `chain_start`.
fn let_binding(toks: &[Tok], chain_start: usize) -> Option<String> {
    let mut k = chain_start.checked_sub(1)?;
    if !toks[k].is_punct("=") {
        return None;
    }
    k = k.checked_sub(1)?;
    if toks[k].kind != TokKind::Ident {
        return None;
    }
    let name = toks[k].text.clone();
    if name == "let" || name == "mut" {
        return None;
    }
    let mut k = k.checked_sub(1)?;
    if toks[k].is_ident("mut") {
        k = k.checked_sub(1)?;
    }
    if toks[k].is_ident("let") {
        Some(name)
    } else {
        None
    }
}

/// `if let Some(name) = <chain>` / `while let Ok(name) = <chain>`.
fn if_let_binding(toks: &[Tok], chain_start: usize) -> Option<String> {
    let mut k = chain_start.checked_sub(1)?;
    if !toks[k].is_punct("=") {
        return None;
    }
    k = k.checked_sub(1)?;
    if !toks[k].is_punct(")") {
        return None;
    }
    k = k.checked_sub(1)?;
    if toks[k].kind != TokKind::Ident {
        return None;
    }
    let name = toks[k].text.clone();
    k = k.checked_sub(1)?;
    if !toks[k].is_punct("(") {
        return None;
    }
    k = k.checked_sub(1)?;
    if toks[k].kind != TokKind::Ident {
        return None; // Some / Ok
    }
    k = k.checked_sub(1)?;
    if !toks[k].is_ident("let") {
        return None;
    }
    let k = k.checked_sub(1)?;
    if toks[k].is_ident("if") || toks[k].is_ident("while") {
        Some(name)
    } else {
        None
    }
}

/// Find the matching `)` for the `(` at `open` (token index), or None.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut d = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => d += 1,
                ")" => {
                    d -= 1;
                    if d == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Is token `i` a bare `env` in argument position (`(env`, `, env`,
/// `&env` followed by `,` or `)`)?
fn bare_env_arg(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_ident("env") {
        return false;
    }
    let prev_ok = i > 0
        && matches!(toks[i - 1].text.as_str(), "(" | "," | "&")
        && toks[i - 1].kind == TokKind::Punct;
    let next_ok = toks
        .get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Punct && matches!(t.text.as_str(), "," | ")"));
    prev_ok && next_ok
}

/// Token sets that can directly precede a closure's opening `|`.
fn closure_opener_before(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    (p.kind == TokKind::Punct && matches!(p.text.as_str(), "(" | "," | "=" | ";" | "{" | ">" | ":"))
        || p.is_ident("move")
        || p.is_ident("return")
}

fn walk_file(path: &str, src: &str, out: &mut Analysis, waivers: &mut Vec<(String, Waiver)>) {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let prefix = class_prefix(path);

    // Waivers for this pass; lint rules are foreign, malformed waivers
    // are lint's to report (scratch vec discarded).
    let mut scratch = Vec::new();
    let file_waivers = lint::parse_waivers_for(
        path,
        &lexed.comments,
        LOCKGRAPH_RULES,
        rules::ALL_RULES,
        &mut scratch,
    );
    for w in file_waivers {
        waivers.push((path.to_string(), w));
    }

    let mut depth = 0i32;
    let mut pdepth = 0i32;
    let mut frames: Vec<Frame> = vec![Frame {
        start_depth: 0,
        held: Vec::new(),
    }];
    let mut stmt_kw: Option<String> = None;
    let mut pending_frame_at: Option<usize> = None;
    let mut suspends_seen: BTreeSet<(u32, String)> = BTreeSet::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let masked = mask[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if pending_frame_at == Some(i) {
                        frames.push(Frame {
                            start_depth: depth,
                            held: Vec::new(),
                        });
                        pending_frame_at = None;
                    }
                    let extend_block = matches!(stmt_kw.as_deref(), Some("match") | Some("for"));
                    let frame = frames.last_mut().expect("base frame");
                    for g in frame.held.iter_mut() {
                        if matches!(g.release, Release::PendingBrace) {
                            g.release = Release::BraceDepth(depth);
                        }
                    }
                    frame.held.retain(|g| match g.release {
                        Release::Transient { pd0, .. } if pdepth <= pd0 => extend_block,
                        _ => true,
                    });
                    if extend_block {
                        for g in frame.held.iter_mut() {
                            if let Release::Transient { pd0, .. } = g.release {
                                if pdepth <= pd0 {
                                    // match/for scrutinee temporary: lives
                                    // through the whole block.
                                    g.release = Release::BraceDepth(depth);
                                }
                            }
                        }
                    }
                    stmt_kw = None;
                    i += 1;
                    continue;
                }
                "}" => {
                    depth -= 1;
                    while frames.len() > 1
                        && frames
                            .last()
                            .map(|f| f.start_depth > depth)
                            .unwrap_or(false)
                    {
                        frames.pop();
                    }
                    let frame = frames.last_mut().expect("base frame");
                    frame.held.retain(|g| match g.release {
                        Release::BraceDepth(d) => depth >= d,
                        Release::Transient { acq_depth, .. } => depth >= acq_depth,
                        Release::PendingBrace => true,
                    });
                    stmt_kw = None;
                    i += 1;
                    continue;
                }
                "(" | "[" => {
                    pdepth += 1;
                }
                ")" | "]" => {
                    pdepth -= 1;
                }
                ";" => {
                    let frame = frames.last_mut().expect("base frame");
                    frame.held.retain(|g| match g.release {
                        Release::Transient { pd0, .. } => pdepth > pd0,
                        _ => true,
                    });
                    stmt_kw = None;
                }
                "|" if !masked && closure_opener_before(toks, i) => {
                    // Closure parameter list: find the closing `|`, then
                    // decide whether the body is a brace block (fresh
                    // frame) or an expression (inherits the live set).
                    let close = if toks.get(i + 1).is_some_and(|t| t.is_punct("|")) {
                        Some(i + 1)
                    } else {
                        toks.iter()
                            .enumerate()
                            .skip(i + 1)
                            .take(64)
                            .find(|(_, t)| t.is_punct("|"))
                            .map(|(j, _)| j)
                    };
                    if let Some(close) = close {
                        let mut j = close + 1;
                        if toks.get(j).is_some_and(|t| t.is_punct("-"))
                            && toks.get(j + 1).is_some_and(|t| t.is_punct(">"))
                        {
                            // `|..| -> T {` : skip return type up to `{`.
                            let mut steps = 0;
                            while j < toks.len() && steps < 32 && !toks[j].is_punct("{") {
                                if toks[j].is_punct(";") {
                                    break;
                                }
                                j += 1;
                                steps += 1;
                            }
                        }
                        if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                            pending_frame_at = Some(j);
                        }
                    }
                }
                _ => {}
            }
            // Acquisition: `.method(` with an acquiring method name.
            if t.is_punct(".")
                && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident)
                && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                let m = toks[i + 1].text.as_str();
                let empty = toks.get(i + 3).is_some_and(|t| t.is_punct(")"));
                let is_lock = empty
                    && matches!(
                        m,
                        "lock" | "read" | "write" | "try_lock" | "try_read" | "try_write"
                    );
                let mut is_resource = false;
                let mut close = i + 3;
                if is_lock {
                    // close already = i + 3
                } else if m == "acquire" {
                    if let Some(c) = matching_close(toks, i + 2) {
                        if (i + 3..c).any(|j| bare_env_arg(toks, j)) {
                            is_resource = true;
                            close = c;
                        }
                    }
                }
                if (is_lock || is_resource) && !masked {
                    let is_try = m.starts_with("try_");
                    let (seg, chain_start) = chain_info(toks, i);
                    let class = format!("{prefix}::{seg}");
                    let line = toks[i + 1].line;
                    let col = toks[i + 1].col;
                    let entry = out.nodes.entry(class.clone()).or_default();
                    entry.0 += 1;
                    entry.1.insert(path.to_string());

                    let frame = frames.last_mut().expect("base frame");
                    let active: Vec<(String, u32)> = frame
                        .held
                        .iter()
                        .filter(|g| g.active_from <= i)
                        .map(|g| (g.class.clone(), g.line))
                        .collect();
                    if !is_try {
                        for (held_class, held_line) in &active {
                            if *held_class == class {
                                out.violations.push(Violation {
                                    rule: RULE_DOUBLE_ACQUIRE,
                                    file: path.to_string(),
                                    line,
                                    col,
                                    message: format!(
                                        "lock `{class}` acquired while already held \
                                         (guard taken at line {held_line}); non-reentrant \
                                         mutexes self-deadlock here"
                                    ),
                                });
                            } else {
                                out.edges
                                    .entry((held_class.clone(), class.clone()))
                                    .or_default()
                                    .push(EdgeSite {
                                        file: path.to_string(),
                                        line,
                                        held_line: *held_line,
                                    });
                            }
                        }
                    }

                    let stmt_final = toks.get(close + 1).is_some_and(|t| t.is_punct(";"));
                    let active_from = if is_resource { close + 1 } else { i };
                    let held = if let Some(name) = let_binding(toks, chain_start) {
                        if stmt_final {
                            if name == "_" {
                                None // `let _ = x.lock();` drops immediately
                            } else {
                                Some(Held {
                                    class,
                                    name: Some(name),
                                    line,
                                    active_from,
                                    release: Release::BraceDepth(depth),
                                })
                            }
                        } else {
                            Some(Held {
                                class,
                                name: None,
                                line,
                                active_from,
                                release: Release::Transient {
                                    pd0: pdepth,
                                    acq_depth: depth,
                                },
                            })
                        }
                    } else if let Some(name) = if_let_binding(toks, chain_start) {
                        Some(Held {
                            class,
                            name: Some(name),
                            line,
                            active_from,
                            release: Release::PendingBrace,
                        })
                    } else {
                        Some(Held {
                            class,
                            name: None,
                            line,
                            active_from,
                            release: Release::Transient {
                                pd0: pdepth,
                                acq_depth: depth,
                            },
                        })
                    };
                    if let Some(h) = held {
                        frames.last_mut().expect("base frame").held.push(h);
                    }
                }
            }
        } else if t.kind == TokKind::Ident && !masked {
            match t.text.as_str() {
                "if" | "while" | "match" | "for" => stmt_kw = Some(t.text.clone()),
                "drop"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                        && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident)
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(")")) =>
                {
                    let name = toks[i + 2].text.clone();
                    let frame = frames.last_mut().expect("base frame");
                    frame.held.retain(|g| g.name.as_deref() != Some(&name));
                }
                "env" => {
                    let is_suspend = bare_env_arg(toks, i)
                        || (toks.get(i + 1).is_some_and(|t| t.is_punct("."))
                            && toks.get(i + 2).is_some_and(|t| {
                                t.kind == TokKind::Ident
                                    && (SUSPEND_METHODS.contains(&t.text.as_str())
                                        || t.text == "yield_now")
                            })
                            && toks.get(i + 3).is_some_and(|t| t.is_punct("(")));
                    if is_suspend {
                        let frame = frames.last().expect("base frame");
                        for g in frame.held.iter().filter(|g| g.active_from <= i) {
                            if suspends_seen.insert((t.line, g.class.clone())) {
                                out.violations.push(Violation {
                                    rule: RULE_GUARD_SUSPEND,
                                    file: path.to_string(),
                                    line: t.line,
                                    col: t.col,
                                    message: format!(
                                        "guard on `{}` (acquired line {}) held across a \
                                         simnet suspend point; release it before blocking",
                                        g.class, g.line
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Graph analysis (Tarjan SCC)
// ---------------------------------------------------------------------------

struct Tarjan<'a> {
    adj: &'a BTreeMap<usize, Vec<usize>>,
    index: Vec<Option<usize>>,
    low: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next: usize,
    sccs: Vec<Vec<usize>>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: usize) {
        self.index[v] = Some(self.next);
        self.low[v] = self.next;
        self.next += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
        if let Some(ws) = self.adj.get(&v) {
            for &w in ws {
                if self.index[w].is_none() {
                    self.strongconnect(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].unwrap());
                }
            }
        }
        if self.low[v] == self.index[v].unwrap() {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            self.sccs.push(scc);
        }
    }
}

/// Find lock-order cycles; append one violation per SCC (size ≥ 2),
/// anchored at the lexicographically smallest edge site in the cycle.
fn detect_cycles(out: &mut Analysis) {
    let classes: Vec<String> = out.nodes.keys().cloned().collect();
    let idx: BTreeMap<&str, usize> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (from, to) in out.edges.keys() {
        if let (Some(&f), Some(&t)) = (idx.get(from.as_str()), idx.get(to.as_str())) {
            if f != t {
                adj.entry(f).or_default().push(t);
            }
        }
    }
    let n = classes.len();
    let mut tarjan = Tarjan {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if tarjan.index[v].is_none() {
            tarjan.strongconnect(v);
        }
    }
    for scc in tarjan.sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<&str> = scc.iter().map(|&i| classes[i].as_str()).collect();
        let mut cycle_sites: Vec<(&EdgeSite, &(String, String))> = Vec::new();
        for (key, sites) in &out.edges {
            if members.contains(key.0.as_str()) && members.contains(key.1.as_str()) {
                out.cycle_edges.insert(key.clone());
                for s in sites {
                    cycle_sites.push((s, key));
                }
            }
        }
        cycle_sites.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        let Some((anchor, _)) = cycle_sites.first() else {
            continue;
        };
        let mut names: Vec<&str> = members.iter().copied().collect();
        names.sort_unstable();
        out.violations.push(Violation {
            rule: RULE_CYCLE,
            file: anchor.file.clone(),
            line: anchor.line,
            col: 1,
            message: format!(
                "lock-order cycle among {{{}}} — these locks are acquired in \
                 conflicting orders ({} edge sites); impose one order or waive",
                names.join(", "),
                cycle_sites.len()
            ),
        });
    }
}

/// Analyze a set of (workspace-relative path, source) pairs: walk each
/// file, build the global graph, detect cycles, then apply waivers.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut out = Analysis::default();
    let mut waivers: Vec<(String, Waiver)> = Vec::new();
    for (path, src) in files {
        if ENGINE_WHITELIST.contains(&path.as_str()) {
            continue;
        }
        walk_file(path, src, &mut out, &mut waivers);
    }
    detect_cycles(&mut out);

    out.waivers_declared = waivers.len();
    let mut used = vec![false; waivers.len()];
    out.violations.retain(|v| {
        for (i, (wpath, w)) in waivers.iter().enumerate() {
            if w.rule == v.rule && *wpath == v.file && w.applies_line == v.line {
                used[i] = true;
                return false;
            }
        }
        true
    });
    for (i, (wpath, w)) in waivers.iter().enumerate() {
        if !used[i] {
            out.violations.push(Violation {
                rule: rules::RULE_WAIVER,
                file: wpath.clone(),
                line: w.decl_line,
                col: 1,
                message: format!(
                    "unused waiver for `{}` (line {} triggers no such violation); remove it",
                    w.rule, w.applies_line
                ),
            });
        }
    }
    out.waivers_used = used.iter().filter(|u| **u).count();
    out.violations.sort_by(|a, b| {
        (a.file.clone(), a.line, a.col, a.rule).cmp(&(b.file.clone(), b.line, b.col, b.rule))
    });
    out
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

fn report_json(
    a: &Analysis,
    root: &Path,
    files_scanned: usize,
    fresh: &[(Violation, String)],
    baselined: usize,
    stale: &[String],
    baseline_entries: usize,
) -> Json {
    let mut rule_names: Vec<&str> = LOCKGRAPH_RULES.to_vec();
    rule_names.push(rules::RULE_WAIVER);
    rule_names.sort_unstable();
    let counts: Vec<(String, Json)> = rule_names
        .iter()
        .map(|rule| {
            let n = fresh.iter().filter(|(v, _)| v.rule == *rule).count() as u64;
            (rule.to_string(), Json::Uint(n))
        })
        .collect();
    Json::Object(vec![
        ("schema".into(), Json::Str("gvfs.lockgraph.v1".into())),
        (
            "root".into(),
            Json::Str(root.to_string_lossy().into_owned()),
        ),
        ("files_scanned".into(), Json::Uint(files_scanned as u64)),
        (
            "clean".into(),
            Json::Bool(fresh.is_empty() && stale.is_empty()),
        ),
        (
            "nodes".into(),
            Json::Array(
                a.nodes
                    .iter()
                    .map(|(class, (count, files))| {
                        Json::Object(vec![
                            ("class".into(), Json::Str(class.clone())),
                            ("acquisitions".into(), Json::Uint(*count)),
                            (
                                "files".into(),
                                Json::Array(files.iter().map(|f| Json::Str(f.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "edges".into(),
            Json::Array(
                a.edges
                    .iter()
                    .map(|((from, to), sites)| {
                        Json::Object(vec![
                            ("from".into(), Json::Str(from.clone())),
                            ("to".into(), Json::Str(to.clone())),
                            ("count".into(), Json::Uint(sites.len() as u64)),
                            (
                                "in_cycle".into(),
                                Json::Bool(a.cycle_edges.contains(&(from.clone(), to.clone()))),
                            ),
                            (
                                "sites".into(),
                                Json::Array(
                                    sites
                                        .iter()
                                        .take(8)
                                        .map(|s| {
                                            Json::Object(vec![
                                                ("file".into(), Json::Str(s.file.clone())),
                                                ("line".into(), Json::Uint(s.line as u64)),
                                                (
                                                    "held_since_line".into(),
                                                    Json::Uint(s.held_line as u64),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".into(),
            Json::Array(
                fresh
                    .iter()
                    .map(|(v, text)| {
                        Json::Object(vec![
                            ("rule".into(), Json::Str(v.rule.to_string())),
                            ("file".into(), Json::Str(v.file.clone())),
                            ("line".into(), Json::Uint(v.line as u64)),
                            ("col".into(), Json::Uint(v.col as u64)),
                            ("message".into(), Json::Str(v.message.clone())),
                            ("snippet".into(), Json::Str(text.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("counts".into(), Json::Object(counts)),
        (
            "waivers".into(),
            Json::Object(vec![
                ("declared".into(), Json::Uint(a.waivers_declared as u64)),
                ("used".into(), Json::Uint(a.waivers_used as u64)),
            ]),
        ),
        (
            "baseline".into(),
            Json::Object(vec![
                ("entries".into(), Json::Uint(baseline_entries as u64)),
                ("matched".into(), Json::Uint(baselined as u64)),
                (
                    "stale".into(),
                    Json::Array(stale.iter().map(|s| Json::Str(s.clone())).collect()),
                ),
            ]),
        ),
    ])
}

/// Render the lock-order graph as GraphViz DOT; cycle edges are red.
pub fn render_dot(a: &Analysis) -> String {
    let mut out = String::from(
        "// Lock-order graph: an edge A -> B means a guard on A was held\n\
         // while B was acquired. Red edges participate in a cycle.\n\
         digraph lockgraph {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for class in a.nodes.keys() {
        out.push_str(&format!("  \"{class}\";\n"));
    }
    for ((from, to), sites) in &a.edges {
        let attrs = if a.cycle_edges.contains(&(from.clone(), to.clone())) {
            format!("label=\"{}\", color=red, penwidth=2.0", sites.len())
        } else {
            format!("label=\"{}\"", sites.len())
        };
        out.push_str(&format!("  \"{from}\" -> \"{to}\" [{attrs}];\n"));
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
    root: PathBuf,
    json_path: Option<PathBuf>,
    dot_path: Option<PathBuf>,
    baseline_path: PathBuf,
    write_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root = None;
    let mut json_path = None;
    let mut dot_path = None;
    let mut baseline_path = None;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--json" => json_path = Some(PathBuf::from(it.next().ok_or("--json needs a value")?)),
            "--dot" => dot_path = Some(PathBuf::from(it.next().ok_or("--dot needs a value")?)),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--write-baseline" => write_baseline = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(lint::find_workspace_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lockgraph-baseline.txt"));
    Ok(Options {
        root,
        json_path,
        dot_path,
        baseline_path,
        write_baseline,
    })
}

pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lockgraph: {e}");
            return ExitCode::from(2);
        }
    };
    let rels = lint::collect_files(&opts.root);
    let mut files: Vec<(String, String)> = Vec::new();
    for rel in &rels {
        if let Ok(src) = std::fs::read_to_string(opts.root.join(rel)) {
            files.push((rel.clone(), src));
        }
    }
    let analysis = analyze_sources(&files);

    // Baseline matching, same machinery as lint.
    let baseline_text = std::fs::read_to_string(&opts.baseline_path).unwrap_or_default();
    let baseline = lint::parse_baseline(&baseline_text);
    let baseline_entries: usize = baseline.values().map(|n| *n as usize).sum();
    let mut remaining = baseline.clone();
    let sources: BTreeMap<&str, &str> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let mut fresh: Vec<(Violation, String)> = Vec::new();
    let mut baselined = 0usize;
    for v in &analysis.violations {
        let text = sources
            .get(v.file.as_str())
            .and_then(|src| src.lines().nth(v.line.saturating_sub(1) as usize))
            .unwrap_or("")
            .trim()
            .to_string();
        let key = lint::baseline_key(v, &text);
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                baselined += 1;
            }
            _ => fresh.push((v.clone(), text)),
        }
    }
    let stale: Vec<String> = remaining
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, _)| k)
        .collect();

    if opts.write_baseline {
        let mut keys: Vec<String> = fresh
            .iter()
            .map(|(v, text)| lint::baseline_key(v, text))
            .collect();
        keys.sort();
        let rendered = lint::render_baseline_for("lockgraph", &keys);
        if let Err(e) = std::fs::write(&opts.baseline_path, rendered) {
            eprintln!(
                "xtask lockgraph: cannot write {}: {e}",
                opts.baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} entries to {}",
            keys.len(),
            opts.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(json_path) = &opts.json_path {
        if let Some(parent) = json_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let json = report_json(
            &analysis,
            &opts.root,
            files.len(),
            &fresh,
            baselined,
            &stale,
            baseline_entries,
        )
        .pretty();
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("xtask lockgraph: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dot_path) = &opts.dot_path {
        if let Some(parent) = dot_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(dot_path, render_dot(&analysis)) {
            eprintln!("xtask lockgraph: cannot write {}: {e}", dot_path.display());
            return ExitCode::from(2);
        }
    }

    for (v, text) in &fresh {
        println!("{}: {}:{}:{}: {}", v.rule, v.file, v.line, v.col, v.message);
        if !text.is_empty() {
            println!("    {text}");
        }
    }
    for key in &stale {
        println!("stale-baseline: entry no longer matches any violation: {key}");
    }
    println!(
        "xtask lockgraph: {} files, {} lock classes, {} edges ({} in cycles), \
         {} violations ({} baselined), {} stale baseline entries, waivers {}/{} used",
        files.len(),
        analysis.nodes.len(),
        analysis.edges.len(),
        analysis.cycle_edges.len(),
        fresh.len(),
        baselined,
        stale.len(),
        analysis.waivers_used,
        analysis.waivers_declared,
    );
    if fresh.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(src: &str) -> Analysis {
        analyze_sources(&[("crates/gvfs/src/fixture.rs".to_string(), src.to_string())])
    }

    fn rules_of(a: &Analysis) -> Vec<&str> {
        a.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn let_bound_guard_released_at_scope_end() {
        let src = r#"
            fn f(env: &Env) {
                {
                    let g = self.state.lock();
                    g.touch();
                }
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.nodes.len(), 1);
        assert!(a.nodes.contains_key("gvfs::fixture::state"));
    }

    #[test]
    fn guard_across_suspend_detected() {
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
    }

    #[test]
    fn transient_guard_across_bare_env_arg_detected() {
        // The lint lock-discipline rule misses this shape (no let binding);
        // the dataflow pass must not.
        let src = r#"
            fn f(env: &Env) {
                self.state.lock().fill(fetch(env, key));
            }
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
    }

    #[test]
    fn transient_guard_dies_at_statement_end() {
        let src = r#"
            fn f(env: &Env) {
                let n = self.state.lock().len();
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn match_scrutinee_guard_lives_through_block() {
        let src = r#"
            fn f(env: &Env) {
                match self.fs.lock().resolve(path) {
                    Some(x) => env.sleep(1),
                    None => {}
                }
            }
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
    }

    #[test]
    fn if_condition_guard_dropped_before_block() {
        let src = r#"
            fn f(env: &Env) {
                if self.state.lock().dirty {
                    env.sleep(1);
                }
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn double_acquire_detected() {
        let src = r#"
            fn f() {
                let a = self.state.lock();
                let b = self.state.lock();
            }
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![RULE_DOUBLE_ACQUIRE]);
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                drop(g);
                env.sleep(1);
                let h = self.state.lock();
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn cycle_between_two_functions_detected() {
        let src = r#"
            fn ab() {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }
            fn ba() {
                let b = self.beta.lock();
                let a = self.alpha.lock();
            }
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![RULE_CYCLE]);
        assert_eq!(a.cycle_edges.len(), 2);
    }

    #[test]
    fn consistent_order_is_clean_but_builds_edges() {
        let src = r#"
            fn f() {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }
            fn g() {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.edges.len(), 1);
        let sites = &a.edges[&(
            "gvfs::fixture::alpha".to_string(),
            "gvfs::fixture::beta".to_string(),
        )];
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn if_let_try_lock_guard_tracked_until_block_end() {
        let src = r#"
            fn f(env: &Env) {
                if let Some(g) = self.state.try_lock() {
                    env.sleep(1);
                }
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        // Only the suspend inside the if-body fires.
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
        assert_eq!(a.violations[0].line, 4);
    }

    #[test]
    fn try_lock_is_not_an_edge_target_or_double() {
        let src = r#"
            fn f() {
                let a = self.alpha.lock();
                if let Some(b) = self.alpha.try_lock() {
                    b.touch();
                }
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.edges.is_empty());
    }

    #[test]
    fn closure_body_gets_fresh_scope() {
        // The guard is held by the spawning code, not by the closure body
        // (it runs on another simulated process) — no violation inside.
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                handle.spawn("w", move |env| {
                    env.sleep(1);
                });
                drop(g);
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn nested_closures_restore_outer_scope() {
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                run(move |env| {
                    inner(move |env| {
                        env.sleep(1);
                    });
                });
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        // Only the outer env.sleep (same scope as the guard) fires.
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
        assert_eq!(a.violations[0].line, 9);
    }

    #[test]
    fn resource_acquire_is_acquisition_and_suspend() {
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                let permit = self.arm.acquire(env);
            }
        "#;
        let a = analyze_one(src);
        // Holding `state` across the acquire's own suspend fires; the new
        // `arm` guard must not self-report (active only after the call).
        assert_eq!(rules_of(&a), vec![RULE_GUARD_SUSPEND]);
        assert!(a.violations[0].message.contains("state"));
        // And the edge state -> arm is recorded.
        assert!(a.edges.contains_key(&(
            "gvfs::fixture::state".to_string(),
            "gvfs::fixture::arm".to_string()
        )));
    }

    #[test]
    fn let_underscore_drops_immediately() {
        let src = r#"
            fn f(env: &Env) {
                let _ = self.state.lock();
                env.sleep(1);
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn file_read_with_args_is_not_a_lock() {
        let src = r#"
            fn f(env: &Env) {
                let n = file.read(buf);
                let m = file.read(env, buf);
            }
        "#;
        let a = analyze_one(src);
        assert!(a.nodes.is_empty(), "{:?}", a.nodes);
    }

    #[test]
    fn test_code_is_masked() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f(env: &Env) {
                    let g = self.state.lock();
                    env.sleep(1);
                }
            }
        "#;
        let a = analyze_one(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn waiver_cancels_and_unused_waiver_reports() {
        let src = r#"
            fn f(env: &Env) {
                let g = self.state.lock();
                // lint:allow(lock-guard-suspend): fixture exercises waivers
                env.sleep(1);
            }
            // lint:allow(lock-double-acquire): nothing here triggers this
            fn g() {}
        "#;
        let a = analyze_one(src);
        assert_eq!(rules_of(&a), vec![rules::RULE_WAIVER]);
        assert_eq!(a.waivers_declared, 2);
        assert_eq!(a.waivers_used, 1);
    }

    #[test]
    fn raw_identifier_receiver_forms_a_class() {
        let src = r#"
            fn f() {
                let g = self.r#type.lock();
            }
        "#;
        let a = analyze_one(src);
        assert!(a.nodes.contains_key("gvfs::fixture::type"), "{:?}", a.nodes);
    }
}
