//! A minimal Rust token scanner with line/column tracking.
//!
//! This is not a full parser: the lint rules only need a faithful token
//! stream (identifiers, literals, punctuation) with comments and string
//! contents kept out of the way, so banned identifiers inside a string or
//! a doc comment never count as code. Raw strings, byte strings, nested
//! block comments, and the char-literal/lifetime ambiguity are handled;
//! everything else is "one `char` of punctuation at a time", which is
//! enough for the pattern windows the rules match against.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    Char,
    Lifetime,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }
    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

/// A comment, kept separately from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: malformed input degrades to punctuation
/// tokens, which is fine for a linter (rustc rejects it long before us).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut line_has_code = false;
    let mut cur_line = 1u32;

    while let Some(b) = c.peek() {
        if c.line != cur_line {
            cur_line = c.line;
            line_has_code = false;
        }
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    own_line: !line_has_code,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    own_line: !line_has_code,
                });
            }
            b'r' | b'b' if raw_string_lookahead(&c) => {
                line_has_code = true;
                lex_raw_string(&mut c);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'r' if c.peek_at(1) == Some(b'#') && c.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`: one Ident token whose text is the
                // part after `r#`, so `r#match.lock()` walks like any other
                // receiver chain.
                line_has_code = true;
                c.bump();
                c.bump();
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    col,
                });
            }
            b'b' if c.peek_at(1) == Some(b'"') => {
                line_has_code = true;
                c.bump();
                lex_quoted(&mut c, b'"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'b' if c.peek_at(1) == Some(b'\'') => {
                line_has_code = true;
                c.bump();
                lex_quoted(&mut c, b'\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'"' => {
                line_has_code = true;
                lex_quoted(&mut c, b'"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                line_has_code = true;
                let kind = lex_char_or_lifetime(&mut c, &mut toks, line, col);
                if let Some(k) = kind {
                    toks.push(Tok {
                        kind: k,
                        text: String::new(),
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(b) => {
                line_has_code = true;
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                line_has_code = true;
                let start = c.pos;
                // Consume digits plus type/exponent suffix characters.
                // `.` is deliberately excluded so `0..n` and `1.5` split
                // into separate tokens; rules never care about floats.
                while c
                    .peek()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    c.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ => {
                line_has_code = true;
                c.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }

    Lexed { toks, comments }
}

/// True when the cursor sits on a raw (byte) string opener: `r"`, `br"`,
/// or `r`/`br` followed by hashes and then `"`. Scanning past the hashes
/// matters: `r#type` is a raw *identifier*, not a raw string, and the old
/// two-character lookahead misfired on it (pushing a bogus empty `Str`
/// token after `lex_raw_string` gave up).
fn raw_string_lookahead(c: &Cursor<'_>) -> bool {
    let mut off = 0usize;
    if c.peek() == Some(b'b') {
        off = 1;
        if c.peek_at(off) != Some(b'r') {
            return false;
        }
    }
    if c.peek_at(off) != Some(b'r') {
        return false;
    }
    off += 1;
    while c.peek_at(off) == Some(b'#') {
        off += 1;
    }
    c.peek_at(off) == Some(b'"')
}

fn lex_raw_string(c: &mut Cursor<'_>) {
    if c.peek() == Some(b'b') {
        c.bump();
    }
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        c.bump();
        hashes += 1;
    }
    if c.peek() != Some(b'"') {
        return; // not actually a raw string; give up gracefully
    }
    c.bump();
    loop {
        match c.bump() {
            None => return,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && c.peek() == Some(b'#') {
                    c.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_quoted(c: &mut Cursor<'_>, quote: u8) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(b) if b == quote => return,
            Some(_) => {}
        }
    }
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime). Returns the
/// token kind to push, or None when it already pushed (never happens now,
/// kept for symmetry).
fn lex_char_or_lifetime(
    c: &mut Cursor<'_>,
    _toks: &mut [Tok],
    _line: u32,
    _col: u32,
) -> Option<TokKind> {
    // c sits on the opening quote.
    let next = c.peek_at(1);
    let after = c.peek_at(2);
    match next {
        Some(b'\\') => {
            lex_quoted(c, b'\'');
            Some(TokKind::Char)
        }
        Some(n) if is_ident_start(n) && after != Some(b'\'') => {
            // lifetime: consume quote + ident chars
            c.bump();
            while c.peek().is_some_and(is_ident_continue) {
                c.bump();
            }
            Some(TokKind::Lifetime)
        }
        _ => {
            lex_quoted(c, b'\'');
            Some(TokKind::Char)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // unwrap inside a comment
            let s = "unwrap() in a string";
            let r = r#"unwrap in raw "quoted" string"#;
            /* block /* nested */ unwrap */
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; g(c, nl) }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb\n";
        let lexed = lex(src);
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        // `r#type` must come through as a single Ident "type", not as a
        // bogus empty Str token (the old lookahead stopped at `r#`).
        let src = "let r#type = map.lock(); drop(r#type);";
        let lexed = lex(src);
        assert!(
            !lexed.toks.iter().any(|t| t.kind == TokKind::Str),
            "raw ident mislexed as string: {:?}",
            lexed.toks
        );
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "type").count(), 2);
        assert!(ids.contains(&"lock".to_string()));
    }

    #[test]
    fn raw_strings_inside_macros() {
        // Raw strings with hashes inside a macro invocation must swallow
        // their contents (including fake `.lock()` calls and braces that
        // would otherwise corrupt scope tracking).
        let src = r####"
            write!(f, r##"a { brace and x.lock() inside "# quotes "##).ok();
            let after = 1;
        "####;
        let lexed = lex(src);
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        assert!(!ids.contains(&"brace".to_string()));
        assert!(ids.contains(&"after".to_string()));
        // Braces inside the raw string must not appear as punct tokens.
        let braces = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && (t.text == "{" || t.text == "}"))
            .count();
        assert_eq!(braces, 0, "raw-string braces leaked into token stream");
    }

    #[test]
    fn raw_ident_lookahead_does_not_eat_following_tokens() {
        // `r#match` followed by more code on the same line: the tokens
        // after the raw ident must survive with correct columns.
        let src = "r#match.read()";
        let lexed = lex(src);
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["match", ".", "read", "(", ")"]);
    }

    #[test]
    fn byte_raw_strings_still_lex() {
        let src = r###"let b = br#"bytes "quoted" here"#; let tail = 2;"###;
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.contains(&"bytes".to_string()));
    }

    #[test]
    fn comment_own_line_flag() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }
}
