//! Tiny JSON value + pretty printer.
//!
//! Mirrors `simnet::telemetry::JsonValue` (insertion-ordered objects,
//! 2-space indentation) so `reports/lint.json` reads like the telemetry
//! reports, without xtask depending on simnet.

pub enum Json {
    Bool(bool),
    Uint(u64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => out.push_str(&n.to_string()),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_telemetry_style() {
        let v = Json::Object(vec![
            ("schema".into(), Json::Str("gvfs.lint.v1".into())),
            ("count".into(), Json::Uint(2)),
            ("items".into(), Json::Array(vec![Json::Bool(true)])),
            ("empty".into(), Json::Object(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n  \"schema\": \"gvfs.lint.v1\",\n"));
        assert!(s.contains("  \"items\": [\n    true\n  ],\n"));
        assert!(s.ends_with("  \"empty\": {}\n}\n"));
    }

    #[test]
    fn escapes_control_chars() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
