use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => xtask::lint::run(&args[1..]),
        Some("lockgraph") => xtask::lockgraph::run(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--json <path>] [--baseline <path>] \
         [--write-baseline] [--root <dir>]\n       \
         cargo run -p xtask -- lockgraph [--json <path>] [--dot <path>] \
         [--baseline <path>] [--write-baseline] [--root <dir>]"
    );
}
