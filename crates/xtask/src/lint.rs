//! The `lint` subcommand: file walking, waiver application, baseline
//! matching, and human/JSON reporting.

use crate::json::Json;
use crate::lexer::{lex, Comment};
use crate::rules::{self, Violation};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A parsed `// lint:allow(<rule>): <reason>` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    /// The source line the waiver applies to: its own line for trailing
    /// waivers, the next line for waivers on their own line.
    pub applies_line: u32,
    pub decl_line: u32,
    pub reason: String,
}

/// One file's lint outcome before baseline matching.
pub struct FileResult {
    pub violations: Vec<Violation>,
    pub waivers_declared: usize,
    pub waivers_used: usize,
}

/// Parse waiver comments out of a lexed file for the `lint` pass.
/// Malformed waivers are reported as `waiver` violations immediately.
pub fn parse_waivers(path: &str, comments: &[Comment], out: &mut Vec<Violation>) -> Vec<Waiver> {
    parse_waivers_for(
        path,
        comments,
        rules::ALL_RULES,
        crate::lockgraph::LOCKGRAPH_RULES,
        out,
    )
}

/// Parse waiver comments, keeping only those naming a rule in
/// `active_rules`. Waivers for `foreign_rules` are silently skipped —
/// they belong to the other pass (lint vs lockgraph share the one
/// `lint:allow(...)` syntax), so neither pass reports them as unknown or
/// unused. A rule known to neither set is a malformed waiver.
pub fn parse_waivers_for(
    path: &str,
    comments: &[Comment],
    active_rules: &[&str],
    foreign_rules: &[&str],
    out: &mut Vec<Violation>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        // A waiver must be the entire comment: `// lint:allow(rule): reason`.
        // Mentions of the syntax in prose/doc comments are not waivers.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let bad = |msg: &str, out: &mut Vec<Violation>| {
            out.push(Violation {
                rule: rules::RULE_WAIVER,
                file: path.to_string(),
                line: c.line,
                col: 1,
                message: format!("{msg}; expected `// lint:allow(<rule>): <reason>`"),
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            bad("malformed waiver: missing `(<rule>)`", out);
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed waiver: unterminated `(<rule>)`", out);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if foreign_rules.contains(&rule.as_str()) && !active_rules.contains(&rule.as_str()) {
            continue; // other pass owns this waiver
        }
        if !active_rules.contains(&rule.as_str()) || rule == rules::RULE_WAIVER {
            bad(&format!("waiver names unknown rule `{rule}`"), out);
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            // The headline rule: a waiver without a reason is itself a
            // violation — every suppression must say why.
            bad(&format!("waiver for `{rule}` has no reason"), out);
            continue;
        }
        waivers.push(Waiver {
            rule,
            applies_line: if c.own_line { c.line + 1 } else { c.line },
            decl_line: c.line,
            reason: reason.to_string(),
        });
    }
    waivers
}

/// Run all rules on one file, then cancel violations covered by waivers.
/// Unused waivers are themselves reported (a stale suppression hides the
/// day the code regresses for real).
pub fn lint_source(path: &str, src: &str) -> FileResult {
    let mut violations = rules::check_file(path, src);
    let lexed = lex(src);
    let mut waiver_violations = Vec::new();
    let waivers = parse_waivers(path, &lexed.comments, &mut waiver_violations);
    let mut used = vec![false; waivers.len()];

    violations.retain(|v| {
        for (i, w) in waivers.iter().enumerate() {
            if w.rule == v.rule && w.applies_line == v.line {
                used[i] = true;
                return false;
            }
        }
        true
    });
    for (i, w) in waivers.iter().enumerate() {
        if !used[i] {
            waiver_violations.push(Violation {
                rule: rules::RULE_WAIVER,
                file: path.to_string(),
                line: w.decl_line,
                col: 1,
                message: format!(
                    "unused waiver for `{}` (line {} triggers no such violation); remove it",
                    w.rule, w.applies_line
                ),
            });
        }
    }
    let used_count = used.iter().filter(|u| **u).count();
    violations.extend(waiver_violations);
    violations.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileResult {
        violations,
        waivers_declared: waivers.len(),
        waivers_used: used_count,
    }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Baseline key: rule + path + trimmed source line text. Line text (not
/// the line number) keeps entries stable across unrelated edits above.
pub fn baseline_key(v: &Violation, line_text: &str) -> String {
    format!("{}\t{}\t{}", v.rule, v.file, line_text.trim())
}

pub fn parse_baseline(text: &str) -> BTreeMap<String, u32> {
    let mut map: BTreeMap<String, u32> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *map.entry(line.to_string()).or_insert(0) += 1;
    }
    map
}

pub fn render_baseline(keys: &[String]) -> String {
    render_baseline_for("lint", keys)
}

/// Shared baseline renderer; `tool` names the subcommand that owns the
/// file (`lint` or `lockgraph`).
pub fn render_baseline_for(tool: &str, keys: &[String]) -> String {
    let mut out = format!(
        "# xtask {tool} baseline — grandfathered violations.\n\
         # Format: <rule>\\t<path>\\t<trimmed source line>\n\
         # Regenerate with: cargo run -p xtask -- {tool} --write-baseline\n",
    );
    for k in keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
    root: PathBuf,
    json_path: Option<PathBuf>,
    baseline_path: PathBuf,
    write_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root = None;
    let mut json_path = None;
    let mut baseline_path = None;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--json" => json_path = Some(PathBuf::from(it.next().ok_or("--json needs a value")?)),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--write-baseline" => write_baseline = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    Ok(Options {
        root,
        json_path,
        baseline_path,
        write_baseline,
    })
}

/// Walk upward from CWD looking for the workspace root (a Cargo.toml
/// containing `[workspace]`); fall back to this crate's parent dirs.
pub fn find_workspace_root() -> PathBuf {
    let mut candidates = Vec::new();
    if let Ok(cwd) = std::env::current_dir() {
        candidates.push(cwd);
    }
    candidates.push(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    for start in candidates {
        let mut dir = start.as_path();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => break,
            }
        }
    }
    PathBuf::from(".")
}

/// All `crates/*/src/**/*.rs` files under `root`, workspace-relative with
/// forward slashes, sorted for deterministic reports.
pub fn collect_files(root: &Path) -> Vec<String> {
    let mut out: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Vec::new();
    };
    let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out);
        }
    }
    let mut rel: Vec<String> = out
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    rel
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

struct RunReport {
    files_scanned: usize,
    fresh: Vec<(Violation, String)>, // violation + trimmed line text
    baselined: usize,
    stale_baseline: Vec<String>,
    waivers_declared: usize,
    waivers_used: usize,
}

fn run_lint(root: &Path, baseline: &BTreeMap<String, u32>) -> RunReport {
    let files = collect_files(root);
    let mut fresh = Vec::new();
    let mut baselined = 0usize;
    let mut remaining = baseline.clone();
    let mut waivers_declared = 0usize;
    let mut waivers_used = 0usize;

    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        let lines: Vec<&str> = src.lines().collect();
        let res = lint_source(rel, &src);
        waivers_declared += res.waivers_declared;
        waivers_used += res.waivers_used;
        for v in res.violations {
            let text = lines
                .get(v.line.saturating_sub(1) as usize)
                .copied()
                .unwrap_or("")
                .trim()
                .to_string();
            let key = baseline_key(&v, &text);
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined += 1;
                }
                _ => fresh.push((v, text)),
            }
        }
    }
    let stale_baseline: Vec<String> = remaining
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, _)| k)
        .collect();
    RunReport {
        files_scanned: files.len(),
        fresh,
        baselined,
        stale_baseline,
        waivers_declared,
        waivers_used,
    }
}

fn report_json(r: &RunReport, root: &Path, baseline_entries: usize) -> Json {
    let mut counts: Vec<(String, Json)> = rules::ALL_RULES
        .iter()
        .map(|rule| {
            let n = r.fresh.iter().filter(|(v, _)| v.rule == *rule).count() as u64;
            (rule.to_string(), Json::Uint(n))
        })
        .collect();
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Object(vec![
        ("schema".into(), Json::Str("gvfs.lint.v1".into())),
        (
            "root".into(),
            Json::Str(root.to_string_lossy().into_owned()),
        ),
        ("files_scanned".into(), Json::Uint(r.files_scanned as u64)),
        (
            "clean".into(),
            Json::Bool(r.fresh.is_empty() && r.stale_baseline.is_empty()),
        ),
        (
            "violations".into(),
            Json::Array(
                r.fresh
                    .iter()
                    .map(|(v, text)| {
                        Json::Object(vec![
                            ("rule".into(), Json::Str(v.rule.to_string())),
                            ("file".into(), Json::Str(v.file.clone())),
                            ("line".into(), Json::Uint(v.line as u64)),
                            ("col".into(), Json::Uint(v.col as u64)),
                            ("message".into(), Json::Str(v.message.clone())),
                            ("snippet".into(), Json::Str(text.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("counts".into(), Json::Object(counts)),
        (
            "waivers".into(),
            Json::Object(vec![
                ("declared".into(), Json::Uint(r.waivers_declared as u64)),
                ("used".into(), Json::Uint(r.waivers_used as u64)),
            ]),
        ),
        (
            "baseline".into(),
            Json::Object(vec![
                ("entries".into(), Json::Uint(baseline_entries as u64)),
                ("matched".into(), Json::Uint(r.baselined as u64)),
                (
                    "stale".into(),
                    Json::Array(
                        r.stale_baseline
                            .iter()
                            .map(|s| Json::Str(s.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_text = std::fs::read_to_string(&opts.baseline_path).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text);
    let baseline_entries: usize = baseline.values().map(|n| *n as usize).sum();
    let report = run_lint(&opts.root, &baseline);

    if opts.write_baseline {
        let mut keys: Vec<String> = report
            .fresh
            .iter()
            .map(|(v, text)| baseline_key(v, text))
            .collect();
        keys.sort();
        let rendered = render_baseline(&keys);
        if let Err(e) = std::fs::write(&opts.baseline_path, rendered) {
            eprintln!(
                "xtask lint: cannot write {}: {e}",
                opts.baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} entries to {}",
            keys.len(),
            opts.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(json_path) = &opts.json_path {
        if let Some(parent) = json_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let json = report_json(&report, &opts.root, baseline_entries).pretty();
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("xtask lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    for (v, text) in &report.fresh {
        println!("{}: {}:{}:{}: {}", v.rule, v.file, v.line, v.col, v.message);
        if !text.is_empty() {
            println!("    {text}");
        }
    }
    for key in &report.stale_baseline {
        println!("stale-baseline: entry no longer matches any violation: {key}");
    }
    println!(
        "xtask lint: {} files scanned, {} violations ({} baselined), {} stale baseline entries, \
         waivers {}/{} used",
        report.files_scanned,
        report.fresh.len(),
        report.baselined,
        report.stale_baseline.len(),
        report.waivers_used,
        report.waivers_declared,
    );
    if report.fresh.is_empty() && report.stale_baseline.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
