//! The invariant rule catalog.
//!
//! Each rule scans the token stream of one file and emits violations.
//! Rules are lexical by design: they match token windows, not an AST,
//! which keeps the engine dependency-free and fast. The cost is a small
//! set of documented over-approximations (see DESIGN.md §5.2), bridged
//! by inline waivers.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;

/// Rule identifiers, in report order.
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_BOUNDED_DECODE: &str = "bounded-decode";
pub const RULE_EXACT_ACCOUNTING: &str = "exact-accounting";
pub const RULE_PANIC_FREE: &str = "panic-free-dispatch";
pub const RULE_LOCK_DISCIPLINE: &str = "lock-discipline";
pub const RULE_BOUNDED_FANOUT: &str = "bounded-fanout";
pub const RULE_DEADLINE: &str = "deadline-required";
pub const RULE_CANONICAL_DIGEST: &str = "canonical-digest";
pub const RULE_ALLOC_FREE_RECORD: &str = "allocation-free-record";
pub const RULE_CAS_EVICTION: &str = "cas-eviction";
/// Meta-rule: malformed or unused waiver comments.
pub const RULE_WAIVER: &str = "waiver";

pub const ALL_RULES: &[&str] = &[
    RULE_DETERMINISM,
    RULE_BOUNDED_DECODE,
    RULE_EXACT_ACCOUNTING,
    RULE_PANIC_FREE,
    RULE_LOCK_DISCIPLINE,
    RULE_BOUNDED_FANOUT,
    RULE_DEADLINE,
    RULE_CANONICAL_DIGEST,
    RULE_ALLOC_FREE_RECORD,
    RULE_CAS_EVICTION,
    RULE_WAIVER,
];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Files where `std::thread` is legal: the simnet engine's one blessed
/// worker-spawn site. The lock-discipline rule is also skipped there —
/// the scheduler parks OS threads while coordinating by construction.
const THREAD_WHITELIST: &[&str] = &["crates/simnet/src/engine.rs"];

/// Scope of the bounded-decode rule: modules that decode untrusted wire
/// bytes into sized allocations.
fn bounded_decode_scope(path: &str) -> bool {
    path.starts_with("crates/xdr/src/")
        || path == "crates/oncrpc/src/msg.rs"
        || path == "crates/nfs3/src/proto.rs"
        || path == "crates/gvfs/src/codec.rs"
        // The channel's gossip codec decodes digest inventories pushed
        // by *sibling shards* — still untrusted wire bytes.
        || path == "crates/gvfs/src/channel.rs"
}

/// Scope of the exact-accounting rule: byte-accounting and counter
/// modules where saturating/wrapping arithmetic hides real bugs.
fn exact_accounting_scope(path: &str) -> bool {
    path == "crates/gvfs/src/block_cache.rs"
        || path == "crates/gvfs/src/file_cache.rs"
        || path == "crates/simnet/src/telemetry.rs"
}

/// Scope of the bounded-fanout rule: gvfs modules that fan RPCs out over
/// simnet. Per-item process spawns in a loop put unbounded load on the
/// WAN; the transfer engine (`gvfs::transfer::run_windowed`) is the one
/// place allowed to spawn workers from a loop, because its worker count
/// is `min(window, jobs)` by construction.
fn bounded_fanout_scope(path: &str) -> bool {
    path.starts_with("crates/gvfs/src/") && path != "crates/gvfs/src/transfer.rs"
}

/// Scope of the deadline-required rule: modules that issue RPCs over
/// links that can drop or sever messages (fault injection). A bare
/// `RpcClient::call` there blocks forever when the reply is lost;
/// `call_dl` applies the stub's deadline/retransmission policy and is
/// byte-identical when no policy is attached.
fn deadline_scope(path: &str) -> bool {
    path.starts_with("crates/gvfs/src/") || path.starts_with("crates/nfs3/src/")
}

/// Scope of the canonical-digest rule: all gvfs modules except the
/// digest module itself. Content hashing anywhere else must route
/// through `gvfs::digest` — CAS keys, channel recipes and flush
/// acked-digest tracking only dedup correctly when every layer agrees
/// on what "the same bytes" means.
fn canonical_digest_scope(path: &str) -> bool {
    path.starts_with("crates/gvfs/src/") && path != "crates/gvfs/src/digest.rs"
}

/// Scope of the allocation-free-record rule: the telemetry module, whose
/// `record*` methods sit on every simulated I/O completion. A fleet run
/// records millions of samples; one allocation per sample turns the
/// percentile sketch into the scenario's real bottleneck.
fn alloc_free_record_scope(path: &str) -> bool {
    path == "crates/simnet/src/telemetry.rs"
}

/// Scope of the cas-eviction rule: all gvfs modules except the CAS
/// itself. Eviction decisions — and the pin check that guards them —
/// live only in cas.rs: a layer dropping content-store entries directly
/// can orphan a digest a live reference file still resolves through,
/// and the `cas.pin_blocked_evictions` counter stays truthful only
/// while insertion is the sole eviction point.
fn cas_eviction_scope(path: &str) -> bool {
    path.starts_with("crates/gvfs/src/") && path != "crates/gvfs/src/cas.rs"
}

/// Scope of the panic-free-dispatch rule: the four modules on the
/// untrusted request path (proxy → RPC dispatch → NFS server/kernel).
fn panic_free_scope(path: &str) -> bool {
    path == "crates/oncrpc/src/dispatch.rs"
        || path == "crates/nfs3/src/server.rs"
        || path == "crates/nfs3/src/kernel.rs"
        || path == "crates/gvfs/src/proxy.rs"
}

/// Lex `src` and run every applicable rule. Waiver and baseline
/// application happen in the engine, not here.
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut out = Vec::new();

    rule_determinism(path, toks, &mask, &mut out);
    if bounded_decode_scope(path) {
        rule_bounded_decode(path, toks, &mask, &mut out);
    }
    if exact_accounting_scope(path) {
        rule_exact_accounting(path, toks, &mask, &mut out);
    }
    if panic_free_scope(path) {
        rule_panic_free(path, toks, &mask, &mut out);
    }
    if !THREAD_WHITELIST.contains(&path) {
        rule_lock_discipline(path, toks, &mask, &mut out);
    }
    if bounded_fanout_scope(path) {
        rule_bounded_fanout(path, toks, &mask, &mut out);
    }
    if deadline_scope(path) {
        rule_deadline(path, toks, &mask, &mut out);
    }
    if canonical_digest_scope(path) {
        rule_canonical_digest(path, toks, &mask, &mut out);
    }
    if alloc_free_record_scope(path) {
        rule_alloc_free_record(path, toks, &mask, &mut out);
    }
    if cas_eviction_scope(path) {
        rule_cas_eviction(path, toks, &mask, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Shared token-stream analyses
// ---------------------------------------------------------------------------

/// Mark every token that belongs to test-only code: an item annotated
/// `#[test]` / `#[cfg(test)]` (or any attribute mentioning `test`, except
/// under `not(...)`), including nested `mod tests { ... }` bodies.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                } else if t.is_ident("test") {
                    has_test = true;
                } else if t.is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                let end = item_end(toks, j);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Find the end (exclusive token index) of the item starting at `i`:
/// either the matching `}` of its first body brace, or a terminating `;`
/// outside any parens/brackets. Skips leading attributes.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip further attributes stacked on the same item.
    while toks.get(i).is_some_and(|t| t.is_punct("#"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut depth = 1i32;
        i += 2;
        while i < toks.len() && depth > 0 {
            if toks[i].is_punct("[") {
                depth += 1;
            } else if toks[i].is_punct("]") {
                depth -= 1;
            }
            i += 1;
        }
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => {
                    // Body found; consume to its matching close brace.
                    let mut depth = 1i32;
                    i += 1;
                    while i < toks.len() && depth > 0 {
                        if toks[i].is_punct("{") {
                            depth += 1;
                        } else if toks[i].is_punct("}") {
                            depth -= 1;
                        }
                        i += 1;
                    }
                    return i;
                }
                ";" if paren == 0 && bracket == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// For each token, the name of the innermost enclosing `fn`, if any.
fn enclosing_fns(toks: &[Tok]) -> Vec<Option<String>> {
    let mut out = vec![None; toks.len()];
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut current: Option<String> = None;
    let mut pending: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        out[i] = current.clone();
        if t.is_ident("fn") {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident {
                    pending = Some(n.text.clone());
                }
            }
        } else if t.is_punct("{") {
            stack.push(current.clone());
            if let Some(p) = pending.take() {
                current = Some(p);
            }
        } else if t.is_punct("}") {
            current = stack.pop().flatten();
        } else if t.is_punct(";") && stack.is_empty() {
            pending = None; // trait method declaration without a body
        }
    }
    out
}

/// Collect names (locals, fields, type aliases) declared with a
/// `HashMap` type in this file. Lexical: `name: HashMap<..>`,
/// `let [mut] name = HashMap::new()/with_capacity(..)`, and
/// `type Alias = HashMap<..>` plus `name: Alias`.
fn hashmap_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut aliases: BTreeSet<String> = BTreeSet::new();
    let mut names: BTreeSet<String> = BTreeSet::new();

    // Pass 1: type aliases.
    for i in 0..toks.len() {
        if toks[i].is_ident("type")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct("="))
            && path_head_is(toks, i + 3, "HashMap")
        {
            aliases.insert(toks[i + 1].text.clone());
        }
    }

    // Pass 2: declarations.
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_map_ty =
            t.is_ident("HashMap") || (t.kind == TokKind::Ident && aliases.contains(&t.text));
        if !is_map_ty {
            continue;
        }
        if let Some(name) = declared_name_before(toks, i) {
            names.insert(name);
        }
    }
    names
}

/// True when the (possibly `std::collections::`-qualified) path starting
/// at token `i` ends in `ident`.
fn path_head_is(toks: &[Tok], mut i: usize, ident: &str) -> bool {
    // Walk over `seg :: seg :: ... ident`
    loop {
        match toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => {
                if toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(":"))
                {
                    i += 3;
                } else {
                    return t.text == ident;
                }
            }
            _ => return false,
        }
    }
}

/// Given a `HashMap` (or alias) type token at `i`, walk backwards to the
/// declared binding/field name, handling `name: HashMap`, qualified paths
/// (`name: std::collections::HashMap`), and `let [mut] name = HashMap::new()`.
fn declared_name_before(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    // Step back over any `seg ::` path prefix.
    while j >= 3
        && toks[j - 1].is_punct(":")
        && toks[j - 2].is_punct(":")
        && toks[j - 3].kind == TokKind::Ident
    {
        j -= 3;
    }
    // Step back over reference/mutability sigils: `name: &mut HashMap<..>`.
    while j > 0 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let prev = &toks[j - 1];
    if prev.is_punct(":") && j >= 2 && !toks[j - 2].is_punct(":") {
        // `name : HashMap<..>` annotation (field or let).
        let cand = &toks[j - 2];
        if cand.kind == TokKind::Ident {
            return Some(cand.text.clone());
        }
    } else if prev.is_punct("=") && j >= 2 && toks[j - 2].kind == TokKind::Ident {
        // `let [mut] name = HashMap::new()` — require a `let` shortly before.
        let name = &toks[j - 2];
        let before = if j >= 3 { Some(&toks[j - 3]) } else { None };
        let let_tok = match before {
            Some(t) if t.is_ident("mut") && j >= 4 => Some(&toks[j - 4]),
            other => other,
        };
        if let_tok.is_some_and(|t| t.is_ident("let")) {
            return Some(name.text.clone());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 1: determinism
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

fn rule_determinism(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    let maps = hashmap_names(toks);
    let thread_ok = THREAD_WHITELIST.contains(&path);
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => out.push(Violation {
                rule: RULE_DETERMINISM,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "wall-clock type `{}` breaks simulation determinism; use `SimEnv::now()` virtual time",
                    t.text
                ),
            }),
            "thread"
                if !thread_ok
                    && i >= 3
                    && toks[i - 1].is_punct(":")
                    && toks[i - 2].is_punct(":")
                    && toks[i - 3].is_ident("std") =>
            {
                out.push(Violation {
                    rule: RULE_DETERMINISM,
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: "`std::thread` outside the whitelisted simnet engine spawn site; \
                              use `SimEnv::spawn` processes"
                        .to_string(),
                })
            }
            name if maps.contains(name) => {
                // `map.iter()`-family call on a HashMap-typed name.
                if toks.get(i + 1).is_some_and(|t| t.is_punct("."))
                    && toks
                        .get(i + 2)
                        .is_some_and(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
                {
                    out.push(Violation {
                        rule: RULE_DETERMINISM,
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "iteration over `HashMap`-typed `{}` has nondeterministic order; use BTreeMap",
                            t.text
                        ),
                    });
                }
                // `for x in map {` / `for x in &map {` direct iteration.
                if toks.get(i + 1).is_some_and(|t| t.is_punct("{")) && is_for_in_target(toks, i) {
                    out.push(Violation {
                        rule: RULE_DETERMINISM,
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`for` loop over `HashMap`-typed `{}` has nondeterministic order; use BTreeMap",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// True when token `i` is the loop target of a `for .. in [&[mut]] <i>`.
fn is_for_in_target(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    j > 0 && toks[j - 1].is_ident("in")
}

// ---------------------------------------------------------------------------
// Rule 2: bounded-decode
// ---------------------------------------------------------------------------

/// Identifiers allowed inside a "constant" size expression: primitive
/// casts plus SCREAMING_CASE constants.
fn size_expr_is_constant(args: &[&Tok]) -> bool {
    args.iter().all(|t| match t.kind {
        TokKind::Number => true,
        TokKind::Punct => true,
        TokKind::Ident => {
            matches!(
                t.text.as_str(),
                "as" | "usize"
                    | "u8"
                    | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
            ) || t
                .text
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        }
        _ => false,
    })
}

/// Collect tokens of one argument/expression starting at `i` until a `,`
/// or the closing delimiter at depth 0. Returns (arg tokens, index after).
fn arg_tokens(toks: &[Tok], mut i: usize, close: &str) -> (Vec<usize>, usize) {
    let mut depth = 0i32;
    let mut arg = Vec::new();
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 && t.text == close {
                        return (arg, i);
                    }
                    depth -= 1;
                }
                "," | ";" if depth == 0 => return (arg, i),
                _ => {}
            }
        }
        arg.push(i);
        i += 1;
    }
    (arg, i)
}

fn rule_bounded_decode(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    let fns = enclosing_fns(toks);
    let blessed = |i: usize| fns[i].as_deref().is_some_and(|f| f.starts_with("bounded_"));
    let mut push = |t: &Tok, what: &str| {
        out.push(Violation {
            rule: RULE_BOUNDED_DECODE,
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message: format!(
                "{what} sized from a non-constant (possibly wire-decoded) value; \
                 route through `xdr::bounded_alloc(len, limit)`"
            ),
        })
    };
    for i in 0..toks.len() {
        if mask[i] || blessed(i) {
            continue;
        }
        let t = &toks[i];
        // Vec::with_capacity(expr)
        if t.is_ident("Vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(":"))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("with_capacity"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct("("))
        {
            let (arg, _) = arg_tokens(toks, i + 5, ")");
            let args: Vec<&Tok> = arg.iter().map(|&k| &toks[k]).collect();
            if !size_expr_is_constant(&args) {
                push(t, "`Vec::with_capacity`");
            }
        }
        // vec![elem; len]
        if t.is_ident("vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
        {
            let (_elem, semi) = arg_tokens(toks, i + 3, "]");
            if toks.get(semi).is_some_and(|t| t.is_punct(";")) {
                let (len, _) = arg_tokens(toks, semi + 1, "]");
                let args: Vec<&Tok> = len.iter().map(|&k| &toks[k]).collect();
                if !size_expr_is_constant(&args) {
                    push(t, "`vec![elem; len]`");
                }
            }
        }
        // .resize(len, ..) / .reserve(len) / .with_capacity on a collection path
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("resize") || t.is_ident("reserve"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let (arg, _) = arg_tokens(toks, i + 3, ")");
            let args: Vec<&Tok> = arg.iter().map(|&k| &toks[k]).collect();
            if !size_expr_is_constant(&args) {
                push(&toks[i + 1], &format!("`.{}`", toks[i + 1].text));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: exact-accounting
// ---------------------------------------------------------------------------

fn rule_exact_accounting(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "saturating_sub" || t.text.starts_with("wrapping_") {
            out.push(Violation {
                rule: RULE_EXACT_ACCOUNTING,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` masks accounting bugs (PR 1 root cause); subtract exactly and \
                     assert the invariant instead",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: panic-free-dispatch
// ---------------------------------------------------------------------------

fn rule_panic_free(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        // .unwrap() / .expect(
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let m = &toks[i + 1];
            out.push(Violation {
                rule: RULE_PANIC_FREE,
                file: path.to_string(),
                line: m.line,
                col: m.col,
                message: format!(
                    "`.{}()` on the dispatch path; map the error to an RPC/NFS3 error reply",
                    m.text
                ),
            });
        }
        // panic!/unreachable!/todo!/unimplemented!
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            out.push(Violation {
                rule: RULE_PANIC_FREE,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}!` on the dispatch path; map the error to an RPC/NFS3 error reply",
                    t.text
                ),
            });
        }
        // expr[<int literal>] indexing
        if t.is_punct("[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"))
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Number)
            && toks.get(i + 2).is_some_and(|t| t.is_punct("]"))
        {
            // Exclude attribute position `#[..]` and array types `[u8; 4]`
            // (their `[` is not preceded by an expression token).
            out.push(Violation {
                rule: RULE_PANIC_FREE,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: "literal slice index can panic on short input; use `.get()` and map \
                          the failure to an error reply"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: lock-discipline
// ---------------------------------------------------------------------------

/// Methods from `simnet::sync`/`engine` that can suspend the calling
/// process (and therefore park the OS thread) when given a `SimEnv`.
const SUSPEND_METHODS: &[&str] = &["suspend", "sleep", "wait", "recv", "acquire", "join"];

fn rule_lock_discipline(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    #[derive(Debug)]
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
        if mask[i] {
            continue;
        }
        // New guard binding: `let [mut] name = <expr>.lock();`
        if t.is_ident("let") {
            let name_idx = if toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
                i + 2
            } else {
                i + 1
            };
            if let Some(name_tok) = toks.get(name_idx) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(end) = statement_end(toks, name_idx + 1) {
                        if end >= 4
                            && toks[end - 4].is_punct(".")
                            && (toks[end - 3].is_ident("lock")
                                || toks[end - 3].is_ident("read")
                                || toks[end - 3].is_ident("write"))
                            && toks[end - 2].is_punct("(")
                            && toks[end - 1].is_punct(")")
                        {
                            guards.push(Guard {
                                name: name_tok.text.clone(),
                                depth,
                                line: name_tok.line,
                            });
                        }
                    }
                }
            }
        }
        // Explicit drop(name) releases the guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            let name = &toks[i + 2].text;
            guards.retain(|g| &g.name != name);
        }
        if guards.is_empty() {
            continue;
        }
        // Suspension hazard A: `env.suspend(` / `env.sleep(` receiver calls.
        let env_recv = t.is_ident("env")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks.get(i + 2).is_some_and(|t| {
                t.kind == TokKind::Ident && matches!(t.text.as_str(), "suspend" | "sleep")
            });
        // Suspension hazard B: `.wait(..env..)` style — a suspend-set
        // method call that receives `env` as an argument.
        let env_arg = t.is_ident("env")
            && i > 0
            && (toks[i - 1].is_punct("(")
                || toks[i - 1].is_punct(",")
                || toks[i - 1].is_punct("&"))
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_punct(",") || t.is_punct(")"));
        let suspend_call = t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && SUSPEND_METHODS.contains(&t.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("));
        if env_recv || env_arg || suspend_call {
            let g = &guards[guards.len() - 1];
            out.push(Violation {
                rule: RULE_LOCK_DISCIPLINE,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "possible suspend/park while lock guard `{}` (bound line {}) is live; \
                     scope the guard in a block or drop() it before suspending",
                    g.name, g.line
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: bounded-fanout
// ---------------------------------------------------------------------------

fn rule_bounded_fanout(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    let mut depth = 0i32;
    // Brace depths of currently-open loop bodies.
    let mut loop_bodies: Vec<i32> = Vec::new();
    // A loop keyword was seen; the next body-opening `{` belongs to it.
    let mut pending_loop = false;
    let mut paren = 0i32;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" => {
                    depth += 1;
                    if pending_loop && paren == 0 {
                        loop_bodies.push(depth);
                        pending_loop = false;
                    }
                }
                "}" => {
                    depth -= 1;
                    loop_bodies.retain(|d| *d <= depth);
                }
                _ => {}
            }
        }
        if mask[i] {
            continue;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            pending_loop = true;
        }
        // `.spawn(` inside a loop body: per-item process fan-out.
        if !loop_bodies.is_empty()
            && t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("spawn"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let m = &toks[i + 1];
            out.push(Violation {
                rule: RULE_BOUNDED_FANOUT,
                file: path.to_string(),
                line: m.line,
                col: m.col,
                message: "process spawn inside a loop is unbounded RPC fan-out; route the \
                          jobs through `gvfs::transfer::run_windowed` (bounded window)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: deadline-required
// ---------------------------------------------------------------------------

fn rule_deadline(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("call"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        // `self.call(..)` is the blessed wrapper pattern: a typed helper
        // (`Nfs3Client::call`, the dispatch trait's `call`) whose own
        // body routes through `call_dl`. Any other receiver —
        // `rpc.call(`, `client.call(`, `.with_cred(..).call(` — is
        // treated as a raw RPC stub call. Documented over-approximation;
        // bridge intentional exceptions with a waiver.
        if i > 0 && toks[i - 1].is_ident("self") {
            continue;
        }
        let m = &toks[i + 1];
        out.push(Violation {
            rule: RULE_DEADLINE,
            file: path.to_string(),
            line: m.line,
            col: m.col,
            message: "raw `.call(` blocks forever when the reply is lost; use `.call_dl(` \
                      so the stub's deadline/retransmission policy applies (identical \
                      behaviour when no policy is attached)"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 8: canonical-digest
// ---------------------------------------------------------------------------

/// Identifiers that signal an ad-hoc content hash implementation.
const ADHOC_HASH_IDENTS: &[&str] = &[
    "fnv1a",
    "DefaultHasher",
    "SipHasher",
    "Hasher",
    "md5",
    "sha1",
    "sha256",
    "crc32",
];

/// FNV-1a offset basis and prime — the classic seeds of a hand-rolled
/// content hash — normalized (lowercase, underscores stripped).
const FNV_LITERALS: &[&str] = &["0xcbf29ce484222325", "0x100000001b3"];

/// Lowercase a number literal, strip `_` separators and any trailing
/// integer type suffix, so `0xCBf2_9CE4_8422_2325u64` compares equal to
/// its canonical spelling.
fn normalized_number(text: &str) -> String {
    let mut n: String = text
        .chars()
        .filter(|c| *c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect();
    for suffix in [
        "usize", "u128", "u64", "u32", "u16", "u8", "isize", "i128", "i64", "i32", "i16", "i8",
    ] {
        if let Some(stripped) = n.strip_suffix(suffix) {
            n = stripped.to_string();
            break;
        }
    }
    n
}

fn rule_canonical_digest(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        match t.kind {
            TokKind::Ident if ADHOC_HASH_IDENTS.contains(&t.text.as_str()) => {
                out.push(Violation {
                    rule: RULE_CANONICAL_DIGEST,
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "ad-hoc hasher `{}` on a gvfs data path; all content hashing goes \
                         through `gvfs::digest::digest` so CAS keys, channel recipes and \
                         flush acks agree on one digest",
                        t.text
                    ),
                });
            }
            TokKind::Number if FNV_LITERALS.contains(&normalized_number(&t.text).as_str()) => {
                out.push(Violation {
                    rule: RULE_CANONICAL_DIGEST,
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "FNV constant `{}` signals a hand-rolled content hash; use \
                         `gvfs::digest::digest` instead",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 9: allocation-free-record
// ---------------------------------------------------------------------------

/// Method names whose call (`.name(`) allocates or may reallocate.
const ALLOC_METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "with_capacity",
    "push",
    "push_str",
    "insert",
    "extend",
];

/// Type paths whose associated functions (`Name::…`) hand out heap
/// storage.
const ALLOC_TYPES: &[&str] = &["String", "Vec", "VecDeque", "Box", "BTreeMap", "HashMap"];

/// If the token at `k` is an allocation inside a record body, name it.
fn alloc_token(toks: &[Tok], k: usize) -> Option<String> {
    let t = &toks[k];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |s: &str| toks.get(k + 1).is_some_and(|n| n.is_punct(s));
    let prev_is = |s: &str| k > 0 && toks[k - 1].is_punct(s);
    if matches!(t.text.as_str(), "format" | "vec") && next_is("!") {
        return Some(format!("{}!", t.text));
    }
    if ALLOC_TYPES.contains(&t.text.as_str()) && next_is("::") {
        return Some(format!("{}::", t.text));
    }
    if ALLOC_METHODS.contains(&t.text.as_str()) && prev_is(".") && next_is("(") {
        return Some(format!(".{}()", t.text));
    }
    None
}

/// The telemetry `record*` methods are the per-sample hot path: every
/// simulated I/O completion, RPC round-trip and clone latency sample
/// lands in one. They must touch atomics only — no heap traffic. The
/// rule scans each `fn record*` body for allocating macros, allocating
/// associated functions and (re)allocating method calls.
fn rule_alloc_free_record(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < toks.len() {
        let name_ok = toks.get(i + 1).is_some_and(|n| {
            n.kind == TokKind::Ident && (n.text == "record" || n.text.starts_with("record_"))
        });
        if mask[i] || !toks[i].is_ident("fn") || !name_ok {
            i += 1;
            continue;
        }
        let fn_name = toks[i + 1].text.clone();
        // Find the body's opening `{` (a `;` first means a bodiless
        // trait-method declaration).
        let mut j = i + 2;
        let mut paren = 0i32;
        while j < toks.len() {
            let p = &toks[j];
            if p.kind == TokKind::Punct {
                match p.text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    ";" if paren == 0 => break,
                    "{" if paren == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("{") {
            i = j;
            continue;
        }
        // Walk the body to its matching `}`, flagging allocations.
        let mut depth = 0i32;
        let mut k = j;
        while k < toks.len() {
            let p = &toks[k];
            if p.kind == TokKind::Punct {
                match p.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !mask[k] {
                if let Some(what) = alloc_token(toks, k) {
                    out.push(Violation {
                        rule: RULE_ALLOC_FREE_RECORD,
                        file: path.to_string(),
                        line: p.line,
                        col: p.col,
                        message: format!(
                            "`{what}` allocates inside `{fn_name}`; telemetry record paths \
                             run once per simulated sample and must stay allocation-free \
                             (atomics into preallocated buckets only)"
                        ),
                    });
                }
            }
            k += 1;
        }
        i = k + 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 10: cas-eviction
// ---------------------------------------------------------------------------

/// Entry-dropping methods that, invoked on a content store outside
/// cas.rs, constitute direct eviction (any `evict*` name is flagged
/// too).
const CAS_EVICTION_METHODS: &[&str] = &["remove", "clear", "drain", "retain", "truncate", "pop"];

/// Collect names bound to a `ContentStore` in this file — fields or
/// locals annotated `name: [&][Arc<]ContentStore`, plus
/// `let [mut] name = ContentStore::new(..)` bindings — and the
/// conventional receiver name `cas` itself. Lexical over-approximation
/// in the style of `hashmap_names`; bridge intentional exceptions with
/// a waiver.
fn cas_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    names.insert("cas".to_string());
    for i in 0..toks.len() {
        if !toks[i].is_ident("ContentStore") {
            continue;
        }
        // Step back over wrapper generics: `Arc<`, `Option<Arc<`, …
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("<") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if let Some(name) = declared_name_before(toks, j) {
            names.insert(name);
        }
    }
    names
}

/// The CAS evicts itself: `ContentStore::insert` is the one eviction
/// point, behind the pin check. Any other gvfs layer calling an
/// entry-dropping method on a content store bypasses the pin ledger —
/// a recipe held by a live reference file could silently lose the bytes
/// its digests resolve through.
fn rule_cas_eviction(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Violation>) {
    let stores = cas_names(toks);
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !stores.contains(&t.text) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct(".")) {
            continue;
        }
        let Some(m) = toks.get(i + 2) else { continue };
        let evicting = m.kind == TokKind::Ident
            && (m.text.starts_with("evict") || CAS_EVICTION_METHODS.contains(&m.text.as_str()));
        if evicting && toks.get(i + 3).is_some_and(|t| t.is_punct("(")) {
            out.push(Violation {
                rule: RULE_CAS_EVICTION,
                file: path.to_string(),
                line: m.line,
                col: m.col,
                message: format!(
                    "`.{}()` on content store `{}` evicts outside cas.rs; eviction lives \
                     behind the pin ledger in `ContentStore::insert` — dropping CAS entries \
                     directly can orphan digests a live reference file still resolves \
                     through, and blinds `cas.pin_blocked_evictions`",
                    m.text, t.text
                ),
            });
        }
    }
}

/// Index of the `;` ending the statement starting at `i`, tracking nested
/// delimiters. Returns None at EOF. Block expressions (`= { .. };`) are
/// traversed, which is fine: a `.lock()` suffix can't end such a statement.
fn statement_end(toks: &[Tok], mut i: usize) -> Option<usize> {
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return Some(i),
                _ => {}
            }
            if depth < 0 {
                return None; // ran off the enclosing block
            }
        }
        i += 1;
    }
    None
}
