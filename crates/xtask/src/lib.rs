//! Workspace maintenance tasks for the GVFS reproduction.
//!
//! Two tasks: `lint`, an invariant-lint engine enforcing the project
//! rules that PR 1 fixed by hand (determinism, bounded decode, exact
//! accounting, panic-free dispatch, lock discipline); and `lockgraph`,
//! a lock-order analysis pass that tracks live guards through scopes,
//! builds the cross-crate lock-order graph, and flags cycles, guards
//! held across suspend points, and double acquisition. See DESIGN.md
//! §5.2 / §5.7 and `lint-baseline.txt` / `lockgraph-baseline.txt` for
//! the grandfathering workflow.

pub mod json;
pub mod lexer;
pub mod lint;
pub mod lockgraph;
pub mod rules;
