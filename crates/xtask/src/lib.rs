//! Workspace maintenance tasks for the GVFS reproduction.
//!
//! The only task so far is `lint`: an invariant-lint engine enforcing the
//! project rules that PR 1 fixed by hand (determinism, bounded decode,
//! exact accounting, panic-free dispatch, lock discipline). See
//! DESIGN.md §5.2 for the catalog and `lint-baseline.txt` for the
//! grandfathering workflow.

pub mod json;
pub mod lexer;
pub mod lint;
pub mod rules;
