//! Bad: lock guards held across suspending calls. In the cooperative
//! simnet scheduler another process must run to release the condition,
//! so parking with the guard live deadlocks the whole simulation.
pub fn drain(env: &Env, state: &State) {
    let mut st = state.inner.lock();
    st.pending += 1;
    env.sleep(Duration::from_millis(1));
    st.pending -= 1;
}

pub fn wait_for(env: &Env, state: &State, sig: &Signal) {
    let st = state.inner.lock();
    let _n = st.pending;
    sig.wait(env);
}
