//! Good: guards are block-scoped or dropped before anything suspends.
pub fn drain(env: &Env, state: &State) {
    {
        let mut st = state.inner.lock();
        st.pending += 1;
    }
    env.sleep(Duration::from_millis(1));
    let n = {
        let st = state.inner.lock();
        st.pending
    };
    let _ = n;
}

pub fn drop_early(env: &Env, state: &State) {
    let st = state.inner.lock();
    let n = st.pending;
    drop(st);
    env.sleep(Duration::from_micros(n));
}
