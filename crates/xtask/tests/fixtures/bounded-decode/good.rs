//! Good: wire lengths flow through a `bounded_*` blessed sink; other
//! allocations are sized by compile-time constants.
const HEADER: usize = 12;

fn bounded_alloc(len: usize, limit: usize) -> Result<Vec<u8>, ()> {
    if len > limit {
        return Err(());
    }
    Ok(Vec::with_capacity(len.min(4096)))
}

pub fn decode_blob(buf: &[u8], n: usize) -> Result<Vec<u8>, ()> {
    let mut out = bounded_alloc(n, 1 << 16)?;
    let zeros = vec![0u8; HEADER];
    out.extend_from_slice(&zeros);
    out.extend_from_slice(&buf[..HEADER.min(buf.len())]);
    let mut scratch: Vec<u8> = Vec::with_capacity(64);
    scratch.resize(HEADER, 0);
    drop(scratch);
    Ok(out)
}
