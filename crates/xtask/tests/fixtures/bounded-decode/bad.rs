//! Bad: allocations sized straight from wire-decoded lengths — a few
//! header bytes can demand gigabytes before any data is checked.
pub fn decode_blob(buf: &[u8]) -> Vec<u8> {
    let n = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let mut out = Vec::with_capacity(n);
    out.resize(n, 0);
    let scratch = vec![0u8; n];
    out.extend_from_slice(&scratch);
    out
}
