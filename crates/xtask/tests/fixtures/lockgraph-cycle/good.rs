//! Good: both paths acquire routing before sessions — one documented
//! order, so the graph has an edge but no cycle.

pub struct Tier {
    routing: Mutex<Routing>,
    sessions: Mutex<Sessions>,
}

impl Tier {
    pub fn rebalance(&self) {
        let r = self.routing.lock();
        let s = self.sessions.lock();
        s.move_all(&r);
    }

    pub fn evict(&self) {
        let r = self.routing.lock();
        let s = self.sessions.lock();
        r.forget(&s);
    }
}
