//! Bad: two code paths acquire the same pair of locks in opposite
//! orders — a classic AB/BA deadlock the lock-order graph must flag.

pub struct Tier {
    routing: Mutex<Routing>,
    sessions: Mutex<Sessions>,
}

impl Tier {
    pub fn rebalance(&self) {
        let r = self.routing.lock();
        let s = self.sessions.lock();
        s.move_all(&r);
    }

    pub fn evict(&self) {
        let s = self.sessions.lock();
        let r = self.routing.lock();
        r.forget(&s);
    }
}
