//! Good: fallible decode maps to an error status; unwraps live only in
//! test code, which the lint exempts.
pub fn dispatch(args: &[u8]) -> Result<Vec<u8>, u32> {
    let first = *args.first().ok_or(1u32)?;
    let v = decode(args).ok_or(2u32)?;
    Ok(vec![first, v as u8])
}

fn decode(args: &[u8]) -> Option<u32> {
    args.get(1).map(|b| *b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let out = dispatch(&[7, 9]).unwrap();
        assert_eq!(out[0], 7);
    }
}
