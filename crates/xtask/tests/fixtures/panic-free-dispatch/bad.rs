//! Bad: panicking constructs on the request dispatch path — hostile
//! bytes must produce error replies, never take the proxy down.
pub fn dispatch(args: &[u8]) -> Vec<u8> {
    let first = args[0];
    let parsed: Option<u32> = decode(args);
    let v = parsed.unwrap();
    let w = decode(args).expect("decoded twice");
    if v > 100 {
        panic!("bad value");
    }
    vec![first, v as u8, w as u8]
}

fn decode(args: &[u8]) -> Option<u32> {
    args.get(1).map(|b| *b as u32)
}
