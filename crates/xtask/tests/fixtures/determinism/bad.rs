//! Bad: wall-clock time, std::thread, and HashMap iteration order all
//! leak nondeterminism into a simulation that must replay bit-identically.
use std::collections::HashMap;
use std::time::Instant;

pub struct Stats {
    counts: HashMap<String, u64>,
}

impl Stats {
    pub fn dump(&self) -> Vec<String> {
        let started = Instant::now();
        std::thread::yield_now();
        let mut out = Vec::new();
        for (k, v) in self.counts.iter() {
            out.push(format!("{k}={v}"));
        }
        let _ = started;
        out
    }
}
