//! Good: BTreeMap iteration is ordered; virtual time comes from the
//! simulation environment, and HashMap is fine when never iterated.
use std::collections::{BTreeMap, HashMap};

pub struct Stats {
    counts: BTreeMap<String, u64>,
    lookup_only: HashMap<u64, u64>,
}

impl Stats {
    pub fn dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, v) in self.counts.iter() {
            out.push(format!("{k}={v}"));
        }
        out
    }

    pub fn probe(&self, key: u64) -> Option<u64> {
        self.lookup_only.get(&key).copied()
    }
}
