//! Good: the first guard is dropped (or scoped out) before the lock is
//! taken again.

impl Cache {
    pub fn promote(&self, key: Key) {
        let hit = { self.inner.lock().contains(key) };
        if hit {
            let again = self.inner.lock();
            again.touch(key);
        }
    }

    pub fn demote(&self, key: Key) {
        let inner = self.inner.lock();
        let present = inner.contains(key);
        drop(inner);
        if present {
            self.inner.lock().evict(key);
        }
    }
}
