//! Bad: the same lock class acquired while its guard is still live —
//! with a non-reentrant mutex this self-deadlocks at runtime.

impl Cache {
    pub fn promote(&self, key: Key) {
        let inner = self.inner.lock();
        if inner.contains(key) {
            // Deadlock: `inner` is still held here.
            let again = self.inner.lock();
            again.touch(key);
        }
    }
}
