//! Bad: a gossip digest inventory decoded with its allocation sized
//! straight from the wire count — a sibling shard (or anything that can
//! reach the shard's LAN listener) can demand gigabytes with four bytes.
pub struct Digest(pub u64, pub u64);

pub fn decode_gossip(bytes: &[u8]) -> Option<(u32, Vec<Digest>)> {
    let sender = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let n = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let mut digests = Vec::with_capacity(n);
    for i in 0..n {
        let at = 8 + i * 16;
        let d0 = u64::from_be_bytes(bytes[at..at + 8].try_into().ok()?);
        let d1 = u64::from_be_bytes(bytes[at + 8..at + 16].try_into().ok()?);
        digests.push(Digest(d0, d1));
    }
    Some((sender, digests))
}
