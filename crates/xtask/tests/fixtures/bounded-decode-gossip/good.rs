//! Good: the wire count flows through the blessed `bounded_alloc` sink,
//! capped by the protocol's digest-inventory bound, before a single
//! element is reserved.
pub struct Digest(pub u64, pub u64);

pub const MAX_GOSSIP_DIGESTS: usize = 1024;

fn bounded_alloc<T>(len: usize, limit: usize) -> Result<Vec<T>, ()> {
    if len > limit {
        return Err(());
    }
    Ok(Vec::with_capacity(len.min(4096)))
}

pub fn decode_gossip(bytes: &[u8]) -> Option<(u32, Vec<Digest>)> {
    let sender = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let n = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let mut digests: Vec<Digest> = bounded_alloc(n, MAX_GOSSIP_DIGESTS).ok()?;
    for i in 0..n {
        let at = 8 + i * 16;
        let d0 = u64::from_be_bytes(bytes[at..at + 8].try_into().ok()?);
        let d1 = u64::from_be_bytes(bytes[at + 8..at + 16].try_into().ok()?);
        digests.push(Digest(d0, d1));
    }
    Some((sender, digests))
}
