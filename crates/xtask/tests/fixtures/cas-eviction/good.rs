//! Good: the store trims itself — insertion is the one eviction point,
//! behind the pin check — and callers express chunk lifetime through
//! the pin/unpin API instead of dropping entries directly.

use std::sync::Arc;

use crate::cas::ContentStore;
use crate::digest::Digest;

pub fn install(cas: &Arc<ContentStore>, chunk: &[u8]) -> Digest {
    cas.insert_pinned(chunk)
}

pub fn release(cas: &Arc<ContentStore>, recipe: &[Digest]) {
    for d in recipe {
        cas.unpin(d);
    }
}

pub fn resident(store: &ContentStore, d: &Digest) -> bool {
    store.contains(d)
}
