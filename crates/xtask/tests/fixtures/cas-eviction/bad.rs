//! Bad: layers trimming the content store behind the CAS's back — an
//! ad-hoc sweep and a "free some room" remove bypass the pin ledger,
//! so a digest a live reference file still resolves through can vanish
//! while `cas.pin_blocked_evictions` reports nothing.

use std::sync::Arc;

use crate::cas::ContentStore;
use crate::digest::Digest;

pub fn make_room(cas: &Arc<ContentStore>, victims: &[Digest]) {
    for d in victims {
        cas.remove(d);
    }
}

pub fn reset(store: Arc<ContentStore>) {
    store.clear();
}

pub fn sweep(blob_store: &ContentStore, budget: u64) {
    blob_store.evict_to_fit(budget);
}
