//! Good: fan-out flows through the transfer engine, which caps worker
//! processes at `min(window, jobs)`; a single helper spawn outside any
//! loop is also fine.
pub fn fetch_all(env: &Env, blocks: Vec<u64>, window: usize) {
    let out = crate::transfer::run_windowed(env, "fetch", window, blocks, None, |env, b| {
        Some(fetch_one(env, b))
    });
    let _ = out;
}

pub fn flush_detached(env: &Env, files: Vec<u64>) {
    env.spawn("flush-files", move |env| {
        for f in files {
            upload(&env, f);
        }
    });
}
