//! Bad: one process per job spawned from a loop — in-flight RPC count
//! scales with the job list, flooding the simulated WAN instead of
//! pipelining behind a bounded window.
pub fn fetch_all(env: &Env, blocks: Vec<u64>) {
    let mut joins = Vec::new();
    for b in blocks {
        joins.push(env.spawn("fetch", move |env| {
            fetch_one(&env, b);
        }));
    }
    for j in joins {
        j.join(env);
    }
}

pub fn flush_all(env: &Env, files: Vec<u64>) {
    let mut i = 0;
    while i < files.len() {
        let f = files[i];
        env.spawn("flush", move |env| upload(&env, f));
        i += 1;
    }
}
