//! Good: exact arithmetic with the invariant asserted — drift fails loud.
pub struct Ledger {
    bytes: u64,
}

impl Ledger {
    pub fn debit(&mut self, n: u64) {
        debug_assert!(self.bytes >= n, "byte accounting underflow");
        self.bytes -= n;
    }

    pub fn credit(&mut self, n: u64) {
        self.bytes += n;
    }
}
