//! Bad: saturating/wrapping arithmetic in byte accounting clamps the
//! moment the books go wrong, hiding the drift instead of surfacing it.
pub struct Ledger {
    bytes: u64,
}

impl Ledger {
    pub fn debit(&mut self, n: u64) {
        self.bytes = self.bytes.saturating_sub(n);
    }

    pub fn credit(&mut self, n: u64) {
        self.bytes = self.bytes.wrapping_add(n);
    }
}
