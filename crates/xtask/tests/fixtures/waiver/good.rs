//! Good: a well-formed waiver, with a reason, covering a real violation.
pub struct Mixer {
    state: u64,
}

impl Mixer {
    pub fn mix(&mut self, n: u64) {
        // lint:allow(exact-accounting): deliberate wraparound in a hash, not byte accounting
        self.state = self.state.wrapping_mul(n | 1);
    }
}
