//! Bad: a waiver without a reason, and a waiver that suppresses nothing.
pub fn noop(x: u64) -> u64 {
    // lint:allow(determinism)
    let y = x + 1;
    // lint:allow(exact-accounting): nothing on the next line violates that rule
    y + 1
}
