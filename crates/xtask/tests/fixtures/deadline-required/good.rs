//! Good: RPCs go through `call_dl`, which applies the stub's
//! deadline/retransmission policy (and is byte-identical to `call` when
//! no policy is attached). A typed wrapper named `call` whose body uses
//! `call_dl` is the blessed pattern: its `self.call(..)` callers are
//! exempt.
pub fn fetch(env: &Env, rpc: &RpcClient) -> Option<Vec<u8>> {
    rpc.call_dl(env, NFS_PROGRAM, NFS_V3, proc3::READ, Vec::new()).ok()
}

impl Nfs3Client {
    fn call(&self, env: &Env, proc: u32, args: Vec<u8>) -> NfsResult<Vec<u8>> {
        self.rpc.call_dl(env, NFS_PROGRAM, NFS_V3, proc, args)
    }

    pub fn null(&self, env: &Env) -> NfsResult<()> {
        self.call(env, proc3::NULL, Vec::new()).map(|_| ())
    }
}
