//! Bad: raw RPC calls without a deadline — each blocks its process
//! forever if the WAN drops the reply.
pub fn fetch(env: &Env, rpc: &RpcClient) -> Option<Vec<u8>> {
    rpc.call(env, NFS_PROGRAM, NFS_V3, proc3::READ, Vec::new()).ok()
}

pub fn forward(env: &Env, upstream: &RpcClient, cred: &OpaqueAuth) -> Option<Vec<u8>> {
    upstream
        .with_cred(cred.clone())
        .call(env, NFS_PROGRAM, NFS_V3, proc3::WRITE, Vec::new())
        .ok()
}
