//! Bad: a waiver whose line triggers no lockgraph violation — stale
//! suppressions are themselves violations, same as in the lint pass.

impl Cache {
    pub fn get(&self, key: Key) {
        // lint:allow(lock-double-acquire): nothing here double-acquires
        let inner = self.inner.lock();
        inner.get(key);
    }
}
