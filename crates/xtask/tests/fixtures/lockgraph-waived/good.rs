//! Good: a waived false positive. Lock classes are named by receiver
//! segment within a file, so `warm.state` and `cold.state` conflate to
//! one class and look like a double acquisition; the waiver records why
//! that is safe here.

impl Mover {
    pub fn migrate(&self, key: Key) {
        let w = self.warm.state.lock();
        // lint:allow(lock-double-acquire): warm.state and cold.state are distinct mutexes conflated by class naming; acquisition order warm-then-cold is fixed
        let c = self.cold.state.lock();
        c.insert(key, w.remove(key));
    }
}
