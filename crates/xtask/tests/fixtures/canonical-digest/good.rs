//! Good: content keys come from the one canonical digest, so every
//! layer (CAS, recipes, flush acks) agrees on what "same bytes" means.

use crate::digest::{digest, Digest};

pub fn content_key(bytes: &[u8]) -> Digest {
    digest(bytes)
}

pub fn keys_match(a: &[u8], b: &[u8]) -> bool {
    digest(a) == digest(b)
}
