//! Bad: a hand-rolled FNV-1a hash and a std `Hasher` minting content
//! keys beside the canonical digest — CAS entries keyed here can never
//! match the digests carried by channel recipes or flush acks.

pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

pub fn content_key(data: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    data.hash(&mut h);
    h.finish()
}
