//! Good: every guard is released before the process suspends — the
//! fetch result is computed first, the guard scoped to a block.

impl Proxy {
    pub fn refill(&self, env: &Env, key: Key) {
        let block = fetch_block(env, key);
        self.state.lock().insert(key, block);
    }

    pub fn resolve(&self, env: &Env, path: &str) {
        let found = { self.state.lock().find(path) };
        match found {
            Some(_) => env.sleep(MS),
            None => {}
        }
    }
}
