//! Bad: guards held across simnet suspend points, in shapes the old
//! per-statement lock-discipline rule cannot see.

impl Proxy {
    // Transient guard: no let binding at all, the temporary guard from
    // `.lock()` lives until the end of the statement — across the
    // blocking fetch that takes `env`.
    pub fn refill(&self, env: &Env, key: Key) {
        self.state.lock().insert(key, fetch_block(env, key));
    }

    // Match scrutinee: the guard from `.lock()` lives through the whole
    // match block, including the arm that sleeps.
    pub fn resolve(&self, env: &Env, path: &str) {
        match self.state.lock().find(path) {
            Some(_) => env.sleep(MS),
            None => {}
        }
    }
}
