//! Bad: the per-sample record path heap-allocates — a label string and a
//! growable sample vector — so every simulated I/O completion pays
//! malloc, and a fleet run's percentile sketch becomes the bottleneck.
pub struct Sketch {
    samples: Vec<u64>,
    label: Option<String>,
}

impl Sketch {
    pub fn record_ns(&mut self, ns: u64) {
        self.samples.push(ns);
        self.label = Some(format!("sample@{ns}"));
    }
}
