//! Good: the record path touches atomics in preallocated buckets only;
//! all allocation happened at construction time.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Sketch {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(63)
}

impl Sketch {
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }
}
