//! Fixture-based self-tests for the lockgraph pass: each bad fixture
//! must trigger exactly its rule (in-process and via the CLI exit
//! code), each good fixture must pass clean, and the real tree must
//! stay clean against the committed (empty) baseline.

use std::path::PathBuf;
use std::process::Command;
use xtask::lockgraph::analyze_sources;

/// (rule, path label that gives the fixture a lock-class prefix, bad, good)
fn cases() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        (
            "lock-order-cycle",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/lockgraph-cycle/bad.rs"),
            include_str!("fixtures/lockgraph-cycle/good.rs"),
        ),
        (
            "lock-guard-suspend",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/lockgraph-guard-suspend/bad.rs"),
            include_str!("fixtures/lockgraph-guard-suspend/good.rs"),
        ),
        (
            "lock-double-acquire",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/lockgraph-double/bad.rs"),
            include_str!("fixtures/lockgraph-double/good.rs"),
        ),
        (
            "waiver",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/lockgraph-waived/bad.rs"),
            include_str!("fixtures/lockgraph-waived/good.rs"),
        ),
    ]
}

fn analyze(label: &str, src: &str) -> xtask::lockgraph::Analysis {
    analyze_sources(&[(label.to_string(), src.to_string())])
}

#[test]
fn bad_fixtures_trigger_exactly_their_rule() {
    for (rule, label, bad, _) in cases() {
        let a = analyze(label, bad);
        assert!(
            !a.violations.is_empty(),
            "{rule}: bad fixture triggered no violations"
        );
        for v in &a.violations {
            assert_eq!(
                v.rule, rule,
                "{rule}: bad fixture triggered foreign rule `{}` at line {}: {}",
                v.rule, v.line, v.message
            );
        }
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for (rule, label, _, good) in cases() {
        let a = analyze(label, good);
        assert!(
            a.violations.is_empty(),
            "{rule}: good fixture raised {:?}",
            a.violations
        );
    }
}

#[test]
fn waived_good_fixture_actually_exercises_the_waiver() {
    // The "clean" verdict above must come from the waiver being used,
    // not from the conflated double-acquire never firing.
    let (_, label, _, good) = cases().remove(3);
    let a = analyze(label, good);
    assert_eq!(a.waivers_declared, 1);
    assert_eq!(a.waivers_used, 1);
}

#[test]
fn cycle_fixture_marks_both_edges() {
    let (_, label, bad, good) = cases().remove(0);
    let a = analyze(label, bad);
    assert_eq!(a.cycle_edges.len(), 2, "AB and BA edges both in the cycle");
    let a = analyze(label, good);
    assert!(a.cycle_edges.is_empty());
    assert_eq!(a.edges.len(), 1, "consistent order still builds the edge");
}

/// Build a one-file synthetic workspace at `root` whose single source
/// file sits at the scope label's path.
fn write_tree(root: &PathBuf, label: &str, src: &str) {
    let _ = std::fs::remove_dir_all(root);
    let file = root.join(label);
    std::fs::create_dir_all(file.parent().expect("label has a parent")).expect("mkdir");
    std::fs::write(&file, src).expect("write fixture");
}

fn run_cli(root: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lockgraph")
        .arg("--root")
        .arg(root)
        .arg("--baseline")
        .arg(root.join("lockgraph-baseline.txt")) // absent: empty baseline
        .output()
        .expect("run xtask lockgraph")
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for (rule, label, bad, _) in cases() {
        let root = std::env::temp_dir().join(format!("xtask-lockgraph-bad-{rule}"));
        write_tree(&root, label, bad);
        let out = run_cli(&root);
        assert!(
            !out.status.success(),
            "{rule}: CLI exited 0 on a bad fixture\nstdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn cli_exits_zero_on_every_good_fixture() {
    for (rule, label, _, good) in cases() {
        let root = std::env::temp_dir().join(format!("xtask-lockgraph-good-{rule}"));
        write_tree(&root, label, good);
        let out = run_cli(&root);
        assert!(
            out.status.success(),
            "{rule}: CLI exited nonzero on a good fixture\nstdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn json_and_dot_reports_are_written() {
    let (rule, label, bad, _) = cases().remove(0);
    let root = std::env::temp_dir().join(format!("xtask-lockgraph-json-{rule}"));
    write_tree(&root, label, bad);
    let json_path = root.join("reports/lockgraph.json");
    let dot_path = root.join("reports/lockgraph.dot");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lockgraph")
        .arg("--root")
        .arg(&root)
        .arg("--json")
        .arg(&json_path)
        .arg("--dot")
        .arg(&dot_path)
        .output()
        .expect("run xtask lockgraph");
    assert!(!out.status.success());
    let text = std::fs::read_to_string(&json_path).expect("json written even on failure");
    assert!(text.starts_with("{\n  \"schema\": \"gvfs.lockgraph.v1\",\n"));
    assert!(text.contains("\"rule\": \"lock-order-cycle\""));
    assert!(text.contains("\"clean\": false"));
    assert!(text.contains("\"in_cycle\": true"));
    let dot = std::fs::read_to_string(&dot_path).expect("dot written even on failure");
    assert!(dot.starts_with("// Lock-order graph"));
    assert!(dot.contains("color=red"), "cycle edges highlighted:\n{dot}");
}

#[test]
fn real_tree_is_clean_against_committed_baseline() {
    // The acceptance bar: the pass runs on the actual workspace with the
    // committed (empty) lockgraph-baseline.txt and exits 0.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lockgraph")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run xtask lockgraph");
    assert!(
        out.status.success(),
        "lockgraph failed on the real tree:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
