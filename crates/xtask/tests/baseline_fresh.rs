//! The committed baseline must match a fresh run: no non-baselined
//! violations in the tree (exit 0) and no stale baseline entries. This is
//! the same invocation CI gates merges on.

use std::path::Path;
use std::process::Command;

#[test]
fn committed_baseline_matches_fresh_run() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run xtask lint");
    assert!(
        out.status.success(),
        "lint found non-baselined violations or stale baseline entries:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
