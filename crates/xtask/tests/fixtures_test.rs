//! Fixture-based self-tests for the lint engine: each bad fixture must
//! trigger exactly its rule (in-process and via the CLI exit code), and
//! each good fixture must pass clean.

use std::path::PathBuf;
use std::process::Command;
use xtask::lint::lint_source;

/// (rule, path label that puts the fixture in the rule's scope, bad, good)
fn cases() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        (
            "determinism",
            "crates/workloads/src/fixture.rs",
            include_str!("fixtures/determinism/bad.rs"),
            include_str!("fixtures/determinism/good.rs"),
        ),
        (
            "bounded-decode",
            "crates/xdr/src/fixture.rs",
            include_str!("fixtures/bounded-decode/bad.rs"),
            include_str!("fixtures/bounded-decode/good.rs"),
        ),
        (
            // Second bounded-decode pair: the gossip digest-inventory codec
            // (PR 10) pulled `crates/gvfs/src/channel.rs` into the rule's
            // scope, so pin the shape of a compliant gossip decode here.
            "bounded-decode",
            "crates/gvfs/src/channel.rs",
            include_str!("fixtures/bounded-decode-gossip/bad.rs"),
            include_str!("fixtures/bounded-decode-gossip/good.rs"),
        ),
        (
            "exact-accounting",
            "crates/gvfs/src/file_cache.rs",
            include_str!("fixtures/exact-accounting/bad.rs"),
            include_str!("fixtures/exact-accounting/good.rs"),
        ),
        (
            "panic-free-dispatch",
            "crates/nfs3/src/server.rs",
            include_str!("fixtures/panic-free-dispatch/bad.rs"),
            include_str!("fixtures/panic-free-dispatch/good.rs"),
        ),
        (
            "lock-discipline",
            "crates/gvfs/src/channel.rs",
            include_str!("fixtures/lock-discipline/bad.rs"),
            include_str!("fixtures/lock-discipline/good.rs"),
        ),
        (
            "bounded-fanout",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/bounded-fanout/bad.rs"),
            include_str!("fixtures/bounded-fanout/good.rs"),
        ),
        (
            "deadline-required",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/deadline-required/bad.rs"),
            include_str!("fixtures/deadline-required/good.rs"),
        ),
        (
            "canonical-digest",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/canonical-digest/bad.rs"),
            include_str!("fixtures/canonical-digest/good.rs"),
        ),
        (
            "allocation-free-record",
            "crates/simnet/src/telemetry.rs",
            include_str!("fixtures/allocation-free-record/bad.rs"),
            include_str!("fixtures/allocation-free-record/good.rs"),
        ),
        (
            "cas-eviction",
            "crates/gvfs/src/fixture.rs",
            include_str!("fixtures/cas-eviction/bad.rs"),
            include_str!("fixtures/cas-eviction/good.rs"),
        ),
        (
            "waiver",
            "crates/gvfs/src/file_cache.rs",
            include_str!("fixtures/waiver/bad.rs"),
            include_str!("fixtures/waiver/good.rs"),
        ),
    ]
}

#[test]
fn bad_fixtures_trigger_exactly_their_rule() {
    for (rule, label, bad, _) in cases() {
        let res = lint_source(label, bad);
        assert!(
            !res.violations.is_empty(),
            "{rule}: bad fixture triggered no violations"
        );
        for v in &res.violations {
            assert_eq!(
                v.rule, rule,
                "{rule}: bad fixture triggered foreign rule `{}` at line {}: {}",
                v.rule, v.line, v.message
            );
        }
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for (rule, label, _, good) in cases() {
        let res = lint_source(label, good);
        assert!(
            res.violations.is_empty(),
            "{rule}: good fixture raised {:?}",
            res.violations
        );
    }
}

/// Build a one-file synthetic workspace at `root` whose single source
/// file sits at the scope label's path.
fn write_tree(root: &PathBuf, label: &str, src: &str) {
    let _ = std::fs::remove_dir_all(root);
    let file = root.join(label);
    std::fs::create_dir_all(file.parent().expect("label has a parent")).expect("mkdir");
    std::fs::write(&file, src).expect("write fixture");
}

fn run_cli(root: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .arg("--baseline")
        .arg(root.join("lint-baseline.txt")) // absent: empty baseline
        .output()
        .expect("run xtask lint")
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for (rule, label, bad, _) in cases() {
        let root = std::env::temp_dir().join(format!("xtask-lint-bad-{rule}"));
        write_tree(&root, label, bad);
        let out = run_cli(&root);
        assert!(
            !out.status.success(),
            "{rule}: CLI exited 0 on a bad fixture\nstdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn cli_exits_zero_on_every_good_fixture() {
    for (rule, label, _, good) in cases() {
        let root = std::env::temp_dir().join(format!("xtask-lint-good-{rule}"));
        write_tree(&root, label, good);
        let out = run_cli(&root);
        assert!(
            out.status.success(),
            "{rule}: CLI exited nonzero on a good fixture\nstdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn json_report_is_written_in_telemetry_style() {
    let (rule, label, bad, _) = cases().remove(0);
    let root = std::env::temp_dir().join(format!("xtask-lint-json-{rule}"));
    write_tree(&root, label, bad);
    let json_path = root.join("reports/lint.json");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(&root)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run xtask lint");
    assert!(!out.status.success());
    let text = std::fs::read_to_string(&json_path).expect("json written even on failure");
    assert!(text.starts_with("{\n  \"schema\": \"gvfs.lint.v1\",\n"));
    assert!(text.contains("\"violations\": ["));
    assert!(text.contains("\"rule\": \"determinism\""));
    assert!(text.contains("\"clean\": false"));
}
