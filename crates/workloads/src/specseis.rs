//! SPECseis96 trace (SPEC high-performance group), paper Figure 3.
//!
//! "It consists of four phases, where the first phase generates a large
//! trace file on disk, and the last phase involves intensive seismic
//! processing computations. ... It models a scientific application that
//! is both I/O intensive and compute intensive."
//!
//! Phase 1 is the write-heavy part (the benefit of write-back caching is
//! evident there); phase 4 is compute-bound and nearly scenario-
//! independent.

use simnet::SimDuration;
use vmm::GuestOp;

use crate::{sequential_reads, sequential_writes, Phase, Workload};

/// Virtual-disk layout offsets for the benchmark's files.
pub mod layout {
    /// Input dataset region.
    pub const INPUT: u64 = 400 << 20;
    /// Generated trace file region.
    pub const TRACE: u64 = 800 << 20;
    /// Results region.
    pub const RESULTS: u64 = 1_400 << 20;
}

/// Tunable parameters (defaults model the "small dataset, sequential
/// mode" configuration the paper uses).
#[derive(Debug, Clone, Copy)]
pub struct SpecseisParams {
    /// Input dataset size (bytes).
    pub input_bytes: u64,
    /// Trace file written by phase 1 (bytes).
    pub trace_bytes: u64,
    /// Guest I/O block size.
    pub block: u32,
    /// Blocks per guest request (pipelining opportunity).
    pub span: u64,
    /// Compute seconds for phases 1..4.
    pub compute_secs: [f64; 4],
}

impl Default for SpecseisParams {
    fn default() -> Self {
        SpecseisParams {
            input_bytes: 48 << 20,
            trace_bytes: 100 << 20,
            block: 32 * 1024,
            span: 8,
            compute_secs: [55.0, 60.0, 95.0, 330.0],
        }
    }
}

/// Generate the four-phase workload.
pub fn generate(p: &SpecseisParams) -> Workload {
    let bs = p.block as u64;
    let input_blocks = p.input_bytes / bs;
    let trace_blocks = p.trace_bytes / bs;

    // Phase 1: read the input, then computation interleaved with the
    // trace-file generation (write-dominated): eight compute slices, each
    // followed by an eighth of the trace.
    let mut p1 = Vec::new();
    sequential_reads(&mut p1, layout::INPUT, input_blocks, p.block, p.span);
    let slices = 8;
    let per_slice = trace_blocks / slices;
    for i in 0..slices {
        p1.push(GuestOp::Compute(SimDuration::from_secs_f64(
            p.compute_secs[0] / slices as f64,
        )));
        sequential_writes(
            &mut p1,
            layout::TRACE + i * per_slice * bs,
            per_slice,
            p.block,
            p.span,
        );
    }

    // Phase 2: first processing pass over the front of the trace.
    let mut p2 = Vec::new();
    sequential_reads(&mut p2, layout::TRACE, trace_blocks / 3, p.block, p.span);
    p2.push(GuestOp::Compute(SimDuration::from_secs_f64(
        p.compute_secs[1],
    )));
    sequential_writes(&mut p2, layout::RESULTS, 40 << 20 >> 15, p.block, p.span);

    // Phase 3: second pass over the remainder.
    let mut p3 = Vec::new();
    sequential_reads(
        &mut p3,
        layout::TRACE + (p.trace_bytes / 3),
        trace_blocks / 3,
        p.block,
        p.span,
    );
    p3.push(GuestOp::Compute(SimDuration::from_secs_f64(
        p.compute_secs[2],
    )));
    sequential_writes(
        &mut p3,
        layout::RESULTS + (64 << 20),
        20 << 20 >> 15,
        p.block,
        p.span,
    );

    // Phase 4: seismic computation — re-reads recently-touched trace data
    // (buffer-cache friendly), dominated by CPU.
    let mut p4 = Vec::new();
    sequential_reads(&mut p4, layout::TRACE, trace_blocks / 16, p.block, p.span);
    p4.push(GuestOp::Compute(SimDuration::from_secs_f64(
        p.compute_secs[3],
    )));
    sequential_writes(
        &mut p4,
        layout::RESULTS + (128 << 20),
        8 << 20 >> 15,
        p.block,
        p.span,
    );

    Workload {
        name: "SPECseis96".into(),
        phases: vec![
            Phase {
                name: "Phase 1".into(),
                ops: p1,
            },
            Phase {
                name: "Phase 2".into(),
                ops: p2,
            },
            Phase {
                name: "Phase 3".into(),
                ops: p3,
            },
            Phase {
                name: "Phase 4".into(),
                ops: p4,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_is_write_dominated() {
        let wl = generate(&SpecseisParams::default());
        assert_eq!(wl.phases.len(), 4);
        let p1 = &wl.phases[0];
        let w: u64 = p1
            .ops
            .iter()
            .filter_map(|o| match o {
                vmm::GuestOp::DiskWrite { len, .. } => Some(*len as u64),
                _ => None,
            })
            .sum();
        let r: u64 = p1
            .ops
            .iter()
            .filter_map(|o| match o {
                vmm::GuestOp::DiskRead { len, .. } => Some(*len as u64),
                _ => None,
            })
            .sum();
        assert!(w > 2 * r, "phase 1 writes {w} vs reads {r}");
    }

    #[test]
    fn phase4_is_compute_dominated() {
        let p = SpecseisParams::default();
        let wl = generate(&p);
        let p4_compute: f64 = wl.phases[3]
            .ops
            .iter()
            .filter_map(|o| match o {
                vmm::GuestOp::Compute(d) => Some(d.as_secs_f64()),
                _ => None,
            })
            .sum();
        assert!(p4_compute >= 300.0);
    }

    #[test]
    fn total_io_matches_parameters() {
        let p = SpecseisParams::default();
        let wl = generate(&p);
        // Trace written once in phase 1.
        assert!(wl.bytes_written() >= p.trace_bytes);
        assert!(wl.bytes_read() >= p.input_bytes + p.trace_bytes / 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SpecseisParams::default());
        let b = generate(&SpecseisParams::default());
        assert_eq!(a.phases[0].ops, b.phases[0].ops);
        assert_eq!(a.phases[3].ops, b.phases[3].ops);
    }
}
