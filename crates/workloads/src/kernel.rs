//! Linux 2.4.18 kernel compilation, paper Figure 5.
//!
//! "Represents file system usage in a software development environment,
//! similar to the Andrew benchmark ... four major steps, `make dep`,
//! `make bzImage`, `make modules` and `make modules_install`, which
//! involve substantial reads and writes on a large number of files."
//!
//! The source tree plus toolchain working set exceeds the kernel memory
//! buffer, so a **second run** still misses in memory but hits the proxy
//! disk cache — the paper's cold/warm pair of runs.

use simnet::SimDuration;
use vmm::GuestOp;

use crate::{scattered_reads, sequential_writes, Phase, Prng, Workload};

/// Virtual-disk layout.
pub mod layout {
    /// Kernel source tree + toolchain + headers.
    pub const SRC: u64 = 64 << 20;
    /// Size of the source/toolchain region.
    pub const SRC_LEN: u64 = 600 << 20;
    /// Object/output region.
    pub const OBJ: u64 = 700 << 20;
}

/// Per-phase shape: scattered reads, object writes, compute.
#[derive(Debug, Clone, Copy)]
pub struct MakePhase {
    /// Phase label.
    pub name: &'static str,
    /// Scattered source/header read requests.
    pub read_blocks: u64,
    /// Object blocks written.
    pub write_blocks: u64,
    /// Compiler CPU seconds.
    pub compute_secs: f64,
}

/// Tunable parameters.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// The four make steps.
    pub steps: [MakePhase; 4],
    /// Guest block size.
    pub block: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            steps: [
                MakePhase {
                    name: "make dep",
                    read_blocks: 8200,
                    write_blocks: 500,
                    compute_secs: 60.0,
                },
                MakePhase {
                    name: "make bzImage",
                    read_blocks: 12000,
                    write_blocks: 900,
                    compute_secs: 340.0,
                },
                MakePhase {
                    name: "make modules",
                    read_blocks: 12000,
                    write_blocks: 1800,
                    compute_secs: 680.0,
                },
                MakePhase {
                    name: "make modules_install",
                    read_blocks: 2300,
                    write_blocks: 1200,
                    compute_secs: 35.0,
                },
            ],
            block: 32 * 1024,
            seed: 0x2418_2418,
        }
    }
}

/// Generate one compilation run.
pub fn generate(p: &KernelParams) -> Workload {
    let mut rng = Prng::new(p.seed);
    let mut phases = Vec::with_capacity(4);
    let mut obj_cursor = layout::OBJ;
    for step in &p.steps {
        let mut ops = Vec::new();
        // Interleave reads / compute / writes the way make does: per-file
        // granularity batches of ~40 reads, a compute slice, ~15 writes.
        let batches = (step.read_blocks / 40).max(1);
        let compute_per_batch = step.compute_secs / batches as f64;
        let writes_per_batch = step.write_blocks / batches;
        for _ in 0..batches {
            scattered_reads(
                &mut ops,
                &mut rng,
                layout::SRC,
                layout::SRC_LEN,
                40,
                p.block,
            );
            ops.push(GuestOp::Compute(SimDuration::from_secs_f64(
                compute_per_batch,
            )));
            sequential_writes(&mut ops, obj_cursor, writes_per_batch, p.block, 4);
            obj_cursor += writes_per_batch * p.block as u64;
        }
        phases.push(Phase {
            name: step.name.to_string(),
            ops,
        });
    }
    Workload {
        name: "kernel-compile".into(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_make_steps() {
        let wl = generate(&KernelParams::default());
        let names: Vec<&str> = wl.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "make dep",
                "make bzImage",
                "make modules",
                "make modules_install"
            ]
        );
    }

    #[test]
    fn modules_is_the_biggest_step() {
        let wl = generate(&KernelParams::default());
        let cost = |i: usize| -> f64 {
            wl.phases[i]
                .ops
                .iter()
                .map(|o| match o {
                    GuestOp::Compute(d) => d.as_secs_f64(),
                    _ => 0.001,
                })
                .sum()
        };
        assert!(cost(2) > cost(0));
        assert!(cost(2) > cost(1));
        assert!(cost(2) > cost(3));
    }

    #[test]
    fn reads_and_writes_are_substantial() {
        let wl = generate(&KernelParams::default());
        assert!(wl.bytes_read() > 200 << 20);
        assert!(wl.bytes_written() > 100 << 20);
    }

    #[test]
    fn object_writes_do_not_overlap_sources() {
        let wl = generate(&KernelParams::default());
        for phase in &wl.phases {
            for op in &phase.ops {
                if let GuestOp::DiskWrite { offset, .. } = op {
                    assert!(*offset >= layout::OBJ);
                }
            }
        }
    }
}
