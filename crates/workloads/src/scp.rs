//! SCP full-file-copy baseline (paper §4.2.2 and §4.3.2).
//!
//! The paper contrasts GVFS against transferring entire VM state with
//! (GSI-enabled) SCP: "it takes approximately twenty minutes to transfer
//! the entire image" and "2818 seconds" to download the application VM's
//! state. SCP moves every byte — including the ~92% zero pages — through
//! an encrypting channel, so it is limited by min(path bandwidth, cipher
//! throughput) plus connection setup.

use simnet::{Env, Link, SimDuration};

/// SCP cost model.
#[derive(Debug, Clone, Copy)]
pub struct ScpModel {
    /// Connection + key-exchange setup time.
    pub handshake: SimDuration,
    /// Cipher/MAC throughput bound (2004-era 3DES/AES on ~1 GHz CPUs).
    pub cipher_bytes_per_sec: f64,
    /// Protocol byte overhead factor.
    pub overhead: f64,
}

impl Default for ScpModel {
    fn default() -> Self {
        ScpModel {
            handshake: SimDuration::from_millis(900),
            cipher_bytes_per_sec: 16e6,
            overhead: 1.03,
        }
    }
}

impl ScpModel {
    /// Copy `bytes` over `link`, blocking the calling process. The link
    /// carries the full (overheaded) byte count, so concurrent copies
    /// contend for bandwidth; cipher time is charged on top when it is
    /// the bottleneck.
    pub fn copy(&self, env: &Env, link: &Link, bytes: u64) {
        env.sleep(self.handshake);
        let wire = (bytes as f64 * self.overhead) as u64;
        // Cipher-bound residual: if the CPU is slower than the pipe, the
        // stream stalls on encryption. Charge the *difference* so the
        // total matches min(bw, cipher) pacing without double counting.
        let link_rate = link.bytes_per_sec();
        if self.cipher_bytes_per_sec < link_rate {
            let cipher_time = bytes as f64 / self.cipher_bytes_per_sec;
            let wire_time = wire as f64 / link_rate;
            env.sleep(SimDuration::from_secs_f64(
                (cipher_time - wire_time).max(0.0),
            ));
        }
        link.transfer(env, wire);
    }

    /// Analytic copy time on an idle link (for quick estimates).
    pub fn idle_copy_time(&self, link: &Link, bytes: u64) -> SimDuration {
        let wire = (bytes as f64 * self.overhead) as u64;
        let rate = link.bytes_per_sec().min(self.cipher_bytes_per_sec);
        self.handshake + link.latency() + SimDuration::from_secs_f64(wire as f64 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;

    #[test]
    fn bandwidth_bound_copy_paces_at_link_rate() {
        let sim = Simulation::new();
        let h = sim.handle();
        // Slow link (1 MB/s), fast cipher: link-bound.
        let link = Link::new(&h, "wan", 1e6, SimDuration::from_millis(20));
        let model = ScpModel {
            handshake: SimDuration::from_secs(1),
            cipher_bytes_per_sec: 100e6,
            overhead: 1.0,
        };
        let l = link.clone();
        sim.spawn("scp", move |env| {
            model.copy(&env, &l, 10_000_000);
        });
        let end = sim.run().as_secs_f64();
        assert!((end - 11.02).abs() < 0.1, "got {end}");
    }

    #[test]
    fn cipher_bound_copy_paces_at_cipher_rate() {
        let sim = Simulation::new();
        let h = sim.handle();
        // Fast link, slow cipher (1 MB/s): cipher-bound.
        let link = Link::new(&h, "lan", 100e6, SimDuration::from_micros(100));
        let model = ScpModel {
            handshake: SimDuration::ZERO,
            cipher_bytes_per_sec: 1e6,
            overhead: 1.0,
        };
        let l = link.clone();
        sim.spawn("scp", move |env| {
            model.copy(&env, &l, 5_000_000);
        });
        let end = sim.run().as_secs_f64();
        assert!((end - 5.0).abs() < 0.2, "got {end}");
    }

    #[test]
    fn idle_estimate_matches_actual_for_single_copy() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::from_mbps(&h, "wan", 14.0, SimDuration::from_millis(17));
        let model = ScpModel::default();
        let est = model.idle_copy_time(&link, 100 << 20);
        let l = link.clone();
        sim.spawn("scp", move |env| {
            let t0 = env.now();
            model.copy(&env, &l, 100 << 20);
            let actual = env.now() - t0;
            let diff = (actual.as_secs_f64() - est.as_secs_f64()).abs();
            assert!(diff < 1.0, "est {est} vs actual {actual}");
        });
        sim.run();
    }

    #[test]
    fn paper_scale_image_copy_takes_about_twenty_minutes() {
        // 320 MB memory + 1.6 GB disk over the calibrated WAN should land
        // in the paper's "approximately twenty minutes" (1127 s) range.
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::from_mbps(&h, "wan", 14.0, SimDuration::from_millis(17));
        let model = ScpModel::default();
        let est = model
            .idle_copy_time(&link, (320u64 << 20) + (1600 << 20))
            .as_secs_f64();
        assert!(
            (1000.0..1400.0).contains(&est),
            "SCP estimate {est} s out of the paper's ballpark"
        );
    }
}
