//! # workloads — guest benchmark traces for the GVFS evaluation
//!
//! Deterministic generators for the three application benchmarks of the
//! paper's §4.2 plus the SCP full-copy baseline of §4.3:
//!
//! * [`specseis`] — SPECseis96 (SPEC HPC): phase 1 generates a large
//!   trace file; phases 2–4 process it, phase 4 compute-dominated.
//! * [`latex`] — an interactive document-processing session: 20
//!   iterations of `latex` + `bibtex` + `dvipdf` over a 190-page
//!   document, one input patched per iteration.
//! * [`kernel`] — Linux 2.4.18 compilation: `make dep`, `make bzImage`,
//!   `make modules`, `make modules_install` over thousands of small
//!   files.
//! * [`scp`] — the full-file-copy baseline (GSI-enabled SCP) used to
//!   contrast against on-demand GVFS transfers.
//!
//! Traces are sequences of [`vmm::GuestOp`] against the VM's virtual
//! disk, organised into named [`Phase`]s so the benchmark harness can
//! report per-phase times exactly like the paper's figures. All
//! generators are deterministic: same parameters → same trace.

#![warn(missing_docs)]

pub mod kernel;
pub mod latex;
pub mod scp;
pub mod specseis;

use simnet::SimDuration;
use vmm::GuestOp;

/// A named group of guest operations (one bar segment in the figures).
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name as the paper reports it.
    pub name: String,
    /// The operations of this phase.
    pub ops: Vec<GuestOp>,
}

/// A complete benchmark: ordered phases.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name.
    pub name: String,
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Total guest bytes read across all phases.
    pub fn bytes_read(&self) -> u64 {
        self.ops()
            .filter_map(|op| match op {
                GuestOp::DiskRead { len, .. } => Some(*len as u64),
                _ => None,
            })
            .sum()
    }

    /// Total guest bytes written across all phases.
    pub fn bytes_written(&self) -> u64 {
        self.ops()
            .filter_map(|op| match op {
                GuestOp::DiskWrite { len, .. } => Some(*len as u64),
                _ => None,
            })
            .sum()
    }

    /// Total pure-compute time across all phases.
    pub fn compute_time(&self) -> SimDuration {
        let mut t = SimDuration::ZERO;
        for op in self.ops() {
            if let GuestOp::Compute(d) = op {
                t += *d;
            }
        }
        t
    }

    fn ops(&self) -> impl Iterator<Item = &GuestOp> {
        self.phases.iter().flat_map(|p| p.ops.iter())
    }
}

/// Deterministic trace-generation PRNG (re-exported convenience).
pub use vmm::Prng;

/// Helper: a cluster of sequential guest reads starting at `offset`
/// (`count` × `block` bytes). One guest read call per `span` blocks, so
/// the kernel NFS client below sees multi-block reads it can pipeline.
pub(crate) fn sequential_reads(
    ops: &mut Vec<GuestOp>,
    offset: u64,
    count: u64,
    block: u32,
    span: u64,
) {
    let mut i = 0;
    while i < count {
        let n = span.min(count - i);
        ops.push(GuestOp::DiskRead {
            offset: offset + i * block as u64,
            len: (n * block as u64) as u32,
        });
        i += n;
    }
}

/// Helper: scattered single-block reads across a region (small-file
/// access: each read is its own host request, paying a WAN RTT when
/// uncached).
pub(crate) fn scattered_reads(
    ops: &mut Vec<GuestOp>,
    rng: &mut Prng,
    region_start: u64,
    region_len: u64,
    count: u64,
    block: u32,
) {
    let blocks_in_region = (region_len / block as u64).max(1);
    for _ in 0..count {
        let b = rng.below(blocks_in_region);
        ops.push(GuestOp::DiskRead {
            offset: region_start + b * block as u64,
            len: block,
        });
    }
}

/// Helper: sequential writes (file creation / large output).
pub(crate) fn sequential_writes(
    ops: &mut Vec<GuestOp>,
    offset: u64,
    count: u64,
    block: u32,
    span: u64,
) {
    let mut i = 0;
    while i < count {
        let n = span.min(count - i);
        ops.push(GuestOp::DiskWrite {
            offset: offset + i * block as u64,
            len: (n * block as u64) as u32,
        });
        i += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_accounting_sums_ops() {
        let wl = Workload {
            name: "t".into(),
            phases: vec![Phase {
                name: "p".into(),
                ops: vec![
                    GuestOp::DiskRead {
                        offset: 0,
                        len: 100,
                    },
                    GuestOp::DiskWrite { offset: 0, len: 50 },
                    GuestOp::Compute(SimDuration::from_secs(2)),
                    GuestOp::Compute(SimDuration::from_secs(3)),
                ],
            }],
        };
        assert_eq!(wl.bytes_read(), 100);
        assert_eq!(wl.bytes_written(), 50);
        assert_eq!(wl.compute_time(), SimDuration::from_secs(5));
    }

    #[test]
    fn helpers_generate_expected_spans() {
        let mut ops = Vec::new();
        sequential_reads(&mut ops, 0, 10, 4096, 4);
        assert_eq!(ops.len(), 3); // 4 + 4 + 2
        match ops[2] {
            GuestOp::DiskRead { offset, len } => {
                assert_eq!(offset, 8 * 4096);
                assert_eq!(len, 2 * 4096);
            }
            _ => panic!(),
        }
        let mut w = Vec::new();
        sequential_writes(&mut w, 100, 3, 512, 10);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn scattered_reads_stay_in_region() {
        let mut rng = Prng::new(5);
        let mut ops = Vec::new();
        scattered_reads(&mut ops, &mut rng, 1 << 20, 1 << 20, 100, 4096);
        for op in &ops {
            match op {
                GuestOp::DiskRead { offset, len } => {
                    assert!(*offset >= 1 << 20);
                    assert!(offset + *len as u64 <= 2 << 20);
                }
                _ => panic!(),
            }
        }
    }
}
