//! # simnet — deterministic discrete-event simulation substrate
//!
//! This crate provides the virtual-time foundation on which the GVFS
//! reproduction runs: a discrete-event scheduler with thread-backed
//! blocking processes, FIFO resources, channels, one-shot signals and a
//! fluid-flow (processor-sharing) network link model.
//!
//! The paper ("Distributed File System Support for Virtual Machines in
//! Grid Computing", HPDC 2004) evaluated GVFS on a real WAN between the
//! University of Florida and Northwestern University. We reproduce the
//! experiments on a simulated timeline instead: all latency, bandwidth,
//! disk and CPU costs advance a virtual clock, which makes each figure
//! reproducible bit-for-bit on a laptop.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Simulation, SimDuration, Link};
//!
//! let sim = Simulation::new();
//! let h = sim.handle();
//! let wan = Link::from_mbps(&h, "wan", 25.0, SimDuration::from_millis(17));
//! sim.spawn("copy", move |env| {
//!     wan.transfer(&env, 1_000_000); // blocks in virtual time
//!     println!("done at {}", env.now());
//! });
//! let end = sim.run();
//! assert!(end.as_secs_f64() > 0.3); // 1 MB at 25 Mb/s + latency
//! ```

#![warn(missing_docs)]

pub mod arrival;
mod engine;
pub mod fault;
mod link;
pub mod sync;
pub mod telemetry;
mod time;
mod wheel;

pub use arrival::ArrivalProcess;
pub use engine::{
    default_sched_policy, first_divergence, set_default_sched_policy, CancelToken, Env,
    EventRecord, ProcessHandle, SchedPolicy, SimHandle, Simulation, DEFAULT_EVENT_TRACE_CAP,
};
pub use fault::{splitmix64, DetRng, LinkFaultPlan, OutageWindow};
pub use link::{Link, TransferOutcome};
pub use sync::{
    channel, Disconnected, Receiver, RecvTimeoutError, Resource, ResourceGuard, Sender, Signal,
};
pub use telemetry::{
    Counter, Gauge, Histogram, JsonValue, PercentileSketch, Snapshot, Telemetry, TraceEvent,
};
pub use time::{SimDuration, SimTime};
