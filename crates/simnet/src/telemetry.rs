//! Uniform instrumentation for the simulation: counters, virtual-time
//! histograms, and a structured trace-event ring.
//!
//! Every [`crate::Simulation`] owns one [`Telemetry`] registry, reachable
//! from any process via [`crate::Env::handle`]`().telemetry()`. Layers
//! (links, RPC endpoints, caches, proxies) register named metrics once and
//! then update them through lock-free atomics — a metric update on a hot
//! path is one `fetch_add`, never a registry lock. The registry lock is
//! only taken at registration and snapshot time.
//!
//! Naming convention: every metric lives under a `layer` (e.g. `"link"`,
//! `"rpc"`, `"nfs3"`, `"gvfs"`) and a dotted `name` whose first segment is
//! the component instance (e.g. `"client-proxy.read.calls"`). Components
//! that may be instantiated several times under one simulation (parallel
//! cloning spawns eight identical client proxies) disambiguate through
//! [`Telemetry::instance_name`], which yields `base`, `base#2`, `base#3`…
//! Two components that register the *same* fully-qualified metric share
//! the underlying atomic — for same-named links this is deliberate and
//! gives aggregate semantics.
//!
//! Histograms record [`SimDuration`] samples into 64 logarithmic (power of
//! two nanoseconds) buckets, so quantile estimates are within 2× of the
//! true value — plenty for "where did the virtual time go" questions.
//!
//! The trace ring is off by default; [`Telemetry::set_trace`] turns it on
//! (the bench binaries map `--trace` to it). When enabled, processes
//! append [`TraceEvent`]s (virtual-time-stamped, structured) to a bounded
//! ring; overflow drops the oldest events and counts the drops.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// Default capacity of the trace-event ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Number of logarithmic histogram buckets (bucket `i` holds samples with
/// `floor(log2(ns)) == i-1`; bucket 0 holds zero-duration samples).
pub const HIST_BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Counter

/// A monotonically increasing event/byte counter. Cloning is cheap and
/// clones share the same underlying cell, which is how the legacy stats
/// structs (`ProxyStats` etc.) stay in sync with the registry: both sides
/// hold the same `Counter`.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (mostly for tests).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmarks reset between phases).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

// ---------------------------------------------------------------------------
// Gauge

struct GaugeInner {
    value: AtomicU64,
    max: AtomicU64,
}

/// An up/down occupancy gauge with a high-water mark (e.g. in-flight RPCs
/// in a transfer window). Cloning shares the underlying cells (same
/// contract as [`Counter`]).
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            inner: Arc::new(GaugeInner {
                value: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Gauge {
    /// A fresh, unregistered gauge (mostly for tests).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raise the gauge by `n`, updating the high-water mark. Returns the
    /// new value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        let now = self.inner.value.fetch_add(n, Ordering::Relaxed) + n;
        self.inner.max.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Raise by one.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Lower the gauge by `n`. Going below zero is an accounting bug
    /// (exact-accounting invariant): asserted in debug builds, never
    /// silently clamped.
    #[inline]
    pub fn sub(&self, n: u64) {
        let prev = self.inner.value.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "gauge underflow: {prev} - {n}");
    }

    /// Lower by one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// Highest value ever reached.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Reset value and high-water mark to zero.
    pub fn reset(&self) {
        self.inner.value.store(0, Ordering::Relaxed);
        self.inner.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({}, max={})", self.get(), self.high_water())
    }
}

// ---------------------------------------------------------------------------
// Histogram

struct HistogramInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// A histogram of virtual-time durations with logarithmic buckets.
/// Cloning shares the underlying cells (same contract as [`Counter`]).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }),
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    // 0 → bucket 0; otherwise floor(log2(ns)) + 1, capped at the last bucket.
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    /// A fresh, unregistered histogram (mostly for tests).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration sample.
    #[inline]
    pub fn record(&self, d: SimDuration) {
        let ns = d.as_nanos();
        let h = &*self.inner;
        h.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.inner.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.inner.max_ns.load(Ordering::Relaxed)
    }

    /// Mean sample duration.
    pub fn mean(&self) -> SimDuration {
        match self.sum_ns().checked_div(self.count()) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0.0–1.0).
    /// Accurate to within the 2× bucket width.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket i: 2^i - 1 ns (bucket 0 is exactly 0;
                // the i > 0 branch makes the subtraction exact, never clamped).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max_ns()
    }

    /// Reset all cells to zero.
    pub fn reset(&self) {
        let h = &*self.inner;
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum_ns.store(0, Ordering::Relaxed);
        h.max_ns.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, sum={}ns, max={}ns)",
            self.count(),
            self.sum_ns(),
            self.max_ns()
        )
    }
}

// ---------------------------------------------------------------------------
// PercentileSketch

/// Linear sub-buckets per power-of-two octave in a [`PercentileSketch`]
/// (`2^SKETCH_SUB_BITS`). Eight sub-buckets bound the relative quantile
/// error at 1/8 = 12.5%, four times tighter than [`Histogram`]'s 2×.
pub const SKETCH_SUB_BITS: u32 = 3;

/// Number of linear sub-buckets per octave.
pub const SKETCH_SUB: usize = 1 << SKETCH_SUB_BITS;

/// Total cells in a [`PercentileSketch`]. The highest reachable index is
/// `(63 - 3 + 1) * 8 + 7 = 495`; 512 rounds up to a power of two.
pub const SKETCH_BUCKETS: usize = 512;

/// Fixed log-linear bucket index for a nanosecond value: values below
/// `2^SKETCH_SUB_BITS` map exactly; above that, the exponent selects the
/// octave and the next [`SKETCH_SUB_BITS`] mantissa bits the sub-bucket.
fn sketch_index(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    let e = 63 - ns.leading_zeros() as usize;
    let sb = SKETCH_SUB_BITS as usize;
    if e < sb {
        ns as usize
    } else {
        let sub = ((ns >> (e - sb)) & (SKETCH_SUB as u64 - 1)) as usize;
        (e - sb + 1) * SKETCH_SUB + sub
    }
}

/// Inclusive upper bound (ns) of the values sketch bucket `idx` holds.
fn sketch_upper_bound(idx: usize) -> u64 {
    let sb = SKETCH_SUB_BITS as usize;
    if idx < SKETCH_SUB {
        idx as u64
    } else {
        let e = idx / SKETCH_SUB + sb - 1;
        let sub = (idx % SKETCH_SUB) as u64;
        let width = 1u64 << (e - sb);
        // `-1` before the add: the top bucket's bound is exactly u64::MAX
        // and the other order would overflow computing it.
        (1u64 << e) - 1 + (sub + 1) * width
    }
}

struct SketchInner {
    buckets: [AtomicU64; SKETCH_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// A lock-cheap percentile sketch: fixed log-linear buckets (8 linear
/// sub-buckets per power-of-two octave) holding nanosecond samples, with
/// relative quantile error ≤ 12.5%. The record path is index arithmetic
/// plus four relaxed `fetch_add`/`fetch_max` operations — no locks and no
/// allocation, ever (the `allocation-free-record` lint rule pins this).
/// Cloning shares the underlying cells (same contract as [`Counter`]).
#[derive(Clone)]
pub struct PercentileSketch {
    inner: Arc<SketchInner>,
}

impl Default for PercentileSketch {
    fn default() -> Self {
        PercentileSketch {
            inner: Arc::new(SketchInner {
                buckets: [const { AtomicU64::new(0) }; SKETCH_BUCKETS],
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }),
        }
    }
}

impl PercentileSketch {
    /// A fresh, unregistered sketch (mostly for tests).
    pub fn new() -> Self {
        PercentileSketch::default()
    }

    /// Record one duration sample. Allocation-free.
    #[inline]
    pub fn record(&self, d: SimDuration) {
        self.record_ns(d.as_nanos());
    }

    /// Record one raw nanosecond (or unit-less, e.g. queue-depth) sample.
    /// Allocation-free.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let s = &*self.inner;
        s.buckets[sketch_index(ns)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum_ns.fetch_add(ns, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.inner.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.inner.max_ns.load(Ordering::Relaxed)
    }

    /// Mean sample value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile (0.0–1.0),
    /// clamped to the observed maximum. Within 12.5% of the true value.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return sketch_upper_bound(i).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Reset all cells to zero.
    pub fn reset(&self) {
        let s = &*self.inner;
        for b in &s.buckets {
            b.store(0, Ordering::Relaxed);
        }
        s.count.store(0, Ordering::Relaxed);
        s.sum_ns.store(0, Ordering::Relaxed);
        s.max_ns.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for PercentileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PercentileSketch(count={}, p50={}ns, p99={}ns)",
            self.count(),
            self.quantile_ns(0.50),
            self.quantile_ns(0.99)
        )
    }
}

// ---------------------------------------------------------------------------
// Trace events

/// One structured, virtual-time-stamped trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time at which the event completed.
    pub sim_time: SimTime,
    /// Layer that emitted it (`"link"`, `"rpc"`, `"gvfs"`, …).
    pub layer: &'static str,
    /// Event kind within the layer (`"transfer"`, `"channel-fetch"`, …).
    pub kind: &'static str,
    /// Bytes moved, if the event moves bytes.
    pub bytes: u64,
    /// Virtual time the operation took.
    pub duration: SimDuration,
    /// Free-form key/value context (instance names, procedures, files).
    pub labels: Vec<(&'static str, String)>,
}

impl TraceEvent {
    /// Start building an event stamped `at` the given virtual time.
    pub fn new(at: SimTime, layer: &'static str, kind: &'static str) -> Self {
        TraceEvent {
            sim_time: at,
            layer,
            kind,
            bytes: 0,
            duration: SimDuration::ZERO,
            labels: Vec::new(),
        }
    }

    /// Attach a byte count.
    pub fn bytes(mut self, n: u64) -> Self {
        self.bytes = n;
        self
    }

    /// Attach the operation's virtual duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Attach a key/value label.
    pub fn label(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((key, value.into()));
        self
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

// ---------------------------------------------------------------------------
// Registry

struct TelemetryInner {
    counters: Mutex<BTreeMap<(&'static str, String), Counter>>,
    gauges: Mutex<BTreeMap<(&'static str, String), Gauge>>,
    histograms: Mutex<BTreeMap<(&'static str, String), Histogram>>,
    sketches: Mutex<BTreeMap<(&'static str, String), PercentileSketch>>,
    instances: Mutex<BTreeMap<String, u64>>,
    ring: Mutex<Ring>,
    trace_enabled: AtomicBool,
    /// Debug builds count every get-or-register resolution so tests can
    /// assert that hot record paths cache their handles instead of taking
    /// this registry's locks per event (see `debug_resolutions`).
    #[cfg(debug_assertions)]
    resolutions: std::sync::atomic::AtomicU64,
}

/// The per-simulation metric registry and trace sink. Cheap to clone;
/// all clones share state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An empty registry with tracing disabled.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                sketches: Mutex::new(BTreeMap::new()),
                instances: Mutex::new(BTreeMap::new()),
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    capacity: DEFAULT_TRACE_CAPACITY,
                    dropped: 0,
                }),
                trace_enabled: AtomicBool::new(false),
                #[cfg(debug_assertions)]
                resolutions: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Get or register the counter `layer`/`name`. Registering the same
    /// pair twice returns clones of one shared cell.
    pub fn counter(&self, layer: &'static str, name: impl Into<String>) -> Counter {
        self.note_resolution();
        self.inner
            .counters
            .lock()
            .entry((layer, name.into()))
            .or_default()
            .clone()
    }

    /// Get or register the gauge `layer`/`name`.
    pub fn gauge(&self, layer: &'static str, name: impl Into<String>) -> Gauge {
        self.note_resolution();
        self.inner
            .gauges
            .lock()
            .entry((layer, name.into()))
            .or_default()
            .clone()
    }

    /// Get or register the histogram `layer`/`name`.
    pub fn histogram(&self, layer: &'static str, name: impl Into<String>) -> Histogram {
        self.note_resolution();
        self.inner
            .histograms
            .lock()
            .entry((layer, name.into()))
            .or_default()
            .clone()
    }

    /// Get or register the percentile sketch `layer`/`name`.
    pub fn sketch(&self, layer: &'static str, name: impl Into<String>) -> PercentileSketch {
        self.note_resolution();
        self.inner
            .sketches
            .lock()
            .entry((layer, name.into()))
            .or_default()
            .clone()
    }

    #[inline]
    fn note_resolution(&self) {
        #[cfg(debug_assertions)]
        self.inner
            .resolutions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Total get-or-register resolutions performed on this registry
    /// (debug builds only; always 0 in release). Every resolution takes a
    /// global lock and allocates a key, so per-event paths must resolve
    /// their handles once at construction and hold the returned cells;
    /// tests pin that by asserting this count stays flat across a burst
    /// of recorded events.
    pub fn debug_resolutions(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            self.inner
                .resolutions
                .load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Reserve a unique instance name derived from `base`: the first
    /// caller gets `base`, the second `base#2`, and so on. Components
    /// use the result as the first segment of their metric names so
    /// eight parallel `client-proxy` instances stay distinguishable.
    pub fn instance_name(&self, base: &str) -> String {
        let mut instances = self.inner.instances.lock();
        let n = instances.entry(base.to_string()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base.to_string()
        } else {
            format!("{base}#{n}")
        }
    }

    /// Enable or disable trace-event collection.
    pub fn set_trace(&self, enabled: bool) {
        self.inner.trace_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether trace-event collection is on. Callers building expensive
    /// labels should check this first; [`Telemetry::trace`] also checks.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.inner.trace_enabled.load(Ordering::Relaxed)
    }

    /// Append an event to the ring (no-op while tracing is disabled).
    pub fn trace(&self, event: TraceEvent) {
        if !self.trace_enabled() {
            return;
        }
        let mut ring = self.inner.ring.lock();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Change the ring capacity (drops oldest events if shrinking).
    pub fn set_trace_capacity(&self, capacity: usize) {
        let mut ring = self.inner.ring.lock();
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }

    /// Copy out the current metric values and trace events.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|((layer, name), c)| CounterSample {
                layer,
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|((layer, name), g)| GaugeSample {
                layer,
                name: name.clone(),
                value: g.get(),
                high_water: g.high_water(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|((layer, name), h)| HistogramSample {
                layer,
                name: name.clone(),
                count: h.count(),
                sum_ns: h.sum_ns(),
                max_ns: h.max_ns(),
                p50_ns: h.quantile_ns(0.50),
                p99_ns: h.quantile_ns(0.99),
            })
            .collect();
        let sketches = self
            .inner
            .sketches
            .lock()
            .iter()
            .map(|((layer, name), s)| SketchSample {
                layer,
                name: name.clone(),
                count: s.count(),
                sum_ns: s.sum_ns(),
                max_ns: s.max_ns(),
                p50_ns: s.quantile_ns(0.50),
                p95_ns: s.quantile_ns(0.95),
                p99_ns: s.quantile_ns(0.99),
            })
            .collect();
        let ring = self.inner.ring.lock();
        Snapshot {
            counters,
            gauges,
            histograms,
            sketches,
            events: ring.events.iter().cloned().collect(),
            events_dropped: ring.dropped,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots and JSON

/// One counter's value at snapshot time.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Layer the counter was registered under.
    pub layer: &'static str,
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge's value and high-water mark at snapshot time.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Layer the gauge was registered under.
    pub layer: &'static str,
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time (usually 0 once all work has drained).
    pub value: u64,
    /// Highest value ever reached.
    pub high_water: u64,
}

/// One histogram's summary at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Layer the histogram was registered under.
    pub layer: &'static str,
    /// Dotted metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (ns).
    pub sum_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Median estimate (bucket upper bound, ns).
    pub p50_ns: u64,
    /// 99th-percentile estimate (bucket upper bound, ns).
    pub p99_ns: u64,
}

/// One percentile sketch's summary at snapshot time.
#[derive(Debug, Clone)]
pub struct SketchSample {
    /// Layer the sketch was registered under.
    pub layer: &'static str,
    /// Dotted metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (ns).
    pub sum_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Median estimate (bucket upper bound, ns).
    pub p50_ns: u64,
    /// 95th-percentile estimate (bucket upper bound, ns).
    pub p95_ns: u64,
    /// 99th-percentile estimate (bucket upper bound, ns).
    pub p99_ns: u64,
}

/// A point-in-time copy of every registered metric plus the trace ring.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by (layer, name).
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by (layer, name).
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by (layer, name).
    pub histograms: Vec<HistogramSample>,
    /// All percentile sketches, sorted by (layer, name). Empty in every
    /// scenario that registers none, which keeps pre-fleet report JSON
    /// byte-identical (the field is omitted from output when empty).
    pub sketches: Vec<SketchSample>,
    /// Trace events, oldest first (empty unless tracing was enabled).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring due to capacity.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Value of counter `layer`/`name`, or 0 if absent (test helper).
    pub fn counter(&self, layer: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.layer == layer && c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Sum of all counters under `layer` whose dotted name ends with
    /// `suffix` (e.g. every instance's `read.calls`).
    pub fn counter_sum(&self, layer: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.layer == layer && (c.name == suffix || c.name.ends_with(suffix)))
            .map(|c| c.value)
            .sum()
    }

    /// Sample summary of sketch `layer`/`name`, if registered.
    pub fn sketch(&self, layer: &str, name: &str) -> Option<&SketchSample> {
        self.sketches
            .iter()
            .find(|s| s.layer == layer && s.name == name)
    }

    /// High-water mark of gauge `layer`/`name`, or 0 if absent (test
    /// helper).
    pub fn gauge_high_water(&self, layer: &str, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.layer == layer && g.name == name)
            .map_or(0, |g| g.high_water)
    }

    /// Render the metrics (and events, if any) as a JSON value.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = Vec::new();
        for c in &self.counters {
            counters.push((format!("{}.{}", c.layer, c.name), JsonValue::Uint(c.value)));
        }
        let mut histograms = Vec::new();
        for h in &self.histograms {
            histograms.push((
                format!("{}.{}", h.layer, h.name),
                JsonValue::object([
                    ("count", JsonValue::Uint(h.count)),
                    ("sum_ns", JsonValue::Uint(h.sum_ns)),
                    ("max_ns", JsonValue::Uint(h.max_ns)),
                    ("p50_ns", JsonValue::Uint(h.p50_ns)),
                    ("p99_ns", JsonValue::Uint(h.p99_ns)),
                ]),
            ));
        }
        let mut gauges = Vec::new();
        for g in &self.gauges {
            gauges.push((
                format!("{}.{}", g.layer, g.name),
                JsonValue::object([
                    ("value", JsonValue::Uint(g.value)),
                    ("high_water", JsonValue::Uint(g.high_water)),
                ]),
            ));
        }
        let mut fields = vec![
            ("counters".to_string(), JsonValue::Object(counters)),
            ("gauges".to_string(), JsonValue::Object(gauges)),
            ("histograms".to_string(), JsonValue::Object(histograms)),
        ];
        if !self.sketches.is_empty() {
            let mut sketches = Vec::new();
            for s in &self.sketches {
                sketches.push((
                    format!("{}.{}", s.layer, s.name),
                    JsonValue::object([
                        ("count", JsonValue::Uint(s.count)),
                        ("sum_ns", JsonValue::Uint(s.sum_ns)),
                        ("max_ns", JsonValue::Uint(s.max_ns)),
                        ("p50_ns", JsonValue::Uint(s.p50_ns)),
                        ("p95_ns", JsonValue::Uint(s.p95_ns)),
                        ("p99_ns", JsonValue::Uint(s.p99_ns)),
                    ]),
                ));
            }
            fields.push(("sketches".to_string(), JsonValue::Object(sketches)));
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            fields.push((
                "events_dropped".to_string(),
                JsonValue::Uint(self.events_dropped),
            ));
            let events = self
                .events
                .iter()
                .map(|e| {
                    let mut ev = vec![
                        ("t_ns".to_string(), JsonValue::Uint(e.sim_time.as_nanos())),
                        ("layer".to_string(), JsonValue::from(e.layer)),
                        ("kind".to_string(), JsonValue::from(e.kind)),
                        ("bytes".to_string(), JsonValue::Uint(e.bytes)),
                        ("dur_ns".to_string(), JsonValue::Uint(e.duration.as_nanos())),
                    ];
                    if !e.labels.is_empty() {
                        ev.push((
                            "labels".to_string(),
                            JsonValue::Object(
                                e.labels
                                    .iter()
                                    .map(|(k, v)| (k.to_string(), JsonValue::from(v.as_str())))
                                    .collect(),
                            ),
                        ));
                    }
                    JsonValue::Object(ev)
                })
                .collect();
            fields.push(("events".to_string(), JsonValue::Array(events)));
        }
        JsonValue::Object(fields)
    }
}

/// A minimal JSON document model (the workspace builds fully offline, so
/// there is no serde; this is the one JSON producer everything shares).
/// Rendering via [`std::fmt::Display`] produces pretty-printed,
/// deterministic output: object keys keep insertion order.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (exact).
    Uint(u64),
    /// A float, rendered with enough precision for timings.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An ordered key→value map.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Uint(n)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}
impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Append a field (no-op target unless this is an object).
    pub fn push_field(&mut self, key: impl Into<String>, value: JsonValue) {
        if let JsonValue::Object(fields) = self {
            fields.push((key.into(), value));
        } else {
            debug_assert!(false, "push_field on a non-object JsonValue");
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // Round-trippable but compact: up to 6 significant
                    // decimals is plenty for second-scale timings.
                    let _ = write!(out, "{x:.6}");
                    while out.ends_with('0') {
                        out.pop();
                    }
                    if out.ends_with('.') {
                        out.push('0');
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        f.write_str(&out)
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let t = Telemetry::new();
        let a = t.counter("link", "wan.bytes");
        let b = t.counter("link", "wan.bytes");
        a.add(5);
        b.add(7);
        assert_eq!(a.get(), 12);
        assert_eq!(t.snapshot().counter("link", "wan.bytes"), 12);
    }

    #[test]
    fn gauges_track_occupancy_and_high_water() {
        let t = Telemetry::new();
        let g = t.gauge("gvfs", "proxy.transfer.window_inflight");
        assert_eq!(g.inc(), 1);
        assert_eq!(g.add(3), 4);
        g.sub(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 4);
        g.dec();
        g.dec();
        let snap = t.snapshot();
        assert_eq!(
            snap.gauge_high_water("gvfs", "proxy.transfer.window_inflight"),
            4
        );
        let json = snap.to_json().to_string();
        assert!(json.contains("\"high_water\": 4"));
        g.reset();
        assert_eq!(g.high_water(), 0);
    }

    #[test]
    fn counter_sum_matches_suffix_across_instances() {
        let t = Telemetry::new();
        t.counter("nfs3", "client-proxy.read.calls").add(3);
        t.counter("nfs3", "client-proxy#2.read.calls").add(4);
        t.counter("nfs3", "client-proxy.write.calls").add(9);
        assert_eq!(t.snapshot().counter_sum("nfs3", ".read.calls"), 7);
    }

    #[test]
    fn instance_names_disambiguate() {
        let t = Telemetry::new();
        assert_eq!(t.instance_name("client-proxy"), "client-proxy");
        assert_eq!(t.instance_name("client-proxy"), "client-proxy#2");
        assert_eq!(t.instance_name("client-proxy"), "client-proxy#3");
        assert_eq!(t.instance_name("server-proxy"), "server-proxy");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        for us in [1u64, 2, 4, 100, 100, 100, 10_000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_ns(), 10_000_000);
        // Median sample is 100µs; the bucket upper bound holding it must
        // be within [100µs, 200µs).
        let p50 = h.quantile_ns(0.5);
        assert!((100_000..200_000).contains(&p50), "p50={p50}");
        assert!(h.quantile_ns(1.0) >= 8_000_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0;
        for ns in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            let b = bucket_index(ns);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn sketch_index_is_monotonic_and_inverse_bounds_hold() {
        let mut last = 0usize;
        for ns in [
            0u64,
            1,
            2,
            7,
            8,
            9,
            15,
            16,
            17,
            1023,
            1024,
            1025,
            1 << 40,
            u64::MAX,
        ] {
            let b = sketch_index(ns);
            assert!(b >= last, "index must not decrease at ns={ns}");
            assert!(b < SKETCH_BUCKETS);
            assert!(
                sketch_upper_bound(b) >= ns,
                "upper bound {} below sample {ns}",
                sketch_upper_bound(b)
            );
            last = b;
        }
        // Exact region: small values get their own bucket.
        for ns in 0..SKETCH_SUB as u64 {
            assert_eq!(sketch_upper_bound(sketch_index(ns)), ns);
        }
    }

    #[test]
    fn sketch_quantiles_are_within_the_advertised_error() {
        let s = PercentileSketch::new();
        assert_eq!(s.quantile_ns(0.99), 0);
        // 1000 samples: 1µs, 2µs, …, 1000µs. True p50 = 500µs,
        // p95 = 950µs, p99 = 990µs; each estimate must be within 12.5%.
        for us in 1..=1000u64 {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max_ns(), 1_000_000);
        for (q, truth) in [(0.50, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let est = s.quantile_ns(q) as f64;
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 0.125, "q={q}: est={est} truth={truth} rel={rel}");
        }
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
    }

    #[test]
    fn sketches_are_shared_by_name_and_snapshot_conditionally() {
        let t = Telemetry::new();
        // No sketches registered → no "sketches" key in the JSON, so all
        // pre-fleet report files stay byte-identical.
        assert!(!t.snapshot().to_json().to_string().contains("sketches"));

        let a = t.sketch("fleet", "clone.latency");
        let b = t.sketch("fleet", "clone.latency");
        a.record(SimDuration::from_millis(5));
        b.record(SimDuration::from_millis(7));
        let resolutions_before = t.debug_resolutions();
        for _ in 0..1000 {
            a.record(SimDuration::from_millis(1));
        }
        // Cached-handle discipline: a burst of records takes no registry
        // locks.
        assert_eq!(t.debug_resolutions(), resolutions_before);
        let snap = t.snapshot();
        let s = snap.sketch("fleet", "clone.latency").expect("registered");
        assert_eq!(s.count, 1002);
        assert!(snap.to_json().to_string().contains("\"sketches\""));
    }

    #[test]
    fn trace_ring_bounds_and_drops() {
        let t = Telemetry::new();
        // Disabled: nothing recorded.
        t.trace(TraceEvent::new(SimTime::ZERO, "link", "transfer"));
        assert!(t.snapshot().events.is_empty());

        t.set_trace(true);
        t.set_trace_capacity(4);
        for i in 0..6u64 {
            t.trace(
                TraceEvent::new(SimTime::from_nanos(i), "link", "transfer")
                    .bytes(i)
                    .duration(SimDuration::from_nanos(i)),
            );
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events_dropped, 2);
        assert_eq!(snap.events[0].sim_time.as_nanos(), 2);
        assert_eq!(snap.events[3].bytes, 5);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let t = Telemetry::new();
        t.counter("rpc", "client.nfs3.READ").add(2);
        t.histogram("rpc", "client.nfs3.READ")
            .record(SimDuration::from_millis(3));
        t.set_trace(true);
        t.trace(
            TraceEvent::new(SimTime::from_nanos(7), "rpc", "call")
                .bytes(42)
                .label("proc", "READ"),
        );
        let json = t.snapshot().to_json().to_string();
        assert!(json.contains("\"rpc.client.nfs3.READ\": 2"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"proc\": \"READ\""));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_and_floats() {
        let v = JsonValue::object([
            ("s", JsonValue::from("a\"b\\c\nd")),
            ("f", JsonValue::Float(1.5)),
            ("g", JsonValue::Float(f64::NAN)),
            ("n", JsonValue::Uint(7)),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let s = v.to_string();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"f\": 1.5"));
        assert!(s.contains("\"g\": null"));
        assert!(s.contains("\"empty\": []"));
    }
}
