//! Seeded arrival-process generators for fleet-scale load.
//!
//! The fleet cloning scenario drives clone requests from a simulated user
//! population rather than a fixed `for` loop. Two arrival models cover
//! the interesting regimes:
//!
//! * [`ArrivalProcess::poisson`] — memoryless arrivals at a constant mean
//!   rate, the classic open-loop model for a large independent population.
//! * [`ArrivalProcess::on_off`] — a bursty on/off modulated Poisson
//!   process: the population alternates between exponentially-distributed
//!   ON periods (arrivals at `on_rate`) and OFF periods (silence). This
//!   models flash crowds — a class starting a lab, a release going out —
//!   which is where tail latency actually lives.
//! * [`ArrivalProcess::diurnal`] — an inhomogeneous Poisson process whose
//!   rate follows a day-shaped curve (quiet trough → busy peak →
//!   trough), sampled by seeded thinning. This is the 10k-fleet model: a
//!   real user population logs in over a working day, so cold-content
//!   pressure ramps rather than arriving uniformly.
//!
//! Both are pure functions of their seed (splitmix64 stream), so a fleet
//! run is replayable bit-for-bit from `(seed, mode, rate)`. Inter-arrival
//! gaps are rounded **up** to whole nanoseconds: rounding up keeps every
//! gap strictly positive, so arrival events can never tie-and-reorder
//! against each other regardless of rate.

use crate::fault::DetRng;
use crate::time::SimDuration;

/// Maximum inter-arrival gap the generators will emit. A pathological
/// draw from the exponential tail (u ≈ 0) would otherwise produce a gap
/// of years and stall the virtual clock; one hour is far beyond any
/// scenario horizon while keeping the math exact below it.
pub const MAX_GAP: SimDuration = SimDuration::from_secs(3600);

#[derive(Debug, Clone)]
enum Mode {
    Poisson {
        rate_per_sec: f64,
    },
    OnOff {
        on_rate_per_sec: f64,
        mean_on: f64,
        mean_off: f64,
        /// Virtual seconds of ON time left before the next OFF period.
        on_left: f64,
    },
    Diurnal {
        peak_rate_per_sec: f64,
        period_secs: f64,
        /// Virtual seconds since the stream began — thinning evaluates
        /// the rate curve on the absolute clock, not on gaps.
        t_secs: f64,
    },
}

/// Instantaneous rate fraction of the diurnal curve at time `t`:
/// `0.1 + 0.9·sin²(πt/period)`, i.e. a trough at 10% of peak (t = 0,
/// period, …) rising to the full peak at mid-period. The long-run mean
/// rate is `0.55 × peak`.
fn diurnal_fraction(t_secs: f64, period_secs: f64) -> f64 {
    0.1 + 0.9 * (std::f64::consts::PI * t_secs / period_secs).sin().powi(2)
}

/// A deterministic arrival-process generator: a stream of inter-arrival
/// gaps, replayable from its seed.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: DetRng,
    mode: Mode,
}

/// Sample an exponential with the given rate via inversion. `1 - u` keeps
/// the argument of `ln` strictly positive (u ∈ [0, 1)).
fn exp_sample(rng: &mut DetRng, rate_per_sec: f64) -> f64 {
    let u = rng.next_f64();
    -(1.0 - u).ln() / rate_per_sec
}

/// Convert a gap in seconds to a [`SimDuration`], rounding up to a whole
/// strictly-positive nanosecond and clamping at [`MAX_GAP`].
fn gap_to_duration(secs: f64) -> SimDuration {
    let ns = (secs * 1e9).ceil().max(1.0);
    if ns >= MAX_GAP.as_nanos() as f64 {
        MAX_GAP
    } else {
        SimDuration::from_nanos(ns as u64)
    }
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec` (must be positive and finite).
    pub fn poisson(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        ArrivalProcess {
            rng: DetRng::new(seed),
            mode: Mode::Poisson { rate_per_sec },
        }
    }

    /// Bursty on/off arrivals: exponentially-distributed ON periods with
    /// mean `mean_on_secs` during which arrivals come at `on_rate_per_sec`,
    /// separated by exponentially-distributed OFF periods with mean
    /// `mean_off_secs` with no arrivals. The long-run mean rate is
    /// `on_rate · mean_on / (mean_on + mean_off)`.
    pub fn on_off(seed: u64, on_rate_per_sec: f64, mean_on_secs: f64, mean_off_secs: f64) -> Self {
        assert!(
            on_rate_per_sec > 0.0 && on_rate_per_sec.is_finite(),
            "on-rate must be positive and finite"
        );
        assert!(
            mean_on_secs > 0.0 && mean_off_secs > 0.0,
            "on/off period means must be positive"
        );
        let mut rng = DetRng::new(seed);
        let on_left = exp_sample(&mut rng, 1.0 / mean_on_secs);
        ArrivalProcess {
            rng,
            mode: Mode::OnOff {
                on_rate_per_sec,
                mean_on: mean_on_secs,
                mean_off: mean_off_secs,
                on_left,
            },
        }
    }

    /// Diurnal (inhomogeneous Poisson) arrivals: candidate events are
    /// drawn at `peak_rate_per_sec` and thinned by the day curve, so the
    /// instantaneous rate swings deterministically (given `seed`)
    /// between 10% and 100% of peak over each `period_secs`-long
    /// virtual "day". The stream starts in the trough.
    pub fn diurnal(seed: u64, peak_rate_per_sec: f64, period_secs: f64) -> Self {
        assert!(
            peak_rate_per_sec > 0.0 && peak_rate_per_sec.is_finite(),
            "peak rate must be positive and finite"
        );
        assert!(
            period_secs > 0.0 && period_secs.is_finite(),
            "diurnal period must be positive and finite"
        );
        ArrivalProcess {
            rng: DetRng::new(seed),
            mode: Mode::Diurnal {
                peak_rate_per_sec,
                period_secs,
                t_secs: 0.0,
            },
        }
    }

    /// The gap between the previous arrival and the next one. Always
    /// strictly positive; callers sleep this long, then fire one arrival.
    pub fn next_gap(&mut self) -> SimDuration {
        match &mut self.mode {
            Mode::Poisson { rate_per_sec } => {
                let gap = exp_sample(&mut self.rng, *rate_per_sec);
                gap_to_duration(gap)
            }
            Mode::OnOff {
                on_rate_per_sec,
                mean_on,
                mean_off,
                on_left,
            } => {
                // Consume ON time until an arrival lands inside the
                // current ON period; every exhausted ON period inserts a
                // full OFF gap and starts a fresh ON period.
                let mut gap = 0.0f64;
                loop {
                    let next = exp_sample(&mut self.rng, *on_rate_per_sec);
                    if next <= *on_left {
                        *on_left -= next;
                        gap += next;
                        break;
                    }
                    gap += *on_left + exp_sample(&mut self.rng, 1.0 / *mean_off);
                    *on_left = exp_sample(&mut self.rng, 1.0 / *mean_on);
                }
                gap_to_duration(gap)
            }
            Mode::Diurnal {
                peak_rate_per_sec,
                period_secs,
                t_secs,
            } => {
                // Lewis–Shedler thinning: homogeneous candidates at the
                // peak rate, each kept with probability rate(t)/peak.
                // Both draws come from the one seeded stream, so the
                // schedule replays bit-for-bit.
                let mut gap = 0.0f64;
                loop {
                    let cand = exp_sample(&mut self.rng, *peak_rate_per_sec);
                    gap += cand;
                    *t_secs += cand;
                    if self.rng.next_f64() < diurnal_fraction(*t_secs, *period_secs) {
                        break;
                    }
                }
                gap_to_duration(gap)
            }
        }
    }

    /// Materialize the first `n` arrival offsets from time zero
    /// (cumulative gaps), convenient for schedule precomputation.
    pub fn take_offsets(&mut self, n: usize) -> Vec<SimDuration> {
        let mut at = SimDuration::ZERO;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            at += self.next_gap();
            out.push(at);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_reproducible_and_seed_sensitive() {
        let a: Vec<_> = ArrivalProcess::poisson(7, 100.0).take_offsets(64);
        let b: Vec<_> = ArrivalProcess::poisson(7, 100.0).take_offsets(64);
        let c: Vec<_> = ArrivalProcess::poisson(8, 100.0).take_offsets(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_rate_is_roughly_right() {
        let mut p = ArrivalProcess::poisson(42, 50.0);
        let n = 5000;
        let last = *p.take_offsets(n).last().unwrap();
        let measured = n as f64 / last.as_secs_f64();
        assert!(
            (40.0..60.0).contains(&measured),
            "50/s requested, measured {measured}/s"
        );
    }

    #[test]
    fn gaps_are_strictly_positive_and_bounded() {
        let mut p = ArrivalProcess::poisson(3, 1e9);
        let mut oo = ArrivalProcess::on_off(3, 1e6, 0.01, 0.01);
        for _ in 0..10_000 {
            let g = p.next_gap();
            assert!(g > SimDuration::ZERO && g <= MAX_GAP);
            let g = oo.next_gap();
            assert!(g > SimDuration::ZERO && g <= MAX_GAP);
        }
    }

    #[test]
    fn on_off_is_burstier_than_poisson_at_equal_mean_rate() {
        // Equal long-run rate: on/off with 50% duty at 200/s ≈ 100/s mean.
        let n = 4000;
        let poisson = ArrivalProcess::poisson(9, 100.0).take_offsets(n);
        let bursty = ArrivalProcess::on_off(9, 200.0, 1.0, 1.0).take_offsets(n);
        let cv2 = |offsets: &[SimDuration]| {
            let gaps: Vec<f64> = offsets
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        // Poisson gaps have CV² ≈ 1; on/off modulation adds variance.
        let (p, b) = (cv2(&poisson), cv2(&bursty));
        assert!((0.7..1.4).contains(&p), "poisson cv²={p}");
        assert!(b > 1.5 * p, "bursty cv²={b} not > poisson cv²={p}");
    }

    #[test]
    fn diurnal_is_reproducible_and_bounded() {
        let a = ArrivalProcess::diurnal(11, 100.0, 60.0).take_offsets(2000);
        let b = ArrivalProcess::diurnal(11, 100.0, 60.0).take_offsets(2000);
        let c = ArrivalProcess::diurnal(12, 100.0, 60.0).take_offsets(2000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for w in a.windows(2) {
            let g = w[1] - w[0];
            assert!(g > SimDuration::ZERO && g <= MAX_GAP);
        }
    }

    #[test]
    fn diurnal_rate_follows_the_day_curve() {
        // One 100-second day at peak 200/s: the mid-day half of the
        // period must see several times the arrivals of the two trough
        // quarters combined (rate 10% of peak there).
        let offsets = ArrivalProcess::diurnal(7, 200.0, 100.0).take_offsets(8000);
        let (mut trough, mut peak) = (0usize, 0usize);
        for at in offsets.iter().filter(|at| at.as_secs_f64() < 100.0) {
            let t = at.as_secs_f64();
            if (25.0..75.0).contains(&t) {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > 3 * trough,
            "mid-day {peak} arrivals vs trough {trough}: no diurnal shape"
        );
    }

    #[test]
    fn on_off_inserts_silent_periods() {
        let offsets = ArrivalProcess::on_off(5, 1000.0, 0.05, 0.5).take_offsets(2000);
        let max_gap = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        // Mean OFF period is 500ms; with 2000 arrivals we must cross
        // several OFF windows, so the largest gap is OFF-period sized.
        assert!(
            max_gap >= SimDuration::from_millis(100),
            "max gap {max_gap:?} shows no off periods"
        );
    }
}
