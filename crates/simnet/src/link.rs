//! Fluid-flow network link model.
//!
//! A [`Link`] has a propagation latency and a bandwidth. Concurrent
//! transfers share the bandwidth equally (processor sharing): when a flow
//! starts or finishes, every active flow's completion time is recomputed.
//! This first-order model is what produces the paper's Table 1 behaviour —
//! eight parallel VM clonings contending for a single image-server uplink
//! complete in ~1/7th of the sequential time, not 1/8th, because the warm-up
//! and per-RPC latency parts do not parallelize while the bulk transfer
//! parts share the pipe.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Env, Pid, SimHandle};
use crate::fault::{DetRng, LinkFaultPlan};
use crate::telemetry::{Counter, Histogram, TraceEvent};
use crate::time::{SimDuration, SimTime};

/// A flow is considered complete when fewer than this many bytes remain;
/// guards against floating-point residue.
const COMPLETE_EPS: f64 = 1e-3;

/// What happened to a message handed to [`Link::transfer_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The message reached the far end.
    Delivered,
    /// The message was lost to the link's probabilistic drop process
    /// (after paying latency and serialization — the bytes were carried,
    /// then discarded).
    Dropped,
    /// The message was cut by an outage window: either it entered the
    /// link while down, or the outage started while it was in flight.
    Severed,
}

impl TransferOutcome {
    /// Whether the message arrived.
    pub fn delivered(self) -> bool {
        self == TransferOutcome::Delivered
    }
}

struct Flow {
    remaining: f64,
    pid: Pid,
}

struct FaultState {
    rng: DetRng,
    plan: LinkFaultPlan,
    /// Flow ids severed by an outage start while in flight; the woken
    /// transfer consumes its id from here to learn its fate.
    severed_flows: BTreeSet<u64>,
}

struct LinkState {
    bytes_per_sec: f64,
    latency: SimDuration,
    flows: BTreeMap<u64, Flow>,
    next_flow_id: u64,
    last_update: SimTime,
    /// Generation counter: bumping it invalidates the outstanding
    /// completion callback.
    timer_gen: u64,
    /// Fault injection, absent by default (zero overhead, identical
    /// timeline to a build without the feature).
    faults: Option<FaultState>,
    /// Reused completion buffer for [`Link::on_timer`]: cleared, never
    /// shrunk, so the steady-state timer path performs no allocation.
    completed_buf: Vec<(u64, Pid)>,
}

/// A unidirectional network link with latency and shared bandwidth.
///
/// Cheap to clone (shared state). For a bidirectional path, construct one
/// `Link` per direction, or reuse a single `Link` when modelling a
/// half-duplex bottleneck.
#[derive(Clone)]
pub struct Link {
    handle: SimHandle,
    name: Arc<str>,
    state: Arc<Mutex<LinkState>>,
    /// Telemetry-backed byte/message counters. Registered by name, so two
    /// `Link`s created with the same name on one simulation share them —
    /// the counters then report the aggregate over both (used by the
    /// parallel-cloning scenario, where eight per-host loopback links
    /// reuse one name on purpose).
    bytes: Counter,
    messages: Counter,
    dropped: Counter,
    severed: Counter,
    transfer_times: Histogram,
}

impl Link {
    /// Create a link. `bytes_per_sec` is the bottleneck bandwidth;
    /// `latency` is the one-way propagation delay applied to each
    /// [`Link::transfer`].
    pub fn new(
        handle: &SimHandle,
        name: impl Into<String>,
        bytes_per_sec: f64,
        latency: SimDuration,
    ) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        let name: Arc<str> = name.into().into();
        let tel = handle.telemetry();
        Link {
            handle: handle.clone(),
            bytes: tel.counter("link", format!("{name}.bytes")),
            messages: tel.counter("link", format!("{name}.messages")),
            dropped: tel.counter("link", format!("{name}.dropped")),
            severed: tel.counter("link", format!("{name}.severed")),
            transfer_times: tel.histogram("link", format!("{name}.transfer")),
            name,
            state: Arc::new(Mutex::new(LinkState {
                bytes_per_sec,
                latency,
                flows: BTreeMap::new(),
                next_flow_id: 0,
                last_update: SimTime::ZERO,
                timer_gen: 0,
                faults: None,
                completed_buf: Vec::new(),
            })),
        }
    }

    /// Convenience constructor from megabits per second.
    pub fn from_mbps(
        handle: &SimHandle,
        name: impl Into<String>,
        mbps: f64,
        latency: SimDuration,
    ) -> Self {
        Self::new(handle, name, mbps * 1_000_000.0 / 8.0, latency)
    }

    /// The link name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.state.lock().latency
    }

    /// Nominal bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.state.lock().bytes_per_sec
    }

    /// Total payload bytes carried so far. A view over the telemetry
    /// counter `link/<name>.bytes` (shared across same-named links).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Total non-empty `transfer` calls completed or in flight. A view
    /// over the telemetry counter `link/<name>.messages`.
    pub fn total_messages(&self) -> u64 {
        self.messages.get()
    }

    /// Messages lost to the probabilistic drop process
    /// (`link/<name>.dropped`).
    pub fn total_dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Messages cut by outage windows, entering or in flight
    /// (`link/<name>.severed`).
    pub fn total_severed(&self) -> u64 {
        self.severed.get()
    }

    /// Install a deterministic fault plan on this link: per-message drops
    /// and outage windows. Each outage start schedules a scheduler
    /// callback that severs every in-flight flow at that instant (the
    /// blocked senders resume immediately with
    /// [`TransferOutcome::Severed`]). Installing a plan twice replaces the
    /// drop process but re-registers the new plan's outages.
    pub fn install_faults(&self, plan: LinkFaultPlan) {
        let outages = plan.outages.clone();
        {
            let mut st = self.state.lock();
            st.faults = Some(FaultState {
                rng: DetRng::new(plan.seed),
                plan,
                severed_flows: BTreeSet::new(),
            });
        }
        for w in outages {
            let this = self.clone();
            self.handle.schedule_call(w.start, move || {
                this.sever_in_flight();
            });
        }
    }

    /// Cut every in-flight flow right now (outage start): flows are
    /// removed, their ids recorded as severed, and their senders woken to
    /// observe the failure.
    fn sever_in_flight(&self) {
        let mut st = self.state.lock();
        let now = self.handle.now();
        Self::progress(&mut st, now);
        let ids: Vec<u64> = st.flows.keys().copied().collect();
        let mut pids = Vec::with_capacity(ids.len());
        for id in &ids {
            if let Some(flow) = st.flows.remove(id) {
                pids.push(flow.pid);
            }
        }
        if let Some(f) = st.faults.as_mut() {
            f.severed_flows.extend(ids.iter().copied());
        }
        self.severed.add(pids.len() as u64);
        self.reschedule(&mut st, now);
        drop(st);
        for pid in pids {
            self.handle.schedule_wake(now, pid);
        }
    }

    /// Whether `t` falls inside one of the installed outage windows.
    fn in_outage(st: &LinkState, t: SimTime) -> bool {
        st.faults
            .as_ref()
            .is_some_and(|f| f.plan.outages.iter().any(|w| w.contains(t)))
    }

    /// Transfer `bytes` across the link: one propagation latency plus the
    /// serialization time under fair bandwidth sharing with every other
    /// in-flight transfer. Blocks the calling process in virtual time.
    /// Ignores the delivery outcome — use [`Link::transfer_checked`] on
    /// paths that model loss.
    pub fn transfer(&self, env: &Env, bytes: u64) {
        let _ = self.transfer_checked(env, bytes);
    }

    /// Like [`Link::transfer`], but reports whether the message survived
    /// the link's fault plan. With no plan installed the result is always
    /// [`TransferOutcome::Delivered`] and the timing is identical to
    /// [`Link::transfer`].
    pub fn transfer_checked(&self, env: &Env, bytes: u64) -> TransferOutcome {
        let t0 = env.now();
        // Decide the probabilistic drop up front so the RNG stream is a
        // pure function of the message order, not of link occupancy.
        let pre_dropped = {
            let mut st = self.state.lock();
            match st.faults.as_mut() {
                Some(f) => {
                    let p = f.plan.drop_prob;
                    f.rng.chance(p)
                }
                None => false,
            }
        };
        // Propagation first; bandwidth sharing applies to serialization.
        let latency = self.latency();
        env.sleep(latency);
        let mut outcome = TransferOutcome::Delivered;
        if bytes > 0 {
            let flow_id;
            {
                let mut st = self.state.lock();
                let now = self.handle.now();
                if Self::in_outage(&st, now) {
                    // The message reaches the cut and goes no further; it
                    // never serializes, so it is not counted as carried.
                    self.severed.inc();
                    drop(st);
                    self.finish_trace(env, t0, bytes);
                    return TransferOutcome::Severed;
                }
                self.bytes.add(bytes);
                self.messages.inc();
                Self::progress(&mut st, now);
                let id = st.next_flow_id;
                flow_id = id;
                st.next_flow_id += 1;
                st.flows.insert(
                    id,
                    Flow {
                        remaining: bytes as f64,
                        pid: env.pid(),
                    },
                );
                self.reschedule(&mut st, now);
            }
            env.suspend();
            // Were we woken by completion or by an outage severing us?
            let was_severed = {
                let mut st = self.state.lock();
                match st.faults.as_mut() {
                    Some(f) => f.severed_flows.remove(&flow_id),
                    None => false,
                }
            };
            if was_severed {
                outcome = TransferOutcome::Severed;
            }
        } else {
            let st = self.state.lock();
            if Self::in_outage(&st, env.now()) {
                drop(st);
                self.severed.inc();
                self.finish_trace(env, t0, bytes);
                return TransferOutcome::Severed;
            }
        }
        if outcome.delivered() && pre_dropped {
            self.dropped.inc();
            outcome = TransferOutcome::Dropped;
        }
        self.finish_trace(env, t0, bytes);
        outcome
    }

    fn finish_trace(&self, env: &Env, t0: SimTime, bytes: u64) {
        let elapsed = env.now() - t0;
        self.transfer_times.record(elapsed);
        let tel = self.handle.telemetry();
        if tel.trace_enabled() {
            tel.trace(
                TraceEvent::new(env.now(), "link", "transfer")
                    .bytes(bytes)
                    .duration(elapsed)
                    .label("link", self.name.to_string()),
            );
        }
    }

    /// Time a transfer of `bytes` would take on an otherwise idle link
    /// (latency + serialization), without performing it. Used by analytic
    /// baselines like the SCP full-copy model.
    pub fn idle_transfer_time(&self, bytes: u64) -> SimDuration {
        let st = self.state.lock();
        st.latency + SimDuration::from_secs_f64(bytes as f64 / st.bytes_per_sec)
    }

    /// Advance every active flow to `now` at the current fair-share rate.
    fn progress(st: &mut LinkState, now: SimTime) {
        let elapsed = now.saturating_since(st.last_update).as_secs_f64();
        st.last_update = now;
        let n = st.flows.len();
        if n == 0 || elapsed <= 0.0 {
            return;
        }
        let rate = st.bytes_per_sec / n as f64;
        for flow in st.flows.values_mut() {
            flow.remaining = (flow.remaining - rate * elapsed).max(0.0);
        }
    }

    /// Schedule (or re-schedule) the completion callback for the earliest
    /// finishing flow.
    fn reschedule(&self, st: &mut LinkState, now: SimTime) {
        st.timer_gen += 1;
        let gen = st.timer_gen;
        if st.flows.is_empty() {
            return;
        }
        let min_remaining = st
            .flows
            .values()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        let rate = st.bytes_per_sec / st.flows.len() as f64;
        // Round UP to the next nanosecond: a sub-nanosecond residual must
        // still advance the clock, or the timer would re-fire at the same
        // instant forever (livelock) while `progress` subtracts nothing.
        let dt = SimDuration::from_nanos(((min_remaining / rate).max(0.0) * 1e9).ceil() as u64);
        let this = self.clone();
        self.handle.schedule_call(now + dt, move || {
            this.on_timer(gen);
        });
    }

    fn on_timer(&self, gen: u64) {
        let mut st = self.state.lock();
        if st.timer_gen != gen {
            return; // superseded by a newer flow arrival/departure
        }
        let now = self.handle.now();
        // Fused per-timer pass. The naive form — `progress` (O(n)
        // update), a completion scan (O(n), fresh Vec), and
        // `reschedule`'s min-scan (O(n)) — walks the flow map three
        // times and allocates on every timer event. This single walk
        // performs the identical arithmetic on identical operands (same
        // fair-share decrement, same clamp, same ascending-id wake
        // order out of the BTreeMap, same rounding in the re-arm), so
        // the event timeline is bit-for-bit unchanged; it just touches
        // each flow once and reuses one buffer.
        let elapsed = now.saturating_since(st.last_update).as_secs_f64();
        st.last_update = now;
        let n = st.flows.len();
        let dec = if n > 0 && elapsed > 0.0 {
            st.bytes_per_sec / n as f64 * elapsed
        } else {
            0.0
        };
        let mut min_left = f64::INFINITY;
        let mut completed = std::mem::take(&mut st.completed_buf);
        completed.clear();
        for (id, flow) in st.flows.iter_mut() {
            let left = (flow.remaining - dec).max(0.0);
            flow.remaining = left;
            if left <= COMPLETE_EPS {
                completed.push((*id, flow.pid));
            } else {
                min_left = min_left.min(left);
            }
        }
        for (id, pid) in &completed {
            st.flows.remove(id);
            self.handle.schedule_wake(now, *pid);
        }
        completed.clear();
        st.completed_buf = completed;
        st.timer_gen += 1;
        let gen = st.timer_gen;
        if st.flows.is_empty() {
            return;
        }
        let rate = st.bytes_per_sec / st.flows.len() as f64;
        let dt = SimDuration::from_nanos(((min_left / rate).max(0.0) * 1e9).ceil() as u64);
        let this = self.clone();
        self.handle.schedule_call(now + dt, move || {
            this.on_timer(gen);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_transfer_takes_latency_plus_serialization() {
        let sim = Simulation::new();
        let h = sim.handle();
        // 1 MB/s, 100 ms latency; 2 MB transfer => 0.1 + 2.0 = 2.1 s.
        let link = Link::new(&h, "wan", 1_000_000.0, SimDuration::from_millis(100));
        let l2 = link.clone();
        sim.spawn("xfer", move |env| {
            l2.transfer(&env, 2_000_000);
            assert!((env.now().as_secs_f64() - 2.1).abs() < 1e-6);
        });
        let end = sim.run();
        assert!((secs(end) - 2.1).abs() < 1e-6);
        assert_eq!(link.total_bytes(), 2_000_000);
    }

    #[test]
    fn two_equal_flows_share_bandwidth_fairly() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::new(&h, "l", 1_000_000.0, SimDuration::ZERO);
        for i in 0..2 {
            let l = link.clone();
            sim.spawn(format!("f{i}"), move |env| {
                l.transfer(&env, 1_000_000);
                // Two 1 MB flows at 1 MB/s shared => both finish at 2 s.
                assert!((env.now().as_secs_f64() - 2.0).abs() < 1e-6);
            });
        }
        let end = sim.run();
        assert!((secs(end) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_slows_earlier_flow() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::new(&h, "l", 1_000_000.0, SimDuration::ZERO);
        let l1 = link.clone();
        let l2 = link.clone();
        let t1 = Arc::new(AtomicU64::new(0));
        let t2 = Arc::new(AtomicU64::new(0));
        let t1c = t1.clone();
        let t2c = t2.clone();
        sim.spawn("early", move |env| {
            l1.transfer(&env, 2_000_000);
            t1c.store(env.now().as_nanos(), AO::SeqCst);
        });
        sim.spawn("late", move |env| {
            env.sleep(SimDuration::from_secs(1));
            l2.transfer(&env, 500_000);
            t2c.store(env.now().as_nanos(), AO::SeqCst);
        });
        sim.run();
        // Early: 1 MB in the first second alone, then shares.
        // Late: 0.5 MB at 0.5 MB/s => finishes at t=2.0.
        // Early then has 0.5 MB left at full rate => t=2.5.
        assert!((t2.load(AO::SeqCst) as f64 / 1e9 - 2.0).abs() < 1e-6);
        assert!((t1.load(AO::SeqCst) as f64 / 1e9 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn n_parallel_flows_scale_like_processor_sharing() {
        // 8 flows of B bytes each on one link take the same total time as
        // 8 sequential flows (bandwidth is conserved), but each individual
        // flow sees 1/8th rate.
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::new(&h, "l", 8_000_000.0, SimDuration::ZERO);
        for i in 0..8 {
            let l = link.clone();
            sim.spawn(format!("f{i}"), move |env| {
                l.transfer(&env, 8_000_000);
                assert!((env.now().as_secs_f64() - 8.0).abs() < 1e-6);
            });
        }
        let end = sim.run();
        assert!((secs(end) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::new(&h, "l", 1e9, SimDuration::from_millis(35));
        let l = link.clone();
        sim.spawn("ping", move |env| {
            l.transfer(&env, 0);
            assert_eq!(env.now().as_nanos(), 35_000_000);
        });
        sim.run();
        assert_eq!(link.total_messages(), 0);
    }

    #[test]
    fn fault_free_checked_transfer_matches_legacy_timing() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::new(&h, "wan", 1_000_000.0, SimDuration::from_millis(100));
        let l2 = link.clone();
        sim.spawn("xfer", move |env| {
            assert_eq!(
                l2.transfer_checked(&env, 2_000_000),
                TransferOutcome::Delivered
            );
            assert!((env.now().as_secs_f64() - 2.1).abs() < 1e-6);
        });
        sim.run();
        assert_eq!(link.total_dropped(), 0);
        assert_eq!(link.total_severed(), 0);
    }

    #[test]
    fn seeded_drops_are_deterministic_and_pay_full_cost() {
        let run = |seed: u64| -> (Vec<TransferOutcome>, u64) {
            let sim = Simulation::new();
            let h = sim.handle();
            let link = Link::new(&h, "l", 1_000_000.0, SimDuration::ZERO);
            link.install_faults(LinkFaultPlan::new(seed).drop_prob(0.3));
            let outcomes = Arc::new(Mutex::new(Vec::new()));
            let l = link.clone();
            let o = outcomes.clone();
            sim.spawn("xfer", move |env| {
                for _ in 0..50 {
                    o.lock().push(l.transfer_checked(&env, 10_000));
                }
            });
            let end = sim.run();
            // Dropped messages still pay serialization: 50 × 10 ms.
            assert_eq!(end.as_nanos(), 500_000_000);
            let got = outcomes.lock().clone();
            (got, link.total_dropped())
        };
        let (a, dropped_a) = run(11);
        let (b, dropped_b) = run(11);
        let (c, _) = run(12);
        assert_eq!(a, b, "same seed, same fate per message");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(dropped_a > 0 && dropped_a < 50, "some but not all dropped");
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(
            a.iter().filter(|o| **o == TransferOutcome::Dropped).count() as u64,
            dropped_a
        );
    }

    #[test]
    fn outage_severs_in_flight_flow_and_blocks_new_entries() {
        let sim = Simulation::new();
        let h = sim.handle();
        // 1 MB/s, no latency; 4 MB transfer would end at t=4s, but an
        // outage at t=1s severs it.
        let link = Link::new(&h, "l", 1_000_000.0, SimDuration::ZERO);
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        link.install_faults(LinkFaultPlan::new(0).outage(t(1), t(3)));
        let l = link.clone();
        sim.spawn("xfer", move |env| {
            let got = l.transfer_checked(&env, 4_000_000);
            assert_eq!(got, TransferOutcome::Severed);
            assert_eq!(env.now().as_nanos(), 1_000_000_000);
            // Retry while the link is down: severed on entry, at once.
            let got = l.transfer_checked(&env, 1_000_000);
            assert_eq!(got, TransferOutcome::Severed);
            assert_eq!(env.now().as_nanos(), 1_000_000_000);
            // Wait out the outage; the link works again.
            env.sleep(SimDuration::from_secs(2));
            let got = l.transfer_checked(&env, 1_000_000);
            assert_eq!(got, TransferOutcome::Delivered);
            assert_eq!(env.now().as_nanos(), 4_000_000_000);
        });
        sim.run();
        assert_eq!(link.total_severed(), 2);
    }

    #[test]
    fn idle_transfer_time_matches_actual_idle_transfer() {
        let sim = Simulation::new();
        let h = sim.handle();
        let link = Link::from_mbps(&h, "wan", 25.0, SimDuration::from_millis(17));
        let est = link.idle_transfer_time(10_000_000);
        let l = link.clone();
        sim.spawn("xfer", move |env| {
            let t0 = env.now();
            l.transfer(&env, 10_000_000);
            let actual = env.now() - t0;
            let diff = actual.as_secs_f64() - est.as_secs_f64();
            assert!(diff.abs() < 1e-6, "estimate {est:?} vs actual {actual:?}");
        });
        sim.run();
    }
}
