//! Synchronization primitives for simulated processes.
//!
//! All of these are *virtual-time* primitives: blocking never consumes
//! simulated time by itself; a blocked process resumes at the instant the
//! condition it waits for becomes true. Because the scheduler runs exactly
//! one process at a time, the register-then-suspend pattern used throughout
//! is free of lost-wakeup races (see [`crate::engine`]).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Env, Pid, SimHandle};

// ---------------------------------------------------------------------------
// Signal: a one-shot broadcast event
// ---------------------------------------------------------------------------

struct SignalInner {
    set: bool,
    waiters: Vec<Pid>,
}

/// A one-shot broadcast flag: processes wait until some other process (or a
/// scheduler callback) sets it. Used for process joins, barriers and
/// middleware "session finished" notifications.
#[derive(Clone)]
pub struct Signal {
    handle: SimHandle,
    inner: Arc<Mutex<SignalInner>>,
}

impl Signal {
    /// Create an unset signal.
    pub fn new(handle: &SimHandle) -> Self {
        Signal {
            handle: handle.clone(),
            inner: Arc::new(Mutex::new(SignalInner {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Whether the signal has been set.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Set the signal and wake all waiters at the current instant.
    pub fn set(&self) {
        let waiters = {
            let mut s = self.inner.lock();
            s.set = true;
            std::mem::take(&mut s.waiters)
        };
        let now = self.handle.now();
        for pid in waiters {
            self.handle.schedule_wake(now, pid);
        }
    }

    /// Block the calling process until the signal is set. Returns
    /// immediately if already set.
    pub fn wait(&self, env: &Env) {
        {
            let mut s = self.inner.lock();
            if s.set {
                return;
            }
            s.waiters.push(env.pid());
        }
        env.suspend();
        debug_assert!(self.inner.lock().set);
    }
}

// ---------------------------------------------------------------------------
// Channel: unbounded FIFO message queue
// ---------------------------------------------------------------------------

struct ChannelInner<T> {
    queue: VecDeque<T>,
    waiters: VecDeque<Pid>,
    /// Pids whose deadline timer fired while they were registered in
    /// `waiters`: the timer moves the pid here (under this lock) before
    /// waking it, so exactly one waker ever resumes a timed receiver and
    /// the receiver can tell a timeout wake from a message wake.
    timed_out: Vec<Pid>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of a simulated channel. Cloning increases the sender count;
/// when all senders drop, blocked receivers observe disconnection.
pub struct Sender<T> {
    handle: SimHandle,
    inner: Arc<Mutex<ChannelInner<T>>>,
}

/// Receiving half of a simulated channel. Dropping the receiver discards
/// queued messages and makes subsequent sends no-ops.
pub struct Receiver<T> {
    inner: Arc<Mutex<ChannelInner<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let dropped = {
            let mut c = self.inner.lock();
            c.receiver_alive = false;
            std::mem::take(&mut c.queue)
        };
        // Dropped outside the lock: destructors may touch other channels
        // (e.g. an RPC envelope's reply sender waking its caller).
        drop(dropped);
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// Why a [`Receiver::recv_deadline`] returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message queued.
    Timeout,
    /// All senders dropped with the queue empty (same as [`Disconnected`]).
    Disconnected,
}

/// Create an unbounded simulated channel.
pub fn channel<T: Send + 'static>(handle: &SimHandle) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Mutex::new(ChannelInner {
        queue: VecDeque::new(),
        waiters: VecDeque::new(),
        timed_out: Vec::new(),
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            handle: handle.clone(),
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            handle: self.handle.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waiters = {
            let mut c = self.inner.lock();
            c.senders -= 1;
            if c.senders == 0 {
                std::mem::take(&mut c.waiters)
            } else {
                VecDeque::new()
            }
        };
        let now = self.handle.now();
        for pid in waiters {
            self.handle.schedule_wake(now, pid);
        }
    }
}

impl<T: Send + 'static> Sender<T> {
    /// Enqueue a message at the current instant, waking one blocked
    /// receiver if present. Never blocks (unbounded queue). If the
    /// receiver has been dropped the value is discarded — this is what
    /// makes a dropped RPC listener look like a reset connection.
    pub fn send(&self, value: T) {
        let woken = {
            let mut c = self.inner.lock();
            if !c.receiver_alive {
                return; // value dropped here, releasing any reply handles
            }
            c.queue.push_back(value);
            c.waiters.pop_front()
        };
        if let Some(pid) = woken {
            self.handle.schedule_wake(self.handle.now(), pid);
        }
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Dequeue the next message, blocking in virtual time until one is
    /// available. Returns `Err(Disconnected)` once the queue is drained and
    /// every sender has been dropped.
    pub fn recv(&self, env: &Env) -> Result<T, Disconnected> {
        loop {
            {
                let mut c = self.inner.lock();
                if let Some(v) = c.queue.pop_front() {
                    return Ok(v);
                }
                if c.senders == 0 {
                    return Err(Disconnected);
                }
                c.waiters.push_back(env.pid());
            }
            env.suspend();
        }
    }

    /// Like [`Receiver::recv`], but give up once simulated time reaches
    /// `deadline`. A message queued at the exact deadline instant (but
    /// earlier in event order) wins over the timeout. The internal timer is
    /// cancellable, so an unfired deadline leaves no trace on the timeline
    /// — the simulation still ends at its natural final event.
    pub fn recv_deadline(
        &self,
        env: &Env,
        deadline: crate::time::SimTime,
    ) -> Result<T, RecvTimeoutError> {
        let handle = env.handle().clone();
        let pid = env.pid();
        loop {
            {
                let mut c = self.inner.lock();
                // Consume our timeout marker first so it can never go stale;
                // a queued message still wins over a simultaneous timeout.
                let fired = match c.timed_out.iter().position(|p| *p == pid) {
                    Some(pos) => {
                        c.timed_out.swap_remove(pos);
                        true
                    }
                    None => false,
                };
                if let Some(v) = c.queue.pop_front() {
                    return Ok(v);
                }
                if fired || handle.now() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                if c.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                c.waiters.push_back(pid);
            }
            // Arm the deadline timer for this wait leg. The callback and
            // `send` race only under the channel lock: whoever removes the
            // pid from `waiters` is the single waker, so no stale second
            // wake can ever hit a later wait.
            let inner = self.inner.clone();
            let wake_handle = handle.clone();
            let token = handle.schedule_call_cancellable(deadline, move || {
                let fired = {
                    let mut c = inner.lock();
                    match c.waiters.iter().position(|p| *p == pid) {
                        Some(pos) => {
                            c.waiters.remove(pos);
                            c.timed_out.push(pid);
                            true
                        }
                        None => false, // a send or disconnect got there first
                    }
                };
                if fired {
                    wake_handle.schedule_wake(wake_handle.now(), pid);
                }
            });
            env.suspend();
            token.cancel();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Resource: FIFO counting semaphore (disk arms, CPU slots, ...)
// ---------------------------------------------------------------------------

struct ResourceInner {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<Pid>,
}

/// A FIFO counting semaphore. Grants are handed directly from releaser to
/// the longest-waiting process, so admission order is fair and
/// deterministic (no barging).
#[derive(Clone)]
pub struct Resource {
    handle: SimHandle,
    inner: Arc<Mutex<ResourceInner>>,
}

/// RAII guard for a [`Resource`] grant.
pub struct ResourceGuard {
    res: Resource,
}

impl Resource {
    /// Create a resource with `capacity` simultaneous grants.
    pub fn new(handle: &SimHandle, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            handle: handle.clone(),
            inner: Arc::new(Mutex::new(ResourceInner {
                capacity,
                in_use: 0,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquire one grant, blocking in virtual time if none is free.
    pub fn acquire(&self, env: &Env) -> ResourceGuard {
        let granted = {
            let mut r = self.inner.lock();
            if r.in_use < r.capacity && r.waiters.is_empty() {
                r.in_use += 1;
                true
            } else {
                r.waiters.push_back(env.pid());
                false
            }
        };
        if !granted {
            // Ownership is transferred to us by the releaser before the
            // wake, so no re-check loop is needed (and FIFO order holds).
            env.suspend();
        }
        ResourceGuard { res: self.clone() }
    }

    /// Number of grants currently held.
    pub fn in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    fn release(&self) {
        let woken = {
            let mut r = self.inner.lock();
            if let Some(pid) = r.waiters.pop_front() {
                // Hand the grant directly to the next waiter; `in_use`
                // stays constant across the transfer.
                Some(pid)
            } else {
                r.in_use -= 1;
                None
            }
        };
        if let Some(pid) = woken {
            self.handle.schedule_wake(self.handle.now(), pid);
        }
    }
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        self.res.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::{SimDuration, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    #[test]
    fn channel_delivers_in_fifo_order_without_time_cost() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (tx, rx) = channel::<u32>(&h);
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        sim.spawn("recv", move |env| {
            for _ in 0..3 {
                got2.lock().push(rx.recv(&env).unwrap());
            }
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(1));
        });
        sim.spawn("send", move |env| {
            env.sleep(SimDuration::from_secs(1));
            tx.send(1);
            tx.send(2);
            tx.send(3);
        });
        sim.run();
        assert_eq!(*got.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn channel_disconnects_when_all_senders_drop() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (tx, rx) = channel::<u32>(&h);
        sim.spawn("recv", move |env| {
            assert_eq!(rx.recv(&env), Ok(7));
            assert_eq!(rx.recv(&env), Err(Disconnected));
        });
        sim.spawn("send", move |env| {
            env.sleep(SimDuration::from_millis(5));
            tx.send(7);
            // tx drops here
        });
        sim.run();
    }

    #[test]
    fn recv_deadline_times_out_and_then_receives() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (tx, rx) = channel::<u32>(&h);
        sim.spawn("recv", move |env| {
            // Message arrives at t=3s; a 1s deadline must time out at 1s.
            let deadline = env.now() + SimDuration::from_secs(1);
            assert_eq!(
                rx.recv_deadline(&env, deadline),
                Err(RecvTimeoutError::Timeout)
            );
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(1));
            // A later deadline that is never hit: message wins, and the
            // unfired timer must not extend the simulation.
            let deadline = env.now() + SimDuration::from_secs(100);
            assert_eq!(rx.recv_deadline(&env, deadline), Ok(9));
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(3));
        });
        sim.spawn("send", move |env| {
            env.sleep(SimDuration::from_secs(3));
            tx.send(9);
        });
        let end = sim.run();
        // Not 101s: the cancelled deadline timer left no trace.
        assert_eq!(end.as_nanos(), 3_000_000_000);
    }

    #[test]
    fn recv_deadline_disconnect_beats_timeout() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (tx, rx) = channel::<u32>(&h);
        sim.spawn("recv", move |env| {
            let deadline = env.now() + SimDuration::from_secs(10);
            assert_eq!(
                rx.recv_deadline(&env, deadline),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(2));
        });
        sim.spawn("send", move |env| {
            env.sleep(SimDuration::from_secs(2));
            drop(tx);
        });
        let end = sim.run();
        assert_eq!(end.as_nanos(), 2_000_000_000);
    }

    #[test]
    fn recv_deadline_message_at_exact_deadline_wins() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (tx, rx) = channel::<u32>(&h);
        // Sender spawned first, so at the shared instant its send event
        // precedes the receiver's timer in sequence order.
        sim.spawn("send", move |env| {
            env.sleep(SimDuration::from_secs(1));
            tx.send(5);
        });
        sim.spawn("recv", move |env| {
            let deadline = env.now() + SimDuration::from_secs(1);
            assert_eq!(rx.recv_deadline(&env, deadline), Ok(5));
        });
        sim.run();
    }

    #[test]
    fn resource_serializes_access_fifo() {
        let sim = Simulation::new();
        let h = sim.handle();
        let res = Resource::new(&h, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let res = res.clone();
            let order = order.clone();
            sim.spawn(format!("p{i}"), move |env| {
                let _g = res.acquire(&env);
                order.lock().push((i, env.now().as_nanos()));
                env.sleep(SimDuration::from_secs(1));
            });
        }
        let end = sim.run();
        // One at a time: entries at t=0s, 1s, 2s in spawn order.
        assert_eq!(
            *order.lock(),
            vec![(0, 0), (1, 1_000_000_000), (2, 2_000_000_000)]
        );
        assert_eq!(end.as_nanos(), 3_000_000_000);
    }

    #[test]
    fn resource_capacity_two_admits_pairs() {
        let sim = Simulation::new();
        let h = sim.handle();
        let res = Resource::new(&h, 2);
        let max_concurrent = Arc::new(AtomicU64::new(0));
        let cur = Arc::new(AtomicU64::new(0));
        for i in 0..4u32 {
            let res = res.clone();
            let max_concurrent = max_concurrent.clone();
            let cur = cur.clone();
            sim.spawn(format!("p{i}"), move |env| {
                let _g = res.acquire(&env);
                let c = cur.fetch_add(1, AO::SeqCst) + 1;
                max_concurrent.fetch_max(c, AO::SeqCst);
                env.sleep(SimDuration::from_secs(1));
                cur.fetch_sub(1, AO::SeqCst);
            });
        }
        let end = sim.run();
        assert_eq!(max_concurrent.load(AO::SeqCst), 2);
        assert_eq!(end.as_nanos(), 2_000_000_000);
    }

    #[test]
    fn signal_wakes_all_waiters_and_is_idempotent() {
        let sim = Simulation::new();
        let h = sim.handle();
        let sig = Signal::new(&h);
        let woken = Arc::new(AtomicU64::new(0));
        for i in 0..3 {
            let sig = sig.clone();
            let woken = woken.clone();
            sim.spawn(format!("w{i}"), move |env| {
                sig.wait(&env);
                woken.fetch_add(1, AO::SeqCst);
                assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(2));
            });
        }
        let sig2 = sig.clone();
        sim.spawn("setter", move |env| {
            env.sleep(SimDuration::from_secs(2));
            sig2.set();
            sig2.set(); // idempotent
        });
        sim.run();
        assert_eq!(woken.load(AO::SeqCst), 3);
        assert!(sig.is_set());
    }
}
