//! Virtual time for the discrete-event simulation.
//!
//! All simulated costs (network latency, byte transfer, disk seeks, CPU
//! compute, codec throughput) are expressed as [`SimDuration`] values and
//! advance a [`SimTime`] clock. Wall-clock time never enters simulation
//! results, which is what makes every experiment in this repository
//! deterministic and laptop-scale.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked distance to a later instant.
    pub fn checked_until(self, later: SimTime) -> Option<SimDuration> {
        later.0.checked_sub(self.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; this keeps fluid-flow link arithmetic total.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        // Saturate rather than wrap for absurdly long spans.
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 60.0 {
            write!(f, "{}:{:05.2}", (s / 60.0) as u64, s % 60.0)
        } else {
            write!(f, "{s:.2}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!(((t + d) - t).as_nanos(), 3_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2_000).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!((a - b), SimDuration::ZERO);
        assert_eq!((b - a).as_nanos(), 10);
        assert_eq!(a.checked_until(b).unwrap().as_nanos(), 10);
        assert!(b.checked_until(a).is_none());
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "1:30.00");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.50s");
    }
}
