//! Hierarchical timing wheel (calendar queue) for the event kernel.
//!
//! The kernel's event queue must pop events in exact `(time, seq)` order.
//! A `BinaryHeap` does that in `O(log n)` per operation with poor cache
//! behavior once the pending set grows to fleet scale (tens of thousands
//! of in-flight timers at 10k clones). The wheel replaces it with two
//! fixed-size slot arrays plus a small heap per "current instant" and a
//! heap-backed overflow level, giving near-`O(1)` push/pop for the dense
//! near-future traffic the simulation actually generates while remaining
//! exactly order-equivalent to the heap (see the
//! `wheel_matches_heap_reference` proptest below).
//!
//! ## Structure
//!
//! Let `W0 = 2^L0_SHIFT` ns be the level-0 slot width and `S = 2^RING_BITS`
//! the slot count per level.
//!
//! - **`cur`**: a small min-heap holding entries whose level-0 slot is
//!   `<= c0` (the drained cursor slot). The global minimum always lives
//!   here once [`TimingWheel::prime`] has run.
//! - **Level 0**: ring of `S` slots, each `W0` wide, covering exactly the
//!   level-1 slot `c1`: absolute L0 slots `[c1*S, (c1+1)*S)`.
//! - **Level 1**: ring of `S` slots, each `S*W0` wide, covering the fixed
//!   window `[w1, w1+S)` of absolute L1 slots.
//! - **`overflow`**: min-heap for everything at or past the level-1
//!   window's end.
//!
//! ## Invariants
//!
//! 1. Entries in `cur` have `l0slot(e) <= c0`; slot rings and overflow
//!    only hold strictly later entries, so `cur`'s minimum is global.
//! 2. Occupancy bitmaps (one `u64` word per 64 slots) make finding the
//!    next non-empty slot a few word scans; set bits only exist *after*
//!    the cursor, so a wrap-around ring scan visits slots in absolute
//!    order.
//! 3. Draining never reorders: a slot's entries are re-heapified into
//!    `cur` (level 0) or re-binned (level 1 → level 0, overflow →
//!    level 1) keyed by the same `(time, seq)`.
//!
//! Because simulated time never runs backwards (`push` is only called
//! with `time >= now`), a pushed entry is never earlier than the cursor
//! except at the current instant, which `cur` handles.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the level-0 slot width in nanoseconds (1024 ns ≈ 1 µs).
const L0_SHIFT: u32 = 10;
/// log2 of the slot count per ring (4096 slots).
const RING_BITS: u32 = 12;
/// Slots per ring.
const RING: usize = 1 << RING_BITS;
/// Ring index mask.
const RING_MASK: u64 = (RING as u64) - 1;
/// Bitmap words per ring.
const WORDS: usize = RING / 64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
    // first — the same trick the old kernel heap used.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Fixed-size occupancy bitmap over one ring.
struct Bitmap([u64; WORDS]);

impl Bitmap {
    fn new() -> Self {
        Bitmap([0; WORDS])
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.0[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.0[idx >> 6] &= !(1u64 << (idx & 63));
    }

    fn any(&self) -> bool {
        self.0.iter().any(|w| *w != 0)
    }

    /// First set index in ring order starting at `from` (inclusive),
    /// wrapping once around. `None` when the bitmap is empty.
    fn next_set_from(&self, from: usize) -> Option<usize> {
        let start_word = from >> 6;
        let start_bit = from & 63;
        // First (partial) word.
        let w = self.0[start_word] & (!0u64 << start_bit);
        if w != 0 {
            return Some((start_word << 6) + w.trailing_zeros() as usize);
        }
        // Remaining words, wrapping.
        for off in 1..=WORDS {
            let wi = (start_word + off) % WORDS;
            let w = self.0[wi];
            if w != 0 {
                return Some((wi << 6) + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// The kernel event queue: pops strictly in `(time, seq)` order.
pub(crate) struct TimingWheel<T> {
    /// Entries at or before the cursor slot `c0` (includes everything at
    /// the current instant). The global minimum is here after `prime`.
    cur: BinaryHeap<Entry<T>>,
    /// Level-0 ring: absolute L0 slots `[c1*RING, (c1+1)*RING)`.
    l0: Vec<Vec<Entry<T>>>,
    l0_occ: Bitmap,
    /// Absolute level-0 cursor: slots `<= c0` have been drained to `cur`.
    c0: u64,
    /// Level-1 ring: absolute L1 slots `[w1, w1 + RING)`.
    l1: Vec<Vec<Entry<T>>>,
    l1_occ: Bitmap,
    /// Absolute L1 slot currently expanded into the level-0 ring.
    c1: u64,
    /// Start of the level-1 window (absolute L1 slot index).
    w1: u64,
    /// Entries at or past the level-1 window end.
    overflow: BinaryHeap<Entry<T>>,
    len: usize,
}

#[inline]
fn l0_slot(t: SimTime) -> u64 {
    t.as_nanos() >> L0_SHIFT
}

impl<T> TimingWheel<T> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            cur: BinaryHeap::new(),
            l0: (0..RING).map(|_| Vec::new()).collect(),
            l0_occ: Bitmap::new(),
            c0: 0,
            l1: (0..RING).map(|_| Vec::new()).collect(),
            l1_occ: Bitmap::new(),
            c1: 0,
            w1: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Pending entry count (used by the test suite's invariant checks;
    /// the kernel tracks its own liveness separately).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Insert an entry. `time` must be at or after the last popped time
    /// (the kernel only schedules at or after `now`); entries at the
    /// current instant land in `cur` directly.
    pub(crate) fn push(&mut self, time: SimTime, seq: u64, value: T) {
        let e = Entry { time, seq, value };
        let s0 = l0_slot(time);
        self.len += 1;
        if s0 <= self.c0 {
            self.cur.push(e);
            return;
        }
        if s0 < (self.c1 + 1) << RING_BITS {
            let idx = (s0 & RING_MASK) as usize;
            self.l0[idx].push(e);
            self.l0_occ.set(idx);
            return;
        }
        let s1 = s0 >> RING_BITS;
        if s1 < self.w1 + RING as u64 {
            let idx = (s1 & RING_MASK) as usize;
            self.l1[idx].push(e);
            self.l1_occ.set(idx);
            return;
        }
        self.overflow.push(e);
    }

    /// Advance cursors until the global minimum entry sits in `cur` (or
    /// the wheel is empty).
    fn prime(&mut self) {
        while self.cur.is_empty() && self.len > 0 {
            // Next non-empty level-0 slot after c0 within the expanded
            // level-1 slot: set bits only exist after the cursor, so a
            // wrapping ring scan visits them in absolute order.
            if self.l0_occ.any() {
                let from = ((self.c0 + 1) & RING_MASK) as usize;
                let idx = self.l0_occ.next_set_from(from).expect("occupied ring");
                // Recover the absolute slot: it is the unique slot in
                // ((c0, (c1+1)*RING)) congruent to idx mod RING.
                let base = self.c1 << RING_BITS;
                let abs = base + idx as u64;
                debug_assert!(abs > self.c0);
                self.c0 = abs;
                self.l0_occ.clear(idx);
                // Drain preserves the slot Vec's capacity for reuse.
                for e in self.l0[idx].drain(..) {
                    debug_assert_eq!(l0_slot(e.time), abs);
                    self.cur.push(e);
                }
                continue;
            }
            // Level 0 exhausted: expand the next non-empty level-1 slot.
            if self.l1_occ.any() {
                let from = ((self.c1 + 1) & RING_MASK) as usize;
                let idx = self.l1_occ.next_set_from(from).expect("occupied ring");
                // Unique absolute L1 slot in (c1, w1+RING) congruent to idx.
                let c1_idx = (self.c1 & RING_MASK) as usize;
                let delta = (idx + RING - c1_idx) % RING;
                let abs = self.c1
                    + if delta == 0 {
                        RING as u64
                    } else {
                        delta as u64
                    };
                debug_assert!(abs > self.c1 && abs < self.w1 + RING as u64);
                self.c1 = abs;
                self.c0 = (abs << RING_BITS).saturating_sub(1).max(self.c0);
                self.l1_occ.clear(idx);
                let drained = std::mem::take(&mut self.l1[idx]);
                for e in drained {
                    let s0 = l0_slot(e.time);
                    debug_assert_eq!(s0 >> RING_BITS, abs);
                    let i0 = (s0 & RING_MASK) as usize;
                    self.l0[i0].push(e);
                    self.l0_occ.set(i0);
                }
                continue;
            }
            // Both rings exhausted: open a fresh level-1 window at the
            // overflow minimum and re-bin everything that fits.
            debug_assert!(!self.overflow.is_empty());
            let min_t = self.overflow.peek().expect("non-empty overflow").time;
            let w1 = l0_slot(min_t) >> RING_BITS;
            self.w1 = w1;
            // Position cursors just before the window so the scans above
            // pick up the first occupied slot.
            self.c1 = w1.saturating_sub(1).max(self.c1);
            let window_end_s0 = (self.w1 + RING as u64) << RING_BITS;
            while let Some(e) = self.overflow.peek() {
                if l0_slot(e.time) >= window_end_s0 {
                    break;
                }
                let e = self.overflow.pop().expect("peeked entry");
                let s1 = l0_slot(e.time) >> RING_BITS;
                let idx = (s1 & RING_MASK) as usize;
                self.l1[idx].push(e);
                self.l1_occ.set(idx);
            }
        }
    }

    /// Key and value of the earliest entry without removing it.
    pub(crate) fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        self.prime();
        self.cur.peek().map(|e| (e.time, e.seq, &e.value))
    }

    /// Remove and return the earliest entry.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.prime();
        let e = self.cur.pop()?;
        self.len -= 1;
        Some((e.time, e.seq, e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_seq_order_across_levels() {
        let mut w = TimingWheel::new();
        // Entries spanning cur / L0 / L1 / overflow, pushed out of order.
        let times: Vec<u64> = vec![
            0,
            1,
            5,
            1_000,              // same L0 slot as 1 at shift 10? 1000>>10=0 → cur region
            100_000,            // L0
            3_000_000,          // L0 (within first L1 slot: < 4096*1024)
            50_000_000,         // L1
            10_000_000_000,     // L1 (window is ~17.2 s)
            40_000_000_000,     // overflow
            90_000_000_000_000, // deep overflow
        ];
        // Push in a scrambled order.
        for (seq, &i) in [8usize, 2, 9, 0, 5, 7, 1, 4, 6, 3].iter().enumerate() {
            w.push(SimTime::from_nanos(times[i]), seq as u64, times[i]);
        }
        let mut got = Vec::new();
        while let Some((t, _s, v)) = w.pop() {
            assert_eq!(t.as_nanos(), v);
            got.push(v);
        }
        let mut want = times.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut w = TimingWheel::new();
        for seq in (0..64u64).rev() {
            w.push(SimTime::from_nanos(7_777), seq, seq);
        }
        for want in 0..64u64 {
            let (_, s, v) = w.pop().expect("entry");
            assert_eq!(s, want);
            assert_eq!(v, want);
        }
    }

    #[test]
    fn interleaved_push_pop_at_advancing_times() {
        // Simulates the kernel pattern: pop one, schedule a few more at
        // or after the popped time.
        let mut w = TimingWheel::new();
        let mut seq = 0u64;
        let push = |w: &mut TimingWheel<u64>, t: u64, seq: &mut u64| {
            w.push(SimTime::from_nanos(t), *seq, t);
            *seq += 1;
        };
        push(&mut w, 10, &mut seq);
        push(&mut w, 20_000_000, &mut seq);
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, s, _)) = w.pop() {
            assert!((t, s) > last || popped == 0, "order violated");
            last = (t, s);
            popped += 1;
            if popped < 1000 {
                // Schedule at now (same instant) and at various futures.
                let base = t.as_nanos();
                push(&mut w, base, &mut seq);
                push(&mut w, base + (popped % 97) * 1_000, &mut seq);
                if popped % 13 == 0 {
                    push(&mut w, base + 30_000_000_000, &mut seq);
                }
            }
        }
        assert_eq!(w.len(), 0);
    }

    use proptest::prelude::*;

    proptest! {
        /// The wheel is order-equivalent to the heap it replaced: under
        /// arbitrary interleavings of pushes (at deltas spanning the
        /// current instant, both ring levels and the overflow heap) and
        /// pops, every pop returns exactly what a `BinaryHeap` keyed by
        /// `(time, seq)` would return. Pops advance `now`, reproducing
        /// the kernel's only scheduling constraint (`time >= now`);
        /// cancellation needs no arm here because the kernel cancels by
        /// tombstoning at dispatch, never by touching the queue.
        #[test]
        fn wheel_matches_heap_reference(
            ops in proptest::collection::vec((0u8..6, any::<u64>()), 1..400),
        ) {
            use std::cmp::Reverse;
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
            let mut now = SimTime::ZERO;
            let mut seq = 0u64;
            let push = |wheel: &mut TimingWheel<u64>,
                            heap: &mut BinaryHeap<Reverse<(SimTime, u64, u64)>>,
                            now: SimTime,
                            seq: &mut u64,
                            delta: u64| {
                let t = SimTime::from_nanos(now.as_nanos().saturating_add(delta));
                wheel.push(t, *seq, *seq);
                heap.push(Reverse((t, *seq, *seq)));
                *seq += 1;
            };
            for (sel, raw) in ops {
                match sel {
                    // Same instant / cursor slot → lands in `cur`.
                    0 => push(&mut wheel, &mut heap, now, &mut seq, raw % 2_048),
                    // Within the expanded level-1 slot → level-0 ring.
                    1 => push(&mut wheel, &mut heap, now, &mut seq, raw % 4_000_000),
                    // Within the level-1 window (~17.2 s) → level-1 ring.
                    2 => push(&mut wheel, &mut heap, now, &mut seq, raw % 17_000_000_000),
                    // Past the window → overflow heap (re-binned later).
                    3 => push(&mut wheel, &mut heap, now, &mut seq, raw % 200_000_000_000_000),
                    _ => {
                        let got = wheel.pop();
                        let want = heap.pop().map(|Reverse((t, s, v))| (t, s, v));
                        prop_assert_eq!(&got, &want);
                        if let Some((t, _, _)) = got {
                            now = t;
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
            }
            // Drain what remains: the full tail must match too.
            while let Some(Reverse((t, s, v))) = heap.pop() {
                prop_assert_eq!(wheel.pop(), Some((t, s, v)));
                now = t;
            }
            prop_assert_eq!(wheel.pop(), None);
            prop_assert_eq!(wheel.len(), 0);
            let _ = now;
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimingWheel::new();
        for (i, t) in [5u64, 3, 900_000, 44_000_000_000, 3].iter().enumerate() {
            w.push(SimTime::from_nanos(*t), i as u64, ());
        }
        while let Some((pt, ps, _)) = w.peek().map(|(t, s, v)| (t, s, *v)) {
            let (t, s, _) = w.pop().expect("peeked entry pops");
            assert_eq!((pt, ps), (t, s));
        }
        assert!(w.pop().is_none());
    }
}
