//! The discrete-event simulation kernel.
//!
//! Simulated actors ("processes") are ordinary closures that run on real OS
//! threads, but **exactly one process executes at any instant**: the
//! scheduler hands control to a process and blocks until that process either
//! suspends on a simulation primitive (sleep, channel, resource, link
//! transfer) or finishes. Events with equal timestamps fire in FIFO order
//! (monotonic sequence numbers), so a given program produces the same
//! timeline on every run.
//!
//! This is the classic "SimPy with threads" construction: it buys natural,
//! blocking, sequential code for workloads (a VM monitor model is literally
//! a loop of `read`/`write`/`compute` calls) at the cost of one parked OS
//! thread per live process.
//!
//! Two things keep the construction fast at fleet scale (10k+ processes):
//! the event queue is a hierarchical timing wheel ([`crate::wheel`]) rather
//! than a global binary heap, and the per-handoff blocking is a lock-free
//! state machine over `park`/`unpark` rather than a mutex + condvar pair —
//! a cross-thread baton handoff costs one futex wake plus one futex wait
//! and nothing else.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::fault::splitmix64;
use crate::telemetry::Telemetry;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// How the kernel schedules at the OS level.
///
/// Every policy observes the same virtual-time contract: events fire in
/// `(time, seq)` order, exactly one process runs at any instant. What a
/// policy may vary is the *incidental* OS-level choreography — which
/// thread performs a handoff, whether a self-wake takes the fast path,
/// gratuitous `yield_now` calls. Those choices are invisible to a
/// correctly synchronized simulation, which is precisely what makes
/// [`SchedPolicy::chaos`] an oracle: run the same workload under several
/// seeds and any divergence in the event timeline or reports is a real
/// ordering bug, not noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Production behavior: FIFO tie-break, direct baton handoff,
    /// self-wake fast path. The default.
    Fifo,
    /// Deterministic-but-adversarial schedule perturbation. At every
    /// suspend the kernel draws from a seeded PRNG (draws are serialized
    /// by the one-process-at-a-time invariant, so each seed replays
    /// exactly) and may insert OS yields, route the handoff through a
    /// pool worker, or force the slow self-wake path.
    Chaos {
        /// PRNG seed; each seed is one reproducible adversarial schedule.
        seed: u64,
    },
    /// Test-only broken policy: violates the FIFO tie-break by swapping
    /// equal-time wake events with seeded coin flips. Exists so tests can
    /// prove the divergence oracle actually fires; never use it for
    /// measurements.
    #[doc(hidden)]
    BrokenTieBreak {
        /// Seed for the coin flips.
        seed: u64,
    },
}

impl SchedPolicy {
    /// Shorthand for [`SchedPolicy::Chaos`] with the given seed.
    pub fn chaos(seed: u64) -> Self {
        SchedPolicy::Chaos { seed }
    }
}

/// Process-wide default [`SchedPolicy`] picked up by [`Simulation::new`].
/// Lets a binary-level flag (`--sched-chaos <seed>`) reach every
/// simulation constructed inside library code without threading a
/// parameter through every call site.
static DEFAULT_POLICY: Mutex<SchedPolicy> = Mutex::new(SchedPolicy::Fifo);

/// Set the process-wide default scheduling policy for simulations
/// created afterwards via [`Simulation::new`].
pub fn set_default_sched_policy(p: SchedPolicy) {
    *DEFAULT_POLICY.lock() = p;
}

/// The current process-wide default scheduling policy.
pub fn default_sched_policy() -> SchedPolicy {
    *DEFAULT_POLICY.lock()
}

/// One dispatched event, as recorded by the event trace (see
/// [`SimHandle::enable_event_trace`]). Two runs of the same workload must
/// produce identical traces under any [`SchedPolicy`] that honors the
/// virtual-time contract; [`first_divergence`] finds the first index
/// where they do not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time of the event, in nanoseconds.
    pub time_ns: u64,
    /// The event's FIFO sequence number. For the `"truncated"` sentinel
    /// this carries the number of records dropped after the cap.
    pub seq: u64,
    /// Event kind: `"wake"`, `"call"`, `"cancellable-call"`, or the
    /// `"truncated"` sentinel appended when the capped trace overflowed.
    pub kind: &'static str,
    /// Woken pid for `"wake"` events.
    pub pid: Option<usize>,
}

impl std::fmt::Display for EventRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pid {
            Some(pid) => write!(
                f,
                "t={}ns seq={} {} pid={}",
                self.time_ns, self.seq, self.kind, pid
            ),
            None => write!(f, "t={}ns seq={} {}", self.time_ns, self.seq, self.kind),
        }
    }
}

/// Compare two event traces; `Some((index, a, b))` is the first position
/// where they differ (`None` entries mean one trace ended early). This is
/// the schedule-chaos oracle's report: the first diverging event pins
/// where two schedules stopped agreeing.
pub fn first_divergence(
    a: &[EventRecord],
    b: &[EventRecord],
) -> Option<(usize, Option<EventRecord>, Option<EventRecord>)> {
    let n = a.len().max(b.len());
    for i in 0..n {
        let ea = a.get(i);
        let eb = b.get(i);
        if ea != eb {
            return Some((i, ea.cloned(), eb.cloned()));
        }
    }
    None
}

/// Default record cap for [`SimHandle::enable_event_trace`]: enough for
/// every committed scenario while bounding a 10k-clone run (tens of
/// millions of events) to a few hundred MB instead of unbounded growth.
pub const DEFAULT_EVENT_TRACE_CAP: usize = 4 << 20;

/// Identifier of a simulated process.
pub(crate) type Pid = usize;

/// Sentinel panic payload used to unwind a process thread when the
/// simulation shuts down while the process is still blocked.
struct SimAbort;

/// Install (once) a panic hook that silences [`SimAbort`] unwinds — they
/// are the normal shutdown path for blocked processes, not errors — and
/// defers everything else to the previous hook.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

enum EventKind {
    /// Resume the given process. Carries the process's control block so
    /// the dispatch hot path never indexes the (cache-cold, randomly
    /// accessed) `procs` table: the reference is cloned at schedule time,
    /// when the control block's cache line is typically already warm.
    Wake(Pid, Arc<ProcCtl>),
    /// Run an arbitrary callback on the scheduler thread (used by the
    /// fluid-flow link model to complete transfers).
    Call(Box<dyn FnOnce() + Send>),
    /// Like `Call`, but carries a cancellation flag. A cancelled event is
    /// skipped by the scheduler *without* advancing `now` or counting as
    /// processed, so an unfired timeout leaves the timeline untouched —
    /// essential for deadline timers that almost never fire.
    CancellableCall(Arc<AtomicBool>, Box<dyn FnOnce() + Send>),
}

/// Token returned by [`SimHandle::schedule_call_cancellable`]; cancelling
/// it makes the scheduled callback a no-op that does not advance simulated
/// time when its slot comes up.
#[derive(Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Prevent the associated callback from running (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Relaxed);
    }

    /// Whether the callback has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

/// Process states, stored in [`ProcCtl::state`] as a `u8`.
const PROC_WAITING: u8 = 0;
const PROC_RUNNING: u8 = 1;
const PROC_DONE: u8 = 2;

/// Per-process control block. The `state` transitions are a lock-free
/// handoff protocol:
///
/// - Only the process's own thread stores `WAITING` (in `suspend`) and
///   `DONE` (at body exit).
/// - Only the current baton holder stores `RUNNING` (`set_running`),
///   which is valid because exactly one wake per suspended process is
///   ever in flight.
/// - Blocking is `std::thread::park` with the state re-checked in a
///   loop, so a banked unpark token (wake raced ahead of the park) and
///   spurious wakeups are both benign.
///
/// Field order matters: `state`, `abort` and the thread slot are the
/// per-handoff hot fields and sit together at the front so one cache
/// line fetch covers a wake (the line is cold on every handoff — at
/// 1000+ processes the wake order is effectively random).
pub(crate) struct ProcCtl {
    state: AtomicU8,
    abort: AtomicBool,
    /// OS thread hosting this process's body (a pool worker), registered
    /// before the body's first state check. `set_running` unparks it;
    /// when still `None` the worker has not started and will observe the
    /// `RUNNING` state on its first check (the slot mutex orders the two).
    thread: Mutex<Option<std::thread::Thread>>,
    /// Shutdown-only: `run_proc` waits here until the body finishes (or
    /// suspends again mid-unwind, which `suspend` signals too).
    exit_mu: Mutex<bool>,
    exit_cv: Condvar,
    name: String,
}

impl ProcCtl {
    fn new(name: String) -> Self {
        ProcCtl {
            state: AtomicU8::new(PROC_WAITING),
            abort: AtomicBool::new(false),
            thread: Mutex::new(None),
            exit_mu: Mutex::new(false),
            exit_cv: Condvar::new(),
            name,
        }
    }

    #[inline]
    fn state(&self) -> u8 {
        self.state.load(AtomicOrdering::Acquire)
    }

    /// Mark the process runnable and wake its (possibly parked) host
    /// thread. The release-ordered swap publishes everything the waker
    /// did before the handoff to the woken process.
    fn set_running(&self) {
        let prev = self.state.swap(PROC_RUNNING, AtomicOrdering::AcqRel);
        debug_assert_eq!(prev, PROC_WAITING, "woke a process that is running");
        if let Some(t) = self.thread.lock().as_ref() {
            t.unpark();
        }
    }

    /// Park until marked `RUNNING`. Re-checks in a loop, so stale unpark
    /// tokens from a previous process hosted on the same pool worker are
    /// harmless.
    fn wait_running(&self) {
        while self.state.load(AtomicOrdering::Acquire) != PROC_RUNNING {
            std::thread::park();
        }
    }

    /// Record body completion and wake any shutdown-phase waiter.
    fn finish(&self) {
        self.state.store(PROC_DONE, AtomicOrdering::Release);
        let mut ex = self.exit_mu.lock();
        *ex = true;
        self.exit_cv.notify_all();
    }
}

/// Capped event-trace buffer. Records past the cap are counted, not
/// stored, and surface as a single `"truncated"` sentinel record so the
/// chaos oracle can still compare (equally truncated) big-run traces.
struct TraceBuf {
    recs: Vec<EventRecord>,
    cap: usize,
    dropped: u64,
}

impl TraceBuf {
    fn record(&mut self, time: SimTime, seq: u64, kind: &EventKind) {
        if self.recs.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.recs.push(EventRecord {
            time_ns: time.as_nanos(),
            seq,
            kind: match kind {
                EventKind::Wake(..) => "wake",
                EventKind::Call(_) => "call",
                EventKind::CancellableCall(..) => "cancellable-call",
            },
            pid: match kind {
                EventKind::Wake(pid, _) => Some(*pid),
                _ => None,
            },
        });
    }
}

struct KernelInner {
    wheel: TimingWheel<EventKind>,
    now: SimTime,
    seq: u64,
    procs: Vec<Arc<ProcCtl>>,
    failures: Vec<String>,
    events_processed: u64,
    policy: SchedPolicy,
    /// PRNG state for chaos/broken policies. Draws happen under this
    /// mutex and only from the single running process (or the single
    /// baton holder inside dispatch), so the draw sequence — and thus the
    /// whole perturbation schedule — is a pure function of the seed.
    rng: u64,
    /// When `Some`, every dispatched event is appended (cancelled events
    /// are skipped: they never advance time).
    trace: Option<TraceBuf>,
}

/// A process body, boxed for hand-off to a pool worker.
type Job = Box<dyn FnOnce() + Send>;

struct PoolQueue {
    /// Jobs claimed by a parked worker but not yet picked up. A job is
    /// only queued when `idle` was positive (and decremented) — otherwise
    /// a fresh thread is spawned with the job directly — so nothing here
    /// ever waits on a busy worker.
    jobs: std::collections::VecDeque<Job>,
    /// Workers parked on the condvar and not yet claimed by a job.
    idle: usize,
    /// Set when the last [`SimHandle`] drops; parked workers exit.
    closed: bool,
}

struct PoolShared {
    q: Mutex<PoolQueue>,
    cv: Condvar,
}

/// Reusable OS threads for process bodies.
///
/// A fresh thread per simulated process costs a `clone(2)`, a stack
/// `mmap`/`munmap` pair and a page-fault storm — at tens of thousands of
/// short-lived processes (parallel RPC fan-out) that kernel time, mostly
/// TLB shootdowns, dominates the wall clock. Workers instead park between
/// processes and are re-dispatched, so a run needs only as many OS threads
/// as its peak count of *live* processes, with warm stacks.
///
/// Scheduling is unaffected: which OS thread executes a process body is
/// invisible to the simulation, so timelines stay bit-identical.
struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                q: Mutex::new(PoolQueue {
                    jobs: std::collections::VecDeque::new(),
                    idle: 0,
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Run `job` on a parked worker, or a fresh thread if none is free.
    /// A job occupies its worker for the process's whole lifetime
    /// (including parks), so it must never wait behind a busy worker.
    fn execute(&self, job: Job) {
        {
            let mut q = self.shared.q.lock();
            if q.idle > 0 {
                q.idle -= 1; // claim the worker for this job
                q.jobs.push_back(job);
                self.shared.cv.notify_one();
                return;
            }
        }
        let shared = self.shared.clone();
        // Process code is shallow (no deep recursion), so 512 KB is ample.
        std::thread::Builder::new()
            .name("sim-worker".into())
            .stack_size(512 * 1024)
            .spawn(move || worker_loop(shared, job))
            .expect("failed to spawn simulation worker thread");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock();
        q.closed = true;
        self.shared.cv.notify_all();
    }
}

fn worker_loop(shared: Arc<PoolShared>, first_job: Job) {
    let mut job = first_job;
    loop {
        job();
        let mut q = shared.q.lock();
        job = loop {
            if let Some(j) = q.jobs.pop_front() {
                // Consumes one claim: either ours (we registered below and
                // an `execute` decremented `idle` for it) or, if we just
                // finished a job and grabbed a queued one, the claim of a
                // parked sibling — which re-registers when it wakes empty.
                break j;
            }
            if q.closed {
                return;
            }
            q.idle += 1;
            shared.cv.wait(&mut q);
        };
    }
}

/// What `dispatch_until_wake`'s locked section decided: hand the baton to
/// a process, run a callback inline, or report a drained queue.
enum Dispatched {
    Run(Pid, Arc<ProcCtl>),
    Exec(Box<dyn FnOnce() + Send>),
    Drained,
}

/// Shared, cloneable handle to the simulation kernel. Synchronization
/// primitives ([`crate::sync`], [`crate::link`]) hold one of these to
/// schedule wake-ups and callbacks.
#[derive(Clone)]
pub struct SimHandle {
    inner: Arc<Mutex<KernelInner>>,
    telemetry: Telemetry,
    pool: Arc<WorkerPool>,
    /// Copy of the kernel policy, so the Fifo hot path never takes the
    /// kernel lock just to learn that no chaos word is needed.
    policy: SchedPolicy,
    /// Set once `run()` observes quiescence; dispatching stops and events
    /// scheduled by unwinding processes stay unprocessed.
    shutting_down: Arc<AtomicBool>,
    /// Set (and notified) by the baton holder that drains the event
    /// queue; [`Simulation::run`] parks on it between the first wake and
    /// quiescence.
    quiesced: Arc<(Mutex<bool>, Condvar)>,
}

impl SimHandle {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// The simulation-wide metric registry and trace sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of events the scheduler has processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.lock().events_processed
    }

    /// Start recording every dispatched event (virtual time, sequence
    /// number, kind, woken pid), up to [`DEFAULT_EVENT_TRACE_CAP`]
    /// records. Call before the run; pair with
    /// [`SimHandle::take_event_trace`]. Tracing is the raw material of
    /// the schedule-chaos oracle: traces from different [`SchedPolicy`]
    /// seeds must be identical.
    pub fn enable_event_trace(&self) {
        self.enable_event_trace_with_cap(DEFAULT_EVENT_TRACE_CAP);
    }

    /// Like [`SimHandle::enable_event_trace`] with an explicit record
    /// cap. Records past the cap are counted rather than stored; the
    /// taken trace then ends with a `"truncated"` sentinel record whose
    /// `seq` is the dropped count, so a capped trace is still an exact,
    /// comparable prefix.
    pub fn enable_event_trace_with_cap(&self, cap: usize) {
        let mut k = self.inner.lock();
        if k.trace.is_none() {
            k.trace = Some(TraceBuf {
                recs: Vec::new(),
                cap,
                dropped: 0,
            });
        }
    }

    /// Take the recorded event trace (empty if tracing was never
    /// enabled), leaving tracing enabled with a fresh buffer if it was.
    /// If the cap truncated the recording, the last record is the
    /// `"truncated"` sentinel (kind `"truncated"`, `seq` = dropped
    /// count, `time_ns` = current virtual time).
    pub fn take_event_trace(&self) -> Vec<EventRecord> {
        let mut k = self.inner.lock();
        let now = k.now;
        match k.trace.as_mut() {
            Some(t) => {
                let mut recs = std::mem::take(&mut t.recs);
                if t.dropped > 0 {
                    recs.push(EventRecord {
                        time_ns: now.as_nanos(),
                        seq: t.dropped,
                        kind: "truncated",
                        pid: None,
                    });
                    t.dropped = 0;
                }
                recs
            }
            None => Vec::new(),
        }
    }

    /// Number of processes spawned so far (each one is an OS thread for
    /// its lifetime; the wall-clock harness reports this).
    pub fn processes_spawned(&self) -> u64 {
        self.inner.lock().procs.len() as u64
    }

    /// Spawn a process; it becomes runnable at the current instant. This is
    /// the same operation as [`Simulation::spawn`] / [`Env::spawn`], exposed
    /// on the handle so library code (e.g. RPC servers) can start workers.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(self, name.into(), f)
    }

    pub(crate) fn schedule_wake(&self, time: SimTime, pid: Pid) {
        let mut k = self.inner.lock();
        let ctl = k.procs[pid].clone();
        let seq = k.seq;
        k.seq += 1;
        k.wheel.push(time, seq, EventKind::Wake(pid, ctl));
    }

    /// Schedule an arbitrary callback to run on the scheduler thread at
    /// `time`. The callback must not block; it may schedule further events
    /// and wake processes.
    pub fn schedule_call(&self, time: SimTime, f: impl FnOnce() + Send + 'static) {
        let mut k = self.inner.lock();
        let seq = k.seq;
        k.seq += 1;
        k.wheel.push(time, seq, EventKind::Call(Box::new(f)));
    }

    /// Schedule a callback like [`SimHandle::schedule_call`], returning a
    /// [`CancelToken`]. If the token is cancelled before the event's time
    /// arrives, the scheduler skips the event entirely: `now` does not
    /// advance to the event's time and the callback never runs. Timeout
    /// timers use this so that a timer armed past the natural end of the
    /// simulation does not stretch the final timestamp.
    pub fn schedule_call_cancellable(
        &self,
        time: SimTime,
        f: impl FnOnce() + Send + 'static,
    ) -> CancelToken {
        let flag = Arc::new(AtomicBool::new(false));
        let mut k = self.inner.lock();
        let seq = k.seq;
        k.seq += 1;
        k.wheel.push(
            time,
            seq,
            EventKind::CancellableCall(flag.clone(), Box::new(f)),
        );
        CancelToken(flag)
    }

    fn spawn_inner(
        &self,
        name: String,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> (Pid, Arc<ProcCtl>) {
        let ctl = Arc::new(ProcCtl::new(name));
        let pid;
        {
            // One kernel-lock acquisition covers registration AND the
            // initial wake. Spawning used to take this lock three times
            // (procs push, `now()`, `schedule_wake`); because the
            // spawning process holds the baton until it suspends, nobody
            // can interleave an event between those acquisitions, so
            // folding them together allocates the identical sequence
            // number and leaves the event timeline bit-for-bit unchanged
            // while cutting spawn cost at fleet scale (1000+ tasks).
            assert!(
                !self.shutting_down.load(AtomicOrdering::Acquire),
                "cannot spawn a process while the simulation is shutting down"
            );
            let mut k = self.inner.lock();
            pid = k.procs.len();
            k.procs.push(ctl.clone());
            let time = k.now;
            let seq = k.seq;
            k.seq += 1;
            k.wheel.push(time, seq, EventKind::Wake(pid, ctl.clone()));
        }
        let env = Env {
            handle: self.clone(),
            pid,
            ctl: ctl.clone(),
        };
        let thread_ctl = ctl.clone();
        let handle = self.clone();
        // Hand the body to a pool worker rather than a fresh OS thread:
        // see [`WorkerPool`].
        self.pool.execute(Box::new(move || {
            // Register this OS thread as the process's host, then wait
            // for the first wake. Registration goes first: a wake that
            // found the slot empty relies on this worker observing the
            // RUNNING state after taking the slot lock.
            *thread_ctl.thread.lock() = Some(std::thread::current());
            thread_ctl.wait_running();
            let aborted_at_start = thread_ctl.abort.load(AtomicOrdering::Acquire);
            if !aborted_at_start {
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(env)));
                if let Err(payload) = result {
                    if payload.downcast_ref::<SimAbort>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        handle
                            .inner
                            .lock()
                            .failures
                            .push(format!("process '{}' panicked: {msg}", thread_ctl.name));
                    }
                }
            }
            thread_ctl.finish();
            // A panicking `Call` closure must not take the worker down
            // with it (the baton would be lost and the run would hang):
            // record it like a process failure and declare quiescence so
            // `run()` can surface it.
            handle.pass_baton_guarded();
        }));
        (pid, ctl)
    }

    /// Hand control to `pid` and block until it suspends or finishes.
    /// Only used by the shutdown phase of [`Simulation::run`]; during the
    /// run itself control passes process-to-process (see
    /// [`SimHandle::dispatch_until_wake`]).
    fn run_proc(&self, pid: Pid) {
        let ctl = self.inner.lock().procs[pid].clone();
        if ctl.state() == PROC_DONE {
            return;
        }
        debug_assert_eq!(ctl.state(), PROC_WAITING, "woke a process that is running");
        ctl.set_running();
        let mut ex = ctl.exit_mu.lock();
        while !*ex && ctl.state() == PROC_RUNNING {
            ctl.exit_cv.wait(&mut ex);
        }
    }

    /// Pop and dispatch events until one hands control to a process (its
    /// pid and control block are returned) or the queue drains (`None`).
    /// `Call` events run inline on the calling thread — the baton holder
    /// *is* the scheduler. Wakes for finished processes are skipped
    /// (their timers may outlive them), exactly as the central loop used
    /// to; the skip still advances `now` and counts as processed.
    fn dispatch_until_wake(&self) -> Option<(Pid, Arc<ProcCtl>)> {
        self.dispatch_after(|_| {})
    }

    /// [`SimHandle::dispatch_until_wake`] with a prologue that runs under
    /// the *same* kernel-lock acquisition as the first dispatch pop.
    /// `Env::sleep` passes its wake push here, collapsing what used to be
    /// three lock round-trips per sleep (`now()`, `schedule_wake`,
    /// dispatch) into one — on a contended lock line each extra
    /// acquisition is a cross-core cache miss, which dominates the
    /// handoff-heavy fleet workloads. Fusing is sound because the caller
    /// holds the baton: no other thread can interleave an event between
    /// the prologue and the pop.
    fn dispatch_after<F: FnOnce(&mut KernelInner)>(&self, pre: F) -> Option<(Pid, Arc<ProcCtl>)> {
        let mut pre = Some(pre);
        loop {
            let step = {
                let mut k = self.inner.lock();
                if let Some(p) = pre.take() {
                    p(&mut k);
                }
                loop {
                    let (mut time, mut seq, mut kind) = match k.wheel.pop() {
                        Some(e) => e,
                        None => break Dispatched::Drained,
                    };
                    if let EventKind::CancellableCall(flag, _) = &kind {
                        if flag.load(AtomicOrdering::Relaxed) {
                            // Cancelled timer: discard without touching
                            // `now` or the processed-event count, so it
                            // leaves no trace on the timeline.
                            continue;
                        }
                    }
                    if let SchedPolicy::BrokenTieBreak { .. } = k.policy {
                        // Test-only: seeded coin flips swap equal-time
                        // wake pairs, breaking the FIFO tie-break the
                        // determinism contract rests on. The chaos
                        // oracle must catch the resulting divergence.
                        k.rng = splitmix64(k.rng);
                        let flip = k.rng & 1 == 1;
                        let swappable = matches!(kind, EventKind::Wake(..))
                            && k.wheel.peek().is_some_and(|(pt, _, pk)| {
                                pt == time && matches!(pk, EventKind::Wake(..))
                            });
                        if flip && swappable {
                            let (ot, os, ok) = k.wheel.pop().expect("peeked event");
                            k.wheel.push(time, seq, kind);
                            time = ot;
                            seq = os;
                            kind = ok;
                        }
                    }
                    k.now = time;
                    k.events_processed += 1;
                    if let Some(trace) = k.trace.as_mut() {
                        trace.record(time, seq, &kind);
                    }
                    match kind {
                        // The control block rides in the event (cloned at
                        // schedule time), so the hot path neither indexes
                        // `procs` nor touches a cold refcount here.
                        EventKind::Wake(pid, ctl) => {
                            if ctl.state() == PROC_DONE {
                                continue;
                            }
                            break Dispatched::Run(pid, ctl);
                        }
                        EventKind::Call(f) | EventKind::CancellableCall(_, f) => {
                            break Dispatched::Exec(f)
                        }
                    }
                }
            };
            match step {
                Dispatched::Run(pid, ctl) => return Some((pid, ctl)),
                Dispatched::Exec(f) => f(),
                Dispatched::Drained => return None,
            }
        }
    }

    /// Pass the baton onward after the current process yields it: hand
    /// control to the next runnable process, or signal quiescence so
    /// [`Simulation::run`] can finish. No-op once shutdown has begun —
    /// the main thread drives aborts itself and events scheduled by
    /// unwinding processes must stay unprocessed.
    fn pass_baton(&self) {
        if self.shutting_down.load(AtomicOrdering::Acquire) {
            return;
        }
        match self.dispatch_until_wake() {
            Some((_pid, ctl)) => ctl.set_running(),
            None => {
                let (flag, cv) = &*self.quiesced;
                *flag.lock() = true;
                cv.notify_all();
            }
        }
    }

    /// [`SimHandle::pass_baton`] with the panic containment the process
    /// exit path needs: a panicking `Call` closure is recorded as a
    /// failure and quiescence is declared so `run()` can surface it,
    /// instead of losing the baton and hanging the run.
    fn pass_baton_guarded(&self) {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| self.pass_baton())) {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            self.inner
                .lock()
                .failures
                .push(format!("scheduled callback panicked: {msg}"));
            let (flag, cv) = &*self.quiesced;
            *flag.lock() = true;
            cv.notify_all();
        }
    }
}

/// The per-process capability handle, passed to every process body. All
/// blocking simulation primitives go through an `Env`.
#[derive(Clone)]
pub struct Env {
    handle: SimHandle,
    pid: Pid,
    ctl: Arc<ProcCtl>,
}

impl Env {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// Access the kernel handle (for constructing sync objects).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The simulation-wide metric registry and trace sink.
    pub fn telemetry(&self) -> &Telemetry {
        self.handle.telemetry()
    }

    /// Name of this process.
    pub fn name(&self) -> &str {
        &self.ctl.name
    }

    /// Advance simulated time by `d` for this process.
    pub fn sleep(&self, d: SimDuration) {
        // The wake push is fused into the suspend's first kernel-lock
        // acquisition (see `dispatch_after`): reading `now`, allocating
        // the sequence number and pushing the wake all happen under the
        // lock that also pops the next event. The event timeline is
        // identical to the unfused `now()` + `schedule_wake` + `suspend`
        // sequence because this process holds the baton throughout.
        self.suspend_after(|k| {
            let t = k.now + d;
            let seq = k.seq;
            k.seq += 1;
            k.wheel
                .push(t, seq, EventKind::Wake(self.pid, self.ctl.clone()));
        });
    }

    /// Let every other event scheduled at the current instant run first.
    pub fn yield_now(&self) {
        self.sleep(SimDuration::ZERO);
    }

    /// Spawn a child process; it becomes runnable at the current instant.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(&self.handle, name.into(), f)
    }

    pub(crate) fn pid(&self) -> Pid {
        self.pid
    }

    /// Block until some primitive wakes this process. Used internally by
    /// channels, resources, signals and links: the caller registers itself
    /// with the primitive under the primitive's lock, releases the lock,
    /// then suspends. Because only one process runs at a time, no wake can
    /// be lost in between.
    pub(crate) fn suspend(&self) {
        self.suspend_after(|_| {});
    }

    /// [`Env::suspend`] with a prologue run under the same kernel-lock
    /// acquisition as the chaos draw (chaos policies) or the first
    /// dispatch pop (everything else). `sleep` passes its wake push here.
    /// The push lands before any dispatching in both branches, so the
    /// sequence-number allocation — and therefore the event timeline —
    /// is identical across policies and to the unfused code.
    fn suspend_after<F: FnOnce(&mut KernelInner)>(&self, pre: F) {
        debug_assert_eq!(self.ctl.state(), PROC_RUNNING);
        // Only the owner thread makes the Running -> Waiting transition,
        // so a plain store is enough; the release ordering publishes this
        // process's work to whichever thread wakes it next.
        self.ctl.state.store(PROC_WAITING, AtomicOrdering::Release);
        if !matches!(self.handle.policy, SchedPolicy::Chaos { .. }) {
            // Fifo / BrokenTieBreak hot path: no chaos perturbations.
            let shutting_down = self.handle.shutting_down.load(AtomicOrdering::Acquire);
            if shutting_down {
                // Mid-unwind suspend during shutdown: the event is still
                // scheduled (nothing will dispatch it), and `run_proc`
                // must observe that this process yielded.
                {
                    let mut k = self.handle.inner.lock();
                    pre(&mut k);
                }
                let _ex = self.ctl.exit_mu.lock();
                self.ctl.exit_cv.notify_all();
            } else {
                // Pass the baton directly to the next runnable process
                // instead of round-tripping through a central scheduler
                // thread: one context switch per handoff instead of two.
                // If the next event is our own wake (a sleep chain with no
                // interleaved process), control never leaves this thread.
                match self.handle.dispatch_after(pre) {
                    Some((pid, _ctl)) if pid == self.pid => {
                        debug_assert_eq!(self.ctl.state(), PROC_WAITING);
                        self.ctl.state.store(PROC_RUNNING, AtomicOrdering::Release);
                        return;
                    }
                    Some((_pid, ctl)) => ctl.set_running(),
                    None => {
                        let (flag, cv) = &*self.handle.quiesced;
                        *flag.lock() = true;
                        cv.notify_all();
                    }
                }
            }
            self.ctl.wait_running();
            if self.ctl.abort.load(AtomicOrdering::Acquire) {
                install_quiet_abort_hook();
                panic::panic_any(SimAbort);
            }
            return;
        }
        // Under SchedPolicy::Chaos, perturb the OS-level choreography of
        // this handoff. All three perturbations are semantically inert for
        // correctly synchronized code — they stress thread interleavings
        // without touching virtual-time event order. The prologue and the
        // chaos draw share one lock acquisition; the draw still happens
        // after the push, exactly where `chaos_word` used to draw it.
        let w = {
            let mut k = self.handle.inner.lock();
            pre(&mut k);
            k.rng = splitmix64(k.rng);
            k.rng
        };
        for _ in 0..(w & 3) {
            std::thread::yield_now();
        }
        let via_pool = (w >> 3) & 7 == 0;
        let slow_self = (w >> 6) & 1 == 1;
        let shutting_down = self.handle.shutting_down.load(AtomicOrdering::Acquire);
        if shutting_down {
            // Mid-unwind suspend during shutdown: nothing dispatches, but
            // `run_proc` must observe that this process yielded.
            let _ex = self.ctl.exit_mu.lock();
            self.ctl.exit_cv.notify_all();
        } else if via_pool {
            // Forced preemption: route the handoff through a pool worker
            // (the classic central-scheduler shape — two context switches
            // instead of one) rather than dispatching inline.
            let h = self.handle.clone();
            self.handle
                .pool
                .execute(Box::new(move || h.pass_baton_guarded()));
        } else {
            match self.handle.dispatch_until_wake() {
                Some((pid, _ctl)) if pid == self.pid && !slow_self => {
                    debug_assert_eq!(self.ctl.state(), PROC_WAITING);
                    self.ctl.state.store(PROC_RUNNING, AtomicOrdering::Release);
                    return;
                }
                // With `slow_self`, a self-wake skips the fast path above
                // and goes through set_running + the park loop below like
                // any other handoff (the wait loop falls straight through
                // because the state is already Running).
                Some((_pid, ctl)) => ctl.set_running(),
                None => {
                    let (flag, cv) = &*self.handle.quiesced;
                    *flag.lock() = true;
                    cv.notify_all();
                }
            }
        }
        self.ctl.wait_running();
        if self.ctl.abort.load(AtomicOrdering::Acquire) {
            install_quiet_abort_hook();
            panic::panic_any(SimAbort);
        }
    }
}

/// Handle to a spawned process; lets another process wait for completion.
pub struct ProcessHandle {
    done: crate::sync::Signal,
}

impl ProcessHandle {
    /// Block the calling process until the spawned process finishes.
    pub fn join(&self, env: &Env) {
        self.done.wait(env);
    }

    /// Whether the process has already finished.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

fn spawn_with_handle(
    handle: &SimHandle,
    name: String,
    f: impl FnOnce(Env) + Send + 'static,
) -> ProcessHandle {
    let done = crate::sync::Signal::new(handle);
    let done2 = done.clone();
    handle.spawn_inner(name, move |env| {
        f(env.clone());
        done2.set();
    });
    ProcessHandle { done }
}

/// A discrete-event simulation: owns the event queue and the scheduler.
pub struct Simulation {
    handle: SimHandle,
}

impl Simulation {
    /// Create an empty simulation at time zero, under the process-wide
    /// default scheduling policy (see [`set_default_sched_policy`]).
    pub fn new() -> Self {
        Self::with_policy(default_sched_policy())
    }

    /// Create an empty simulation at time zero under an explicit
    /// scheduling policy.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        let seed = match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::Chaos { seed } | SchedPolicy::BrokenTieBreak { seed } => seed,
        };
        Simulation {
            handle: SimHandle {
                inner: Arc::new(Mutex::new(KernelInner {
                    wheel: TimingWheel::new(),
                    now: SimTime::ZERO,
                    seq: 0,
                    procs: Vec::new(),
                    failures: Vec::new(),
                    events_processed: 0,
                    policy,
                    rng: splitmix64(seed ^ 0x5EED_CAFE_F00D_D00D),
                    trace: None,
                })),
                telemetry: Telemetry::new(),
                pool: Arc::new(WorkerPool::new()),
                policy,
                shutting_down: Arc::new(AtomicBool::new(false)),
                quiesced: Arc::new((Mutex::new(false), Condvar::new())),
            },
        }
    }

    /// Cloneable handle for constructing primitives before the run starts.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a root process; it becomes runnable at time zero (or the
    /// current time, if spawned mid-run from outside — not typical).
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(&self.handle, name.into(), f)
    }

    /// Run the simulation to quiescence (empty event queue) and return the
    /// final simulated time.
    ///
    /// Processes still blocked at quiescence (e.g. a server loop waiting on
    /// a request channel that will never receive again) are aborted
    /// cleanly. Panics raised *inside* processes are collected and re-raised
    /// here so test failures point at the real error.
    pub fn run(self) -> SimTime {
        let handle = self.handle;
        // Drive the first handoff from this thread, then park: control
        // passes process-to-process (each suspending process dispatches
        // its successor directly) until some baton holder drains the
        // event queue and signals quiescence.
        if let Some((_pid, ctl)) = handle.dispatch_until_wake() {
            ctl.set_running();
            let (flag, cv) = &*handle.quiesced;
            let mut q = flag.lock();
            while !*q {
                cv.wait(&mut q);
            }
        }

        // Quiescent: abort any process still blocked so its thread exits.
        handle.shutting_down.store(true, AtomicOrdering::Release);
        let (final_time, procs) = {
            let k = handle.inner.lock();
            (k.now, k.procs.clone())
        };
        for (pid, ctl) in procs.iter().enumerate() {
            if ctl.state() != PROC_DONE {
                ctl.abort.store(true, AtomicOrdering::Release);
                handle.run_proc(pid);
            }
        }
        let failures = {
            let mut k = handle.inner.lock();
            std::mem::take(&mut k.failures)
        };
        if !failures.is_empty() {
            panic!("simulation process failures:\n  {}", failures.join("\n  "));
        }
        final_time
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = Simulation::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn instantly_finishing_processes_quiesce_under_every_policy() {
        // Parking-order assumption, pinned: a process that never
        // suspends can finish — and signal quiescence — while the main
        // thread is still on its way from the first dispatch to the
        // `quiesced` wait loop. The (flag, condvar) pair makes the wait
        // fall through on the already-set flag instead of sleeping
        // forever. Chaos policies additionally route the final baton
        // handoffs through the worker pool, stressing the same window
        // from a different thread.
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::chaos(1),
            SchedPolicy::chaos(7),
        ] {
            let sim = Simulation::with_policy(policy);
            let ran = Arc::new(AtomicU64::new(0));
            for i in 0..16 {
                let ran = ran.clone();
                sim.spawn(format!("f{i}"), move |_env| {
                    ran.fetch_add(1, AO::SeqCst);
                });
            }
            assert_eq!(sim.run(), SimTime::ZERO, "no process advanced time");
            assert_eq!(ran.load(AO::SeqCst), 16, "every process ran");
        }
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new();
        let observed = Arc::new(AtomicU64::new(0));
        let obs = observed.clone();
        sim.spawn("sleeper", move |env| {
            env.sleep(SimDuration::from_millis(250));
            obs.store(env.now().as_nanos(), AO::SeqCst);
        });
        let end = sim.run();
        assert_eq!(observed.load(AO::SeqCst), 250_000_000);
        assert_eq!(end.as_nanos(), 250_000_000);
    }

    #[test]
    fn equal_time_events_fire_in_spawn_order() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = order.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep(SimDuration::from_secs(1));
                order.lock().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_and_join() {
        let sim = Simulation::new();
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        sim.spawn("parent", move |env| {
            let mut children = Vec::new();
            for i in 1..=4u64 {
                let t = t2.clone();
                children.push(env.spawn(format!("child{i}"), move |env| {
                    env.sleep(SimDuration::from_secs(i));
                    t.fetch_add(i, AO::SeqCst);
                }));
            }
            for c in &children {
                c.join(&env);
            }
            // All children joined; longest slept 4s.
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(4));
        });
        let end = sim.run();
        assert_eq!(total.load(AO::SeqCst), 10);
        assert_eq!(end.as_nanos(), SimDuration::from_secs(4).as_nanos());
    }

    #[test]
    fn blocked_process_is_aborted_cleanly_at_quiescence() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (_tx, rx) = crate::sync::channel::<u32>(&h);
        sim.spawn("server", move |env| {
            // This recv never completes; the simulation must still shut
            // down and not report the abort as a failure.
            let _ = rx.recv(&env);
            unreachable!("recv should have been aborted");
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panics_propagate_to_run() {
        let sim = Simulation::new();
        sim.spawn("bad", |_env| panic!("boom"));
        sim.run();
    }

    #[test]
    fn cancelled_callback_does_not_advance_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        // A timer far in the future, cancelled before the run: the
        // simulation must end at the last *live* event, not at the timer.
        let token = h.schedule_call_cancellable(SimTime::from_nanos(1_000_000), move || {
            f2.store(1, AO::SeqCst);
        });
        sim.spawn("worker", |env| env.sleep(SimDuration::from_nanos(10)));
        token.cancel();
        let end = sim.run();
        assert_eq!(fired.load(AO::SeqCst), 0);
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn uncancelled_cancellable_callback_fires() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        let h2 = h.clone();
        let token = h.schedule_call_cancellable(SimTime::from_nanos(77), move || {
            f2.store(h2.now().as_nanos(), AO::SeqCst);
        });
        sim.run();
        assert_eq!(fired.load(AO::SeqCst), 77);
        assert!(!token.is_cancelled());
    }

    /// A workload with rich contention: equal-time wakes, channels,
    /// resources, nested spawns. Returns (final time, event trace,
    /// observed completion order).
    fn contended_run(policy: SchedPolicy) -> (SimTime, Vec<EventRecord>, Vec<u64>) {
        let sim = Simulation::with_policy(policy);
        let h = sim.handle();
        h.enable_event_trace();
        let order = Arc::new(Mutex::new(Vec::new()));
        let res = crate::sync::Resource::new(&h, 2);
        let (tx, rx) = crate::sync::channel::<u64>(&h);
        for i in 0..6u64 {
            let order = order.clone();
            let res = res.clone();
            let tx = tx.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep(SimDuration::from_millis(10)); // all collide at t=10ms
                let _g = res.acquire(&env);
                env.sleep(SimDuration::from_millis(5 * (i % 3)));
                order.lock().push(i);
                tx.send(i);
            });
        }
        drop(tx);
        let sink = order.clone();
        sim.spawn("sink", move |env| {
            while let Ok(v) = rx.recv(&env) {
                sink.lock().push(100 + v);
            }
        });
        let end = sim.run();
        let trace = h.take_event_trace();
        let got = order.lock().clone();
        (end, trace, got)
    }

    #[test]
    fn chaos_seeds_leave_timeline_identical() {
        let (t0, trace0, order0) = contended_run(SchedPolicy::Fifo);
        assert!(!trace0.is_empty());
        for seed in 0..8u64 {
            let (t, trace, order) = contended_run(SchedPolicy::chaos(seed));
            assert_eq!(t, t0, "seed {seed}: final time diverged");
            assert_eq!(order, order0, "seed {seed}: completion order diverged");
            if let Some((i, a, b)) = first_divergence(&trace0, &trace) {
                panic!(
                    "seed {seed}: event trace diverged at index {i}: fifo={:?} chaos={:?}",
                    a.map(|e| e.to_string()),
                    b.map(|e| e.to_string())
                );
            }
        }
    }

    #[test]
    fn broken_tie_break_is_caught_by_the_oracle() {
        // The intentionally seeded ordering bug: BrokenTieBreak swaps
        // equal-time wakes, so some seed must produce a diverging trace —
        // proof the oracle detects real races rather than vacuously
        // passing. (A correct policy passes the same check above.)
        let (_, trace0, _) = contended_run(SchedPolicy::Fifo);
        let mut caught = None;
        for seed in 0..8u64 {
            let (_, trace, _) = contended_run(SchedPolicy::BrokenTieBreak { seed });
            if let Some((i, a, b)) = first_divergence(&trace0, &trace) {
                caught = Some((seed, i, a, b));
                break;
            }
        }
        let (seed, i, a, b) = caught.expect("no BrokenTieBreak seed diverged — oracle is blind");
        // The first-divergence report names both events.
        let a = a.expect("fifo trace ended early");
        let b = b.expect("broken trace ended early");
        assert_eq!(
            a.time_ns, b.time_ns,
            "seed {seed}: tie-break bug must diverge within one instant (index {i})"
        );
        assert_ne!(a.seq, b.seq);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let (t1, trace1, order1) = contended_run(SchedPolicy::chaos(3));
        let (t2, trace2, order2) = contended_run(SchedPolicy::chaos(3));
        assert_eq!(t1, t2);
        assert_eq!(order1, order2);
        assert_eq!(first_divergence(&trace1, &trace2), None);
    }

    #[test]
    fn default_policy_is_picked_up_by_new() {
        // Serialize against other tests touching the global default.
        assert_eq!(default_sched_policy(), SchedPolicy::Fifo);
        set_default_sched_policy(SchedPolicy::chaos(9));
        let sim = Simulation::new();
        let policy = sim.handle().inner.lock().policy;
        set_default_sched_policy(SchedPolicy::Fifo);
        assert_eq!(policy, SchedPolicy::Chaos { seed: 9 });
    }

    #[test]
    fn event_trace_records_wakes_and_calls() {
        let sim = Simulation::new();
        let h = sim.handle();
        h.enable_event_trace();
        h.schedule_call(SimTime::from_nanos(5), || {});
        sim.spawn("p", |env| env.sleep(SimDuration::from_nanos(10)));
        sim.run();
        let trace = h.take_event_trace();
        assert!(trace.iter().any(|e| e.kind == "call" && e.time_ns == 5));
        assert!(trace.iter().any(|e| e.kind == "wake" && e.time_ns == 10));
        // Trace is in dispatch order: time is non-decreasing.
        for w in trace.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
    }

    #[test]
    fn capped_event_trace_truncates_with_sentinel() {
        let sim = Simulation::new();
        let h = sim.handle();
        h.enable_event_trace_with_cap(8);
        sim.spawn("p", |env| {
            for _ in 0..32 {
                env.sleep(SimDuration::from_nanos(10));
            }
        });
        sim.run();
        let events = h.events_processed();
        let trace = h.take_event_trace();
        assert_eq!(trace.len(), 9, "8 records + 1 sentinel");
        let sentinel = trace.last().expect("sentinel");
        assert_eq!(sentinel.kind, "truncated");
        assert_eq!(sentinel.pid, None);
        assert_eq!(
            sentinel.seq,
            events - 8,
            "sentinel seq counts the dropped records"
        );
        // The kept prefix is still an exact, ordered prefix.
        for w in trace[..8].windows(2) {
            assert!((w[0].time_ns, w[0].seq) < (w[1].time_ns, w[1].seq));
        }
        // Taking drains the dropped count too: a second take is clean.
        assert!(h.take_event_trace().is_empty());
    }

    #[test]
    fn uncapped_scenarios_fit_default_cap() {
        // The committed chaos-oracle scenarios run well under the default
        // cap, so enabling the default trace changes nothing for them.
        let sim = Simulation::new();
        let h = sim.handle();
        h.enable_event_trace();
        sim.spawn("p", |env| {
            for _ in 0..100 {
                env.sleep(SimDuration::from_nanos(1));
            }
        });
        sim.run();
        let trace = h.take_event_trace();
        assert!(trace.iter().all(|e| e.kind != "truncated"));
    }

    #[test]
    fn first_divergence_reports_index_and_records() {
        let a = vec![EventRecord {
            time_ns: 1,
            seq: 0,
            kind: "wake",
            pid: Some(0),
        }];
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
        b.push(EventRecord {
            time_ns: 2,
            seq: 1,
            kind: "call",
            pid: None,
        });
        let (i, ea, eb) = first_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(i, 1);
        assert_eq!(ea, None);
        assert_eq!(eb.unwrap().to_string(), "t=2ns seq=1 call");
    }

    #[test]
    fn scheduler_callback_runs_at_requested_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        let h2 = h.clone();
        h.schedule_call(SimTime::from_nanos(42), move || {
            f2.store(h2.now().as_nanos(), AO::SeqCst);
        });
        sim.run();
        assert_eq!(fired.load(AO::SeqCst), 42);
    }

    #[test]
    fn deep_timer_spread_dispatches_in_order() {
        // Timers spanning the wheel's level-0 window, level-1 window and
        // the overflow heap, scheduled by a single process: the kernel
        // must fire them in exact (time, seq) order.
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut times: Vec<u64> = (0..200)
            .map(|i| splitmix64(i as u64 ^ 0xABCD) % 60_000_000_000)
            .collect();
        times.push(0);
        times.push(90_000_000_000_000); // deep overflow
        for &t in &times {
            let fired = fired.clone();
            h.schedule_call(SimTime::from_nanos(t), move || {
                fired.lock().push(t);
            });
        }
        sim.run();
        let got = fired.lock().clone();
        let mut want = times.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
