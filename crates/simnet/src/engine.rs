//! The discrete-event simulation kernel.
//!
//! Simulated actors ("processes") are ordinary closures that run on real OS
//! threads, but **exactly one process executes at any instant**: the
//! scheduler hands control to a process and blocks until that process either
//! suspends on a simulation primitive (sleep, channel, resource, link
//! transfer) or finishes. Events with equal timestamps fire in FIFO order
//! (monotonic sequence numbers), so a given program produces the same
//! timeline on every run.
//!
//! This is the classic "SimPy with threads" construction: it buys natural,
//! blocking, sequential code for workloads (a VM monitor model is literally
//! a loop of `read`/`write`/`compute` calls) at the cost of one parked OS
//! thread per live process — trivially cheap at the scale of these
//! experiments (tens of processes).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::fault::splitmix64;
use crate::telemetry::Telemetry;
use crate::time::{SimDuration, SimTime};

/// How the kernel schedules at the OS level.
///
/// Every policy observes the same virtual-time contract: events fire in
/// `(time, seq)` order, exactly one process runs at any instant. What a
/// policy may vary is the *incidental* OS-level choreography — which
/// thread performs a handoff, whether a self-wake takes the fast path,
/// gratuitous `yield_now` calls. Those choices are invisible to a
/// correctly synchronized simulation, which is precisely what makes
/// [`SchedPolicy::chaos`] an oracle: run the same workload under several
/// seeds and any divergence in the event timeline or reports is a real
/// ordering bug, not noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Production behavior: FIFO tie-break, direct baton handoff,
    /// self-wake fast path. The default.
    Fifo,
    /// Deterministic-but-adversarial schedule perturbation. At every
    /// suspend the kernel draws from a seeded PRNG (draws are serialized
    /// by the one-process-at-a-time invariant, so each seed replays
    /// exactly) and may insert OS yields, route the handoff through a
    /// pool worker, or force the slow self-wake path.
    Chaos {
        /// PRNG seed; each seed is one reproducible adversarial schedule.
        seed: u64,
    },
    /// Test-only broken policy: violates the FIFO tie-break by swapping
    /// equal-time wake events with seeded coin flips. Exists so tests can
    /// prove the divergence oracle actually fires; never use it for
    /// measurements.
    #[doc(hidden)]
    BrokenTieBreak {
        /// Seed for the coin flips.
        seed: u64,
    },
}

impl SchedPolicy {
    /// Shorthand for [`SchedPolicy::Chaos`] with the given seed.
    pub fn chaos(seed: u64) -> Self {
        SchedPolicy::Chaos { seed }
    }
}

/// Process-wide default [`SchedPolicy`] picked up by [`Simulation::new`].
/// Lets a binary-level flag (`--sched-chaos <seed>`) reach every
/// simulation constructed inside library code without threading a
/// parameter through every call site.
static DEFAULT_POLICY: Mutex<SchedPolicy> = Mutex::new(SchedPolicy::Fifo);

/// Set the process-wide default scheduling policy for simulations
/// created afterwards via [`Simulation::new`].
pub fn set_default_sched_policy(p: SchedPolicy) {
    *DEFAULT_POLICY.lock() = p;
}

/// The current process-wide default scheduling policy.
pub fn default_sched_policy() -> SchedPolicy {
    *DEFAULT_POLICY.lock()
}

/// One dispatched event, as recorded by the event trace (see
/// [`SimHandle::enable_event_trace`]). Two runs of the same workload must
/// produce identical traces under any [`SchedPolicy`] that honors the
/// virtual-time contract; [`first_divergence`] finds the first index
/// where they do not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time of the event, in nanoseconds.
    pub time_ns: u64,
    /// The event's FIFO sequence number.
    pub seq: u64,
    /// Event kind: `"wake"`, `"call"`, or `"cancellable-call"`.
    pub kind: &'static str,
    /// Woken pid for `"wake"` events.
    pub pid: Option<usize>,
}

impl std::fmt::Display for EventRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pid {
            Some(pid) => write!(
                f,
                "t={}ns seq={} {} pid={}",
                self.time_ns, self.seq, self.kind, pid
            ),
            None => write!(f, "t={}ns seq={} {}", self.time_ns, self.seq, self.kind),
        }
    }
}

/// Compare two event traces; `Some((index, a, b))` is the first position
/// where they differ (`None` entries mean one trace ended early). This is
/// the schedule-chaos oracle's report: the first diverging event pins
/// where two schedules stopped agreeing.
pub fn first_divergence(
    a: &[EventRecord],
    b: &[EventRecord],
) -> Option<(usize, Option<EventRecord>, Option<EventRecord>)> {
    let n = a.len().max(b.len());
    for i in 0..n {
        let ea = a.get(i);
        let eb = b.get(i);
        if ea != eb {
            return Some((i, ea.cloned(), eb.cloned()));
        }
    }
    None
}

/// Identifier of a simulated process.
pub(crate) type Pid = usize;

/// Sentinel panic payload used to unwind a process thread when the
/// simulation shuts down while the process is still blocked.
struct SimAbort;

/// Install (once) a panic hook that silences [`SimAbort`] unwinds — they
/// are the normal shutdown path for blocked processes, not errors — and
/// defers everything else to the previous hook.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

enum EventKind {
    /// Resume the given process.
    Wake(Pid),
    /// Run an arbitrary callback on the scheduler thread (used by the
    /// fluid-flow link model to complete transfers).
    Call(Box<dyn FnOnce() + Send>),
    /// Like `Call`, but carries a cancellation flag. A cancelled event is
    /// skipped by the scheduler *without* advancing `now` or counting as
    /// processed, so an unfired timeout leaves the timeline untouched —
    /// essential for deadline timers that almost never fire.
    CancellableCall(Arc<AtomicBool>, Box<dyn FnOnce() + Send>),
}

/// Token returned by [`SimHandle::schedule_call_cancellable`]; cancelling
/// it makes the scheduled callback a no-op that does not advance simulated
/// time when its slot comes up.
#[derive(Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Prevent the associated callback from running (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Relaxed);
    }

    /// Whether the callback has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcState {
    /// Not yet started or blocked on a primitive.
    Waiting,
    /// Currently executing (the scheduler is parked).
    Running,
    /// Finished (normally or by panic).
    Done,
}

pub(crate) struct ProcCtl {
    name: String,
    state: Mutex<ProcState>,
    cv: Condvar,
    abort: Mutex<bool>,
}

impl ProcCtl {
    fn new(name: String) -> Self {
        ProcCtl {
            name,
            state: Mutex::new(ProcState::Waiting),
            cv: Condvar::new(),
            abort: Mutex::new(false),
        }
    }
}

struct KernelInner {
    heap: BinaryHeap<Event>,
    now: SimTime,
    seq: u64,
    procs: Vec<Arc<ProcCtl>>,
    failures: Vec<String>,
    shutting_down: bool,
    events_processed: u64,
    policy: SchedPolicy,
    /// PRNG state for chaos/broken policies. Draws happen under this
    /// mutex and only from the single running process (or the single
    /// baton holder inside dispatch), so the draw sequence — and thus the
    /// whole perturbation schedule — is a pure function of the seed.
    rng: u64,
    /// When `Some`, every dispatched event is appended (cancelled events
    /// are skipped: they never advance time).
    trace: Option<Vec<EventRecord>>,
}

/// A process body, boxed for hand-off to a pool worker.
type Job = Box<dyn FnOnce() + Send>;

struct PoolQueue {
    /// Jobs claimed by a parked worker but not yet picked up. A job is
    /// only queued when `idle` was positive (and decremented) — otherwise
    /// a fresh thread is spawned with the job directly — so nothing here
    /// ever waits on a busy worker.
    jobs: std::collections::VecDeque<Job>,
    /// Workers parked on the condvar and not yet claimed by a job.
    idle: usize,
    /// Set when the last [`SimHandle`] drops; parked workers exit.
    closed: bool,
}

struct PoolShared {
    q: Mutex<PoolQueue>,
    cv: Condvar,
}

/// Reusable OS threads for process bodies.
///
/// A fresh thread per simulated process costs a `clone(2)`, a stack
/// `mmap`/`munmap` pair and a page-fault storm — at tens of thousands of
/// short-lived processes (parallel RPC fan-out) that kernel time, mostly
/// TLB shootdowns, dominates the wall clock. Workers instead park between
/// processes and are re-dispatched, so a run needs only as many OS threads
/// as its peak count of *live* processes, with warm stacks.
///
/// Scheduling is unaffected: which OS thread executes a process body is
/// invisible to the simulation, so timelines stay bit-identical.
struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                q: Mutex::new(PoolQueue {
                    jobs: std::collections::VecDeque::new(),
                    idle: 0,
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Run `job` on a parked worker, or a fresh thread if none is free.
    /// A job occupies its worker for the process's whole lifetime
    /// (including parks), so it must never wait behind a busy worker.
    fn execute(&self, job: Job) {
        {
            let mut q = self.shared.q.lock();
            if q.idle > 0 {
                q.idle -= 1; // claim the worker for this job
                q.jobs.push_back(job);
                self.shared.cv.notify_one();
                return;
            }
        }
        let shared = self.shared.clone();
        // Process code is shallow (no deep recursion), so 512 KB is ample.
        std::thread::Builder::new()
            .name("sim-worker".into())
            .stack_size(512 * 1024)
            .spawn(move || worker_loop(shared, job))
            .expect("failed to spawn simulation worker thread");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock();
        q.closed = true;
        self.shared.cv.notify_all();
    }
}

fn worker_loop(shared: Arc<PoolShared>, first_job: Job) {
    let mut job = first_job;
    loop {
        job();
        let mut q = shared.q.lock();
        job = loop {
            if let Some(j) = q.jobs.pop_front() {
                // Consumes one claim: either ours (we registered below and
                // an `execute` decremented `idle` for it) or, if we just
                // finished a job and grabbed a queued one, the claim of a
                // parked sibling — which re-registers when it wakes empty.
                break j;
            }
            if q.closed {
                return;
            }
            q.idle += 1;
            shared.cv.wait(&mut q);
        };
    }
}

/// Shared, cloneable handle to the simulation kernel. Synchronization
/// primitives ([`crate::sync`], [`crate::link`]) hold one of these to
/// schedule wake-ups and callbacks.
#[derive(Clone)]
pub struct SimHandle {
    inner: Arc<Mutex<KernelInner>>,
    telemetry: Telemetry,
    pool: Arc<WorkerPool>,
    /// Set (and notified) by the baton holder that drains the event heap;
    /// [`Simulation::run`] parks on it between the first wake and
    /// quiescence.
    quiesced: Arc<(Mutex<bool>, Condvar)>,
}

impl SimHandle {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// The simulation-wide metric registry and trace sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of events the scheduler has processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.lock().events_processed
    }

    /// Start recording every dispatched event (virtual time, sequence
    /// number, kind, woken pid). Call before the run; pair with
    /// [`SimHandle::take_event_trace`]. Tracing is the raw material of
    /// the schedule-chaos oracle: traces from different [`SchedPolicy`]
    /// seeds must be identical.
    pub fn enable_event_trace(&self) {
        let mut k = self.inner.lock();
        if k.trace.is_none() {
            k.trace = Some(Vec::new());
        }
    }

    /// Take the recorded event trace (empty if tracing was never
    /// enabled), leaving tracing enabled with a fresh buffer if it was.
    pub fn take_event_trace(&self) -> Vec<EventRecord> {
        let mut k = self.inner.lock();
        match k.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Draw one chaos word, or `None` under non-chaos policies. The draw
    /// mutates the kernel PRNG under the kernel lock; because exactly one
    /// process runs at a time, the sequence of draws is deterministic for
    /// a given seed.
    fn chaos_word(&self) -> Option<u64> {
        let mut k = self.inner.lock();
        if !matches!(k.policy, SchedPolicy::Chaos { .. }) {
            return None;
        }
        k.rng = splitmix64(k.rng);
        Some(k.rng)
    }

    /// Number of processes spawned so far (each one is an OS thread for
    /// its lifetime; the wall-clock harness reports this).
    pub fn processes_spawned(&self) -> u64 {
        self.inner.lock().procs.len() as u64
    }

    /// Spawn a process; it becomes runnable at the current instant. This is
    /// the same operation as [`Simulation::spawn`] / [`Env::spawn`], exposed
    /// on the handle so library code (e.g. RPC servers) can start workers.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(self, name.into(), f)
    }

    pub(crate) fn schedule_wake(&self, time: SimTime, pid: Pid) {
        let mut k = self.inner.lock();
        let seq = k.seq;
        k.seq += 1;
        k.heap.push(Event {
            time,
            seq,
            kind: EventKind::Wake(pid),
        });
    }

    /// Schedule an arbitrary callback to run on the scheduler thread at
    /// `time`. The callback must not block; it may schedule further events
    /// and wake processes.
    pub fn schedule_call(&self, time: SimTime, f: impl FnOnce() + Send + 'static) {
        let mut k = self.inner.lock();
        let seq = k.seq;
        k.seq += 1;
        k.heap.push(Event {
            time,
            seq,
            kind: EventKind::Call(Box::new(f)),
        });
    }

    /// Schedule a callback like [`SimHandle::schedule_call`], returning a
    /// [`CancelToken`]. If the token is cancelled before the event's time
    /// arrives, the scheduler skips the event entirely: `now` does not
    /// advance to the event's time and the callback never runs. Timeout
    /// timers use this so that a timer armed past the natural end of the
    /// simulation does not stretch the final timestamp.
    pub fn schedule_call_cancellable(
        &self,
        time: SimTime,
        f: impl FnOnce() + Send + 'static,
    ) -> CancelToken {
        let flag = Arc::new(AtomicBool::new(false));
        let mut k = self.inner.lock();
        let seq = k.seq;
        k.seq += 1;
        k.heap.push(Event {
            time,
            seq,
            kind: EventKind::CancellableCall(flag.clone(), Box::new(f)),
        });
        CancelToken(flag)
    }

    fn spawn_inner(
        &self,
        name: String,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> (Pid, Arc<ProcCtl>) {
        let ctl = Arc::new(ProcCtl::new(name));
        let pid;
        {
            // One kernel-lock acquisition covers registration AND the
            // initial wake. Spawning used to take this lock three times
            // (procs push, `now()`, `schedule_wake`); because the
            // spawning process holds the baton until it suspends, nobody
            // can interleave an event between those acquisitions, so
            // folding them together allocates the identical sequence
            // number and leaves the event timeline bit-for-bit unchanged
            // while cutting spawn cost at fleet scale (1000+ tasks).
            let mut k = self.inner.lock();
            assert!(
                !k.shutting_down,
                "cannot spawn a process while the simulation is shutting down"
            );
            pid = k.procs.len();
            k.procs.push(ctl.clone());
            let time = k.now;
            let seq = k.seq;
            k.seq += 1;
            k.heap.push(Event {
                time,
                seq,
                kind: EventKind::Wake(pid),
            });
        }
        let env = Env {
            handle: self.clone(),
            pid,
            ctl: ctl.clone(),
        };
        let thread_ctl = ctl.clone();
        let handle = self.clone();
        // Hand the body to a pool worker rather than a fresh OS thread:
        // see [`WorkerPool`].
        self.pool.execute(Box::new(move || {
            // Wait for the first wake before running the body.
            {
                let mut st = thread_ctl.state.lock();
                while *st != ProcState::Running {
                    thread_ctl.cv.wait(&mut st);
                }
            }
            let aborted_at_start = *thread_ctl.abort.lock();
            if !aborted_at_start {
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(env)));
                if let Err(payload) = result {
                    if payload.downcast_ref::<SimAbort>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        handle
                            .inner
                            .lock()
                            .failures
                            .push(format!("process '{}' panicked: {msg}", thread_ctl.name));
                    }
                }
            }
            {
                let mut st = thread_ctl.state.lock();
                *st = ProcState::Done;
                thread_ctl.cv.notify_all();
            }
            // A panicking `Call` closure must not take the worker down
            // with it (the baton would be lost and the run would hang):
            // record it like a process failure and declare quiescence so
            // `run()` can surface it.
            handle.pass_baton_guarded();
        }));
        (pid, ctl)
    }

    /// Hand control to `pid` and block until it suspends or finishes.
    /// Only used by the shutdown phase of [`Simulation::run`]; during the
    /// run itself control passes process-to-process (see
    /// [`SimHandle::dispatch_until_wake`]).
    fn run_proc(&self, pid: Pid) {
        let ctl = self.inner.lock().procs[pid].clone();
        {
            let mut st = ctl.state.lock();
            if *st == ProcState::Done {
                return;
            }
            debug_assert_eq!(*st, ProcState::Waiting, "woke a process that is running");
            *st = ProcState::Running;
            ctl.cv.notify_all();
        }
        let mut st = ctl.state.lock();
        while *st == ProcState::Running {
            ctl.cv.wait(&mut st);
        }
    }

    /// Pop and dispatch events until one hands control to a process (its
    /// pid is returned) or the heap drains (`None`). `Call` events run
    /// inline on the calling thread — the baton holder *is* the scheduler.
    /// Wakes for finished processes are skipped (their timers may
    /// outlive them), exactly as the central loop used to.
    fn dispatch_until_wake(&self) -> Option<Pid> {
        loop {
            let ev = {
                let mut k = self.inner.lock();
                match k.heap.pop() {
                    Some(mut ev) => {
                        if let EventKind::CancellableCall(flag, _) = &ev.kind {
                            if flag.load(AtomicOrdering::Relaxed) {
                                // Cancelled timer: discard without touching
                                // `now` or the processed-event count, so it
                                // leaves no trace on the timeline.
                                continue;
                            }
                        }
                        if let SchedPolicy::BrokenTieBreak { .. } = k.policy {
                            // Test-only: seeded coin flips swap equal-time
                            // wake pairs, breaking the FIFO tie-break the
                            // determinism contract rests on. The chaos
                            // oracle must catch the resulting divergence.
                            k.rng = splitmix64(k.rng);
                            let flip = k.rng & 1 == 1;
                            let swappable = matches!(ev.kind, EventKind::Wake(_))
                                && k.heap.peek().is_some_and(|p| {
                                    p.time == ev.time && matches!(p.kind, EventKind::Wake(_))
                                });
                            if flip && swappable {
                                let other = k.heap.pop().expect("peeked event");
                                k.heap.push(ev);
                                ev = other;
                            }
                        }
                        k.now = ev.time;
                        k.events_processed += 1;
                        if let Some(trace) = k.trace.as_mut() {
                            trace.push(EventRecord {
                                time_ns: ev.time.as_nanos(),
                                seq: ev.seq,
                                kind: match &ev.kind {
                                    EventKind::Wake(_) => "wake",
                                    EventKind::Call(_) => "call",
                                    EventKind::CancellableCall(..) => "cancellable-call",
                                },
                                pid: match &ev.kind {
                                    EventKind::Wake(pid) => Some(*pid),
                                    _ => None,
                                },
                            });
                        }
                        ev
                    }
                    None => return None,
                }
            };
            match ev.kind {
                EventKind::Wake(pid) => {
                    let ctl = self.inner.lock().procs[pid].clone();
                    if *ctl.state.lock() == ProcState::Done {
                        continue;
                    }
                    return Some(pid);
                }
                EventKind::Call(f) => f(),
                EventKind::CancellableCall(_, f) => f(),
            }
        }
    }

    /// Mark `pid` runnable and wake its (parked) thread.
    fn wake_proc(&self, pid: Pid) {
        let ctl = self.inner.lock().procs[pid].clone();
        let mut st = ctl.state.lock();
        debug_assert_eq!(*st, ProcState::Waiting, "woke a process that is running");
        *st = ProcState::Running;
        ctl.cv.notify_all();
    }

    /// Pass the baton onward after the current process yields it: hand
    /// control to the next runnable process, or signal quiescence so
    /// [`Simulation::run`] can finish. No-op once shutdown has begun —
    /// the main thread drives aborts itself and events scheduled by
    /// unwinding processes must stay unprocessed.
    fn pass_baton(&self) {
        if self.inner.lock().shutting_down {
            return;
        }
        match self.dispatch_until_wake() {
            Some(pid) => self.wake_proc(pid),
            None => {
                let (flag, cv) = &*self.quiesced;
                *flag.lock() = true;
                cv.notify_all();
            }
        }
    }

    /// [`SimHandle::pass_baton`] with the panic containment the process
    /// exit path needs: a panicking `Call` closure is recorded as a
    /// failure and quiescence is declared so `run()` can surface it,
    /// instead of losing the baton and hanging the run.
    fn pass_baton_guarded(&self) {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| self.pass_baton())) {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            self.inner
                .lock()
                .failures
                .push(format!("scheduled callback panicked: {msg}"));
            let (flag, cv) = &*self.quiesced;
            *flag.lock() = true;
            cv.notify_all();
        }
    }
}

/// The per-process capability handle, passed to every process body. All
/// blocking simulation primitives go through an `Env`.
#[derive(Clone)]
pub struct Env {
    handle: SimHandle,
    pid: Pid,
    ctl: Arc<ProcCtl>,
}

impl Env {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// Access the kernel handle (for constructing sync objects).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The simulation-wide metric registry and trace sink.
    pub fn telemetry(&self) -> &Telemetry {
        self.handle.telemetry()
    }

    /// Name of this process.
    pub fn name(&self) -> &str {
        &self.ctl.name
    }

    /// Advance simulated time by `d` for this process.
    pub fn sleep(&self, d: SimDuration) {
        let t = self.now() + d;
        self.handle.schedule_wake(t, self.pid);
        self.suspend();
    }

    /// Let every other event scheduled at the current instant run first.
    pub fn yield_now(&self) {
        self.sleep(SimDuration::ZERO);
    }

    /// Spawn a child process; it becomes runnable at the current instant.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(&self.handle, name.into(), f)
    }

    pub(crate) fn pid(&self) -> Pid {
        self.pid
    }

    /// Block until some primitive wakes this process. Used internally by
    /// channels, resources, signals and links: the caller registers itself
    /// with the primitive under the primitive's lock, releases the lock,
    /// then suspends. Because only one process runs at a time, no wake can
    /// be lost in between.
    pub(crate) fn suspend(&self) {
        {
            let mut st = self.ctl.state.lock();
            debug_assert_eq!(*st, ProcState::Running);
            *st = ProcState::Waiting;
        }
        // Under SchedPolicy::Chaos, perturb the OS-level choreography of
        // this handoff. All three perturbations are semantically inert for
        // correctly synchronized code — they stress thread interleavings
        // without touching virtual-time event order.
        let chaos = self.handle.chaos_word();
        if let Some(w) = chaos {
            for _ in 0..(w & 3) {
                std::thread::yield_now();
            }
        }
        let via_pool = chaos.is_some_and(|w| (w >> 3) & 7 == 0);
        let slow_self = chaos.is_some_and(|w| (w >> 6) & 1 == 1);
        if via_pool && !self.handle.inner.lock().shutting_down {
            // Forced preemption: route the handoff through a pool worker
            // (the classic central-scheduler shape — two context switches
            // instead of one) rather than dispatching inline.
            let h = self.handle.clone();
            self.handle
                .pool
                .execute(Box::new(move || h.pass_baton_guarded()));
        } else {
            // Pass the baton directly to the next runnable process instead
            // of round-tripping through a central scheduler thread: one
            // context switch per handoff instead of two. If the next event
            // is our own wake (a sleep chain with no interleaved process),
            // control never leaves this thread at all.
            let next = if self.handle.inner.lock().shutting_down {
                None
            } else {
                self.handle.dispatch_until_wake()
            };
            match next {
                Some(pid) if pid == self.pid && !slow_self => {
                    let mut st = self.ctl.state.lock();
                    debug_assert_eq!(*st, ProcState::Waiting);
                    *st = ProcState::Running;
                    return;
                }
                // With `slow_self`, a self-wake skips the fast path above
                // and goes through wake_proc + the condvar below like any
                // other handoff (the wait loop falls straight through
                // because the state is already Running).
                Some(pid) => self.handle.wake_proc(pid),
                None => {
                    let (flag, cv) = &*self.handle.quiesced;
                    *flag.lock() = true;
                    cv.notify_all();
                }
            }
        }
        let mut st = self.ctl.state.lock();
        while *st != ProcState::Running {
            self.ctl.cv.wait(&mut st);
        }
        let aborted = *self.ctl.abort.lock();
        drop(st);
        if aborted {
            install_quiet_abort_hook();
            panic::panic_any(SimAbort);
        }
    }
}

/// Handle to a spawned process; lets another process wait for completion.
pub struct ProcessHandle {
    done: crate::sync::Signal,
}

impl ProcessHandle {
    /// Block the calling process until the spawned process finishes.
    pub fn join(&self, env: &Env) {
        self.done.wait(env);
    }

    /// Whether the process has already finished.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

fn spawn_with_handle(
    handle: &SimHandle,
    name: String,
    f: impl FnOnce(Env) + Send + 'static,
) -> ProcessHandle {
    let done = crate::sync::Signal::new(handle);
    let done2 = done.clone();
    handle.spawn_inner(name, move |env| {
        f(env.clone());
        done2.set();
    });
    ProcessHandle { done }
}

/// A discrete-event simulation: owns the event queue and the scheduler.
pub struct Simulation {
    handle: SimHandle,
}

impl Simulation {
    /// Create an empty simulation at time zero, under the process-wide
    /// default scheduling policy (see [`set_default_sched_policy`]).
    pub fn new() -> Self {
        Self::with_policy(default_sched_policy())
    }

    /// Create an empty simulation at time zero under an explicit
    /// scheduling policy.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        let seed = match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::Chaos { seed } | SchedPolicy::BrokenTieBreak { seed } => seed,
        };
        Simulation {
            handle: SimHandle {
                inner: Arc::new(Mutex::new(KernelInner {
                    heap: BinaryHeap::new(),
                    now: SimTime::ZERO,
                    seq: 0,
                    procs: Vec::new(),
                    failures: Vec::new(),
                    shutting_down: false,
                    events_processed: 0,
                    policy,
                    rng: splitmix64(seed ^ 0x5EED_CAFE_F00D_D00D),
                    trace: None,
                })),
                telemetry: Telemetry::new(),
                pool: Arc::new(WorkerPool::new()),
                quiesced: Arc::new((Mutex::new(false), Condvar::new())),
            },
        }
    }

    /// Cloneable handle for constructing primitives before the run starts.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a root process; it becomes runnable at time zero (or the
    /// current time, if spawned mid-run from outside — not typical).
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce(Env) + Send + 'static,
    ) -> ProcessHandle {
        spawn_with_handle(&self.handle, name.into(), f)
    }

    /// Run the simulation to quiescence (empty event queue) and return the
    /// final simulated time.
    ///
    /// Processes still blocked at quiescence (e.g. a server loop waiting on
    /// a request channel that will never receive again) are aborted
    /// cleanly. Panics raised *inside* processes are collected and re-raised
    /// here so test failures point at the real error.
    pub fn run(self) -> SimTime {
        let handle = self.handle;
        // Drive the first handoff from this thread, then park: control
        // passes process-to-process (each suspending process dispatches
        // its successor directly) until some baton holder drains the
        // event heap and signals quiescence.
        if let Some(pid) = handle.dispatch_until_wake() {
            handle.wake_proc(pid);
            let (flag, cv) = &*handle.quiesced;
            let mut q = flag.lock();
            while !*q {
                cv.wait(&mut q);
            }
        }

        // Quiescent: abort any process still blocked so its thread exits.
        let (final_time, procs) = {
            let mut k = handle.inner.lock();
            k.shutting_down = true;
            (k.now, k.procs.clone())
        };
        for (pid, ctl) in procs.iter().enumerate() {
            let is_done = { *ctl.state.lock() == ProcState::Done };
            if !is_done {
                *ctl.abort.lock() = true;
                handle.run_proc(pid);
            }
        }
        let failures = {
            let mut k = handle.inner.lock();
            std::mem::take(&mut k.failures)
        };
        if !failures.is_empty() {
            panic!("simulation process failures:\n  {}", failures.join("\n  "));
        }
        final_time
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = Simulation::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn instantly_finishing_processes_quiesce_under_every_policy() {
        // Parking-order assumption, pinned: a process that never
        // suspends can finish — and signal quiescence — while the main
        // thread is still on its way from the first dispatch to the
        // `quiesced` wait loop. The (flag, condvar) pair makes the wait
        // fall through on the already-set flag instead of sleeping
        // forever. Chaos policies additionally route the final baton
        // handoffs through the worker pool, stressing the same window
        // from a different thread.
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::chaos(1),
            SchedPolicy::chaos(7),
        ] {
            let sim = Simulation::with_policy(policy);
            let ran = Arc::new(AtomicU64::new(0));
            for i in 0..16 {
                let ran = ran.clone();
                sim.spawn(format!("f{i}"), move |_env| {
                    ran.fetch_add(1, AO::SeqCst);
                });
            }
            assert_eq!(sim.run(), SimTime::ZERO, "no process advanced time");
            assert_eq!(ran.load(AO::SeqCst), 16, "every process ran");
        }
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new();
        let observed = Arc::new(AtomicU64::new(0));
        let obs = observed.clone();
        sim.spawn("sleeper", move |env| {
            env.sleep(SimDuration::from_millis(250));
            obs.store(env.now().as_nanos(), AO::SeqCst);
        });
        let end = sim.run();
        assert_eq!(observed.load(AO::SeqCst), 250_000_000);
        assert_eq!(end.as_nanos(), 250_000_000);
    }

    #[test]
    fn equal_time_events_fire_in_spawn_order() {
        let sim = Simulation::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = order.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep(SimDuration::from_secs(1));
                order.lock().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_and_join() {
        let sim = Simulation::new();
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        sim.spawn("parent", move |env| {
            let mut children = Vec::new();
            for i in 1..=4u64 {
                let t = t2.clone();
                children.push(env.spawn(format!("child{i}"), move |env| {
                    env.sleep(SimDuration::from_secs(i));
                    t.fetch_add(i, AO::SeqCst);
                }));
            }
            for c in &children {
                c.join(&env);
            }
            // All children joined; longest slept 4s.
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(4));
        });
        let end = sim.run();
        assert_eq!(total.load(AO::SeqCst), 10);
        assert_eq!(end.as_nanos(), SimDuration::from_secs(4).as_nanos());
    }

    #[test]
    fn blocked_process_is_aborted_cleanly_at_quiescence() {
        let sim = Simulation::new();
        let h = sim.handle();
        let (_tx, rx) = crate::sync::channel::<u32>(&h);
        sim.spawn("server", move |env| {
            // This recv never completes; the simulation must still shut
            // down and not report the abort as a failure.
            let _ = rx.recv(&env);
            unreachable!("recv should have been aborted");
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panics_propagate_to_run() {
        let sim = Simulation::new();
        sim.spawn("bad", |_env| panic!("boom"));
        sim.run();
    }

    #[test]
    fn cancelled_callback_does_not_advance_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        // A timer far in the future, cancelled before the run: the
        // simulation must end at the last *live* event, not at the timer.
        let token = h.schedule_call_cancellable(SimTime::from_nanos(1_000_000), move || {
            f2.store(1, AO::SeqCst);
        });
        sim.spawn("worker", |env| env.sleep(SimDuration::from_nanos(10)));
        token.cancel();
        let end = sim.run();
        assert_eq!(fired.load(AO::SeqCst), 0);
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn uncancelled_cancellable_callback_fires() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        let h2 = h.clone();
        let token = h.schedule_call_cancellable(SimTime::from_nanos(77), move || {
            f2.store(h2.now().as_nanos(), AO::SeqCst);
        });
        sim.run();
        assert_eq!(fired.load(AO::SeqCst), 77);
        assert!(!token.is_cancelled());
    }

    /// A workload with rich contention: equal-time wakes, channels,
    /// resources, nested spawns. Returns (final time, event trace,
    /// observed completion order).
    fn contended_run(policy: SchedPolicy) -> (SimTime, Vec<EventRecord>, Vec<u64>) {
        let sim = Simulation::with_policy(policy);
        let h = sim.handle();
        h.enable_event_trace();
        let order = Arc::new(Mutex::new(Vec::new()));
        let res = crate::sync::Resource::new(&h, 2);
        let (tx, rx) = crate::sync::channel::<u64>(&h);
        for i in 0..6u64 {
            let order = order.clone();
            let res = res.clone();
            let tx = tx.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.sleep(SimDuration::from_millis(10)); // all collide at t=10ms
                let _g = res.acquire(&env);
                env.sleep(SimDuration::from_millis(5 * (i % 3)));
                order.lock().push(i);
                tx.send(i);
            });
        }
        drop(tx);
        let sink = order.clone();
        sim.spawn("sink", move |env| {
            while let Ok(v) = rx.recv(&env) {
                sink.lock().push(100 + v);
            }
        });
        let end = sim.run();
        let trace = h.take_event_trace();
        let got = order.lock().clone();
        (end, trace, got)
    }

    #[test]
    fn chaos_seeds_leave_timeline_identical() {
        let (t0, trace0, order0) = contended_run(SchedPolicy::Fifo);
        assert!(!trace0.is_empty());
        for seed in 0..8u64 {
            let (t, trace, order) = contended_run(SchedPolicy::chaos(seed));
            assert_eq!(t, t0, "seed {seed}: final time diverged");
            assert_eq!(order, order0, "seed {seed}: completion order diverged");
            if let Some((i, a, b)) = first_divergence(&trace0, &trace) {
                panic!(
                    "seed {seed}: event trace diverged at index {i}: fifo={:?} chaos={:?}",
                    a.map(|e| e.to_string()),
                    b.map(|e| e.to_string())
                );
            }
        }
    }

    #[test]
    fn broken_tie_break_is_caught_by_the_oracle() {
        // The intentionally seeded ordering bug: BrokenTieBreak swaps
        // equal-time wakes, so some seed must produce a diverging trace —
        // proof the oracle detects real races rather than vacuously
        // passing. (A correct policy passes the same check above.)
        let (_, trace0, _) = contended_run(SchedPolicy::Fifo);
        let mut caught = None;
        for seed in 0..8u64 {
            let (_, trace, _) = contended_run(SchedPolicy::BrokenTieBreak { seed });
            if let Some((i, a, b)) = first_divergence(&trace0, &trace) {
                caught = Some((seed, i, a, b));
                break;
            }
        }
        let (seed, i, a, b) = caught.expect("no BrokenTieBreak seed diverged — oracle is blind");
        // The first-divergence report names both events.
        let a = a.expect("fifo trace ended early");
        let b = b.expect("broken trace ended early");
        assert_eq!(
            a.time_ns, b.time_ns,
            "seed {seed}: tie-break bug must diverge within one instant (index {i})"
        );
        assert_ne!(a.seq, b.seq);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let (t1, trace1, order1) = contended_run(SchedPolicy::chaos(3));
        let (t2, trace2, order2) = contended_run(SchedPolicy::chaos(3));
        assert_eq!(t1, t2);
        assert_eq!(order1, order2);
        assert_eq!(first_divergence(&trace1, &trace2), None);
    }

    #[test]
    fn default_policy_is_picked_up_by_new() {
        // Serialize against other tests touching the global default.
        assert_eq!(default_sched_policy(), SchedPolicy::Fifo);
        set_default_sched_policy(SchedPolicy::chaos(9));
        let sim = Simulation::new();
        let policy = sim.handle().inner.lock().policy;
        set_default_sched_policy(SchedPolicy::Fifo);
        assert_eq!(policy, SchedPolicy::Chaos { seed: 9 });
    }

    #[test]
    fn event_trace_records_wakes_and_calls() {
        let sim = Simulation::new();
        let h = sim.handle();
        h.enable_event_trace();
        h.schedule_call(SimTime::from_nanos(5), || {});
        sim.spawn("p", |env| env.sleep(SimDuration::from_nanos(10)));
        sim.run();
        let trace = h.take_event_trace();
        assert!(trace.iter().any(|e| e.kind == "call" && e.time_ns == 5));
        assert!(trace.iter().any(|e| e.kind == "wake" && e.time_ns == 10));
        // Trace is in dispatch order: time is non-decreasing.
        for w in trace.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
    }

    #[test]
    fn first_divergence_reports_index_and_records() {
        let a = vec![EventRecord {
            time_ns: 1,
            seq: 0,
            kind: "wake",
            pid: Some(0),
        }];
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
        b.push(EventRecord {
            time_ns: 2,
            seq: 1,
            kind: "call",
            pid: None,
        });
        let (i, ea, eb) = first_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(i, 1);
        assert_eq!(ea, None);
        assert_eq!(eb.unwrap().to_string(), "t=2ns seq=1 call");
    }

    #[test]
    fn scheduler_callback_runs_at_requested_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        let h2 = h.clone();
        h.schedule_call(SimTime::from_nanos(42), move || {
            f2.store(h2.now().as_nanos(), AO::SeqCst);
        });
        sim.run();
        assert_eq!(fired.load(AO::SeqCst), 42);
    }
}
