//! Deterministic fault injection for the network model.
//!
//! The paper's GVFS proxies run over real WANs where packet loss, tunnel
//! resets and server restarts are routine. This module provides the
//! seed-driven primitives the reproduction uses to model them: a small
//! deterministic RNG ([`DetRng`], splitmix64) and a per-link fault plan
//! ([`LinkFaultPlan`]) describing probabilistic message drops and outage
//! windows. A link with no plan installed behaves byte- and
//! tick-identically to a fault-free link, which is what keeps every
//! existing benchmark timing unchanged when injection is off.

use crate::time::SimTime;

/// One step of the splitmix64 generator: a high-quality 64-bit mix used
/// for both the drop RNG and deterministic retransmit jitter. Pure
/// function of its input, so every consumer is replayable from its seed.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic RNG (splitmix64 stream). Not cryptographic; just
/// reproducible.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw value.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }
}

/// A half-open interval of simulated time during which a link is down:
/// messages entering the link are lost and in-flight flows are severed at
/// `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub start: SimTime,
    /// First instant after the outage (the link works again at `end`).
    pub end: SimTime,
}

impl OutageWindow {
    /// Whether `t` falls inside this window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// Seed-driven fault plan for one [`crate::Link`]: an independent drop
/// probability per message plus zero or more outage windows. Installed
/// via [`crate::Link::install_faults`].
#[derive(Debug, Clone)]
pub struct LinkFaultPlan {
    /// RNG seed for the per-message drop decisions.
    pub seed: u64,
    /// Probability that any given non-empty transfer is lost after
    /// traversing the link (models tail loss of the message).
    pub drop_prob: f64,
    /// Scheduled outage windows, during which every entering message is
    /// lost and in-flight flows are severed at the window start.
    pub outages: Vec<OutageWindow>,
}

impl LinkFaultPlan {
    /// A plan with the given seed, no drops, no outages.
    pub fn new(seed: u64) -> Self {
        LinkFaultPlan {
            seed,
            drop_prob: 0.0,
            outages: Vec::new(),
        }
    }

    /// Set the per-message drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_prob = p;
        self
    }

    /// Add an outage window `[start, end)`.
    pub fn outage(mut self, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "outage window must be non-empty");
        self.outages.push(OutageWindow { start, end });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn det_rng_is_reproducible_and_seed_sensitive() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let mut c = DetRng::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut rng = DetRng::new(7);
        let hits = (0..10_000).filter(|_| rng.chance(0.1)).count();
        assert!((800..1200).contains(&hits), "10% of 10k ≈ {hits}");
        let mut rng = DetRng::new(7);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        let mut rng = DetRng::new(7);
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn outage_window_contains_is_half_open() {
        let w = OutageWindow {
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(200),
        };
        assert!(!w.contains(SimTime::from_nanos(99)));
        assert!(w.contains(SimTime::from_nanos(100)));
        assert!(w.contains(SimTime::from_nanos(199)));
        assert!(!w.contains(SimTime::from_nanos(200)));
    }

    #[test]
    fn plan_builder_collects_windows() {
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = LinkFaultPlan::new(1).drop_prob(0.05).outage(t(10), t(20));
        assert_eq!(plan.drop_prob, 0.05);
        assert_eq!(plan.outages.len(), 1);
    }
}
