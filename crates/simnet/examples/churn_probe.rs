//! Engine scheduling-cost probe backing the perf-floor note in
//! DESIGN.md §5.10: runs churn-shaped workloads through the simulator
//! next to raw thread-handoff rings with the *same* kernel switch
//! pattern, so the delta between a `sim_*` line and its `raw_*` twin is
//! pure engine overhead while the `raw_*` line itself is the
//! context-switch floor of the host.
//!
//! ```text
//! cargo run --release -p simnet --example churn_probe
//! ```
//!
//! Wall-clock and context-switch counts are host-dependent; compare
//! lines within one run, not across machines.

use simnet::{Env, SimDuration, Simulation};
use std::time::Instant;

fn run(name: &str, procs: u64, iters: u64, gap: impl Fn(u64, u64) -> u64 + Copy + Send + 'static) {
    let sim = Simulation::new();
    let h = sim.handle();
    for p in 0..procs {
        sim.spawn(format!("churn{p}"), move |env: Env| {
            let mut s = p + 1;
            for i in 0..iters {
                s = simnet::splitmix64(s);
                env.sleep(SimDuration::from_micros(gap(s, i)));
                env.yield_now();
            }
        });
    }
    let (v0, n0) = total_ctx_switches();
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed().as_secs_f64();
    let (v1, n1) = total_ctx_switches();
    let events = h.events_processed();
    println!(
        "{name:<28} {events:>9} events  {wall:>7.3}s  {:>9.0} events/sec  {:.2}v+{:.2}nv sw/ev",
        events as f64 / wall,
        (v1 - v0) as f64 / events as f64,
        (n1 - n0) as f64 / events as f64,
    );
}

/// Raw park/unpark token ring in pid order: N real threads, one runnable
/// at a time, exactly the switch pattern of an N-proc simulated tie
/// storm — but with no simulator in the loop.
fn raw_park_ring(threads: usize, rounds: u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // Token counter: thread i runs turns where turn % threads == i.
    let turn = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let total = rounds * threads as u64;
    let mut joins = Vec::new();
    for i in 0..threads {
        let turn = turn.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            loop {
                let t = turn.load(Ordering::Acquire);
                if t >= total {
                    break;
                }
                if t % threads as u64 == i as u64 {
                    let next = turn.fetch_add(1, Ordering::AcqRel) + 1;
                    unsafe {
                        let tab = &*TABLE.load(Ordering::Acquire);
                        let nxt = (i + 1) % threads;
                        tab[nxt].unpark();
                        if next >= total {
                            // wake everyone so they can exit
                            for t in tab.iter() {
                                t.unpark();
                            }
                            break;
                        }
                    }
                } else {
                    std::thread::park();
                }
            }
        }));
    }
    let handles: Vec<std::thread::Thread> = joins.iter().map(|j| j.thread().clone()).collect();
    let boxed: &'static Vec<std::thread::Thread> = Box::leak(Box::new(handles));
    TABLE.store(
        boxed as *const _ as *mut _,
        std::sync::atomic::Ordering::Release,
    );
    let (v0, n0) = total_ctx_switches();
    let t0 = std::time::Instant::now();
    barrier.wait();
    while turn.load(std::sync::atomic::Ordering::Acquire) < total {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let wall = t0.elapsed().as_secs_f64();
    let (v1, n1) = total_ctx_switches();
    for j in joins {
        j.join().unwrap();
    }
    println!(
        "raw_park_ring_{threads:<8}     {total:>9} handoffs {wall:>7.3}s  {:>9.0} handoffs/sec  {:.2}v+{:.2}nv sw/ev",
        total as f64 / wall,
        (v1 - v0) as f64 / total as f64,
        (n1 - n0) as f64 / total as f64,
    );
}

/// The honest floor for churn: the wake order varies every round (a
/// precomputed random schedule with distinct consecutive entries), so
/// neither the caches nor the kernel can settle into a stable cyclic
/// order the way [`raw_park_ring`] lets them.
fn raw_park_ring_varying(threads: usize, total: u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let mut sched: Vec<u32> = Vec::with_capacity(total as usize + 1);
    let mut s = 0xABCDu64;
    let mut prev = u32::MAX;
    for _ in 0..=total {
        s = simnet::splitmix64(s);
        let mut t = (s % threads as u64) as u32;
        if t == prev {
            t = (t + 1) % threads as u32;
        }
        sched.push(t);
        prev = t;
    }
    let sched = Arc::new(sched);
    let turn = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let mut joins = Vec::new();
    for i in 0..threads {
        let sched = sched.clone();
        let turn = turn.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            loop {
                let c = turn.load(Ordering::Acquire);
                if c >= total {
                    break;
                }
                if sched[c as usize] == i as u32 {
                    let nc = c + 1;
                    turn.store(nc, Ordering::Release);
                    unsafe {
                        let tab = &*TABLE.load(Ordering::Acquire);
                        if nc >= total {
                            for t in tab.iter() {
                                t.unpark();
                            }
                            break;
                        }
                        tab[sched[nc as usize] as usize].unpark();
                    }
                } else {
                    std::thread::park();
                }
            }
        }));
    }
    let handles: Vec<std::thread::Thread> = joins.iter().map(|j| j.thread().clone()).collect();
    let boxed: &'static Vec<std::thread::Thread> = Box::leak(Box::new(handles));
    TABLE.store(
        boxed as *const _ as *mut _,
        std::sync::atomic::Ordering::Release,
    );
    let (v0, n0) = total_ctx_switches();
    let t0 = std::time::Instant::now();
    barrier.wait();
    while turn.load(std::sync::atomic::Ordering::Acquire) < total {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let wall = t0.elapsed().as_secs_f64();
    let (v1, n1) = total_ctx_switches();
    for j in joins {
        j.join().unwrap();
    }
    println!(
        "raw_park_ring_vary_{threads:<5}    {total:>9} handoffs {wall:>7.3}s  {:>9.0} handoffs/sec  {:.2}v+{:.2}nv sw/ev",
        total as f64 / wall,
        (v1 - v0) as f64 / total as f64,
        (n1 - n0) as f64 / total as f64,
    );
}

/// Sum voluntary + nonvoluntary context switches across all threads of
/// this process (reads /proc/self/task/*/status).
fn total_ctx_switches() -> (u64, u64) {
    let mut vol = 0u64;
    let mut nonvol = 0u64;
    if let Ok(rd) = std::fs::read_dir("/proc/self/task") {
        for ent in rd.flatten() {
            let p = ent.path().join("status");
            if let Ok(s) = std::fs::read_to_string(p) {
                for line in s.lines() {
                    if let Some(v) = line.strip_prefix("voluntary_ctxt_switches:") {
                        vol += v.trim().parse::<u64>().unwrap_or(0);
                    } else if let Some(v) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
                        nonvol += v.trim().parse::<u64>().unwrap_or(0);
                    }
                }
            }
        }
    }
    (vol, nonvol)
}

/// Published once before the rings start; each worker reads its
/// successor's `Thread` handle through it to unpark.
static TABLE: std::sync::atomic::AtomicPtr<Vec<std::thread::Thread>> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());

fn main() {
    // 1000 procs all sleeping the same fixed gap: a 1000-proc tie storm
    // every millisecond, in pid order — the exact switch pattern of
    // raw_park_ring_1000, so the delta to it is pure engine overhead.
    run("sim_ring_1000", 1000, 1_000, |_, _| 1000);
    raw_park_ring(1000, 1_000);
    raw_park_ring_varying(1000, 1_000_000);
    // The committed churn_1000 shape: 1000 procs, whole-µs ties common.
    run("churn_1000 (committed)", 1000, 1_000, |s, _| 1 + s % 128);
    run("churn_fixed64", 1000, 1_000, |_, _| 64);
}
