//! Bounded-window pipelined RPC fan-out — the shared transfer engine.
//!
//! The paper's WAN numbers come from keeping the wide link busy: the file
//! channel streams compressed state while the server compresses the next
//! piece, write-back pushes dirty blocks without waiting a round-trip per
//! block, and misses on sequential streams are fetched ahead of the
//! reader. All three paths share the same primitive: a FIFO job queue
//! drained by a small, fixed set of simnet worker processes — at most
//! `window` RPCs in flight, arbitrarily many jobs. [`run_windowed`] is
//! that primitive; the `bounded-fanout` lint rule keeps ad-hoc spawn
//! loops from reappearing elsewhere in `gvfs`.
//!
//! Determinism: simnet runs one process at a time and schedules wake-ups
//! in deterministic order, so the interleaving of the workers — and hence
//! every timing and telemetry value — is a pure function of the inputs.
//! Results are re-assembled by job index, so callers see them in
//! submission order regardless of completion order. With `window == 1`
//! the jobs run inline on the calling process, byte-for-byte and
//! tick-for-tick the old serial behaviour.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Counter, Env, Gauge, Histogram, SimDuration, Telemetry};

/// Knobs for the three overlapped WAN paths, carried by
/// [`crate::ProxyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTuning {
    /// File-channel chunk size in bytes. Whole-file FETCH/UPLOAD is split
    /// into pieces of this size so compression, WAN transfer and
    /// decompression of successive chunks overlap. `0` disables chunking
    /// (monolithic transfers, as before).
    pub chunk_bytes: u32,
    /// Max in-flight chunk RPCs per file-channel transfer. `1` reproduces
    /// the old serial compress→ship→uncompress pipeline.
    pub channel_window: usize,
    /// Max in-flight UNSTABLE WRITEs during `Proxy::flush` write-back.
    /// `1` reproduces the old one-RPC-at-a-time flush.
    pub flush_window: usize,
    /// Blocks to prefetch ahead of a sequential miss stream (per file).
    /// `0` disables read-ahead.
    pub read_ahead: usize,
    /// Bounded retry rounds `Proxy::flush` runs to drain write-backs
    /// that failed upstream (WAN outage, server restart mid-flush). `0`
    /// disables retrying: failures park on the retry queue until the
    /// next flush signal.
    pub flush_retry_rounds: u32,
    /// Backoff slept before the first retry round; doubles each round,
    /// capped at 8x.
    pub flush_retry_backoff: SimDuration,
}

impl Default for TransferTuning {
    fn default() -> Self {
        TransferTuning {
            chunk_bytes: 1 << 20,
            channel_window: 4,
            flush_window: 8,
            read_ahead: 8,
            flush_retry_rounds: 4,
            flush_retry_backoff: SimDuration::from_millis(500),
        }
    }
}

impl TransferTuning {
    /// Fully serial tuning: every path behaves as before the transfer
    /// engine existed (tests use this as the equivalence baseline).
    pub fn serial() -> Self {
        TransferTuning {
            chunk_bytes: 0,
            channel_window: 1,
            flush_window: 1,
            read_ahead: 0,
            flush_retry_rounds: 0,
            flush_retry_backoff: SimDuration::ZERO,
        }
    }
}

/// Telemetry for one component's windowed transfers: window occupancy
/// (gauge with high-water mark), jobs submitted, and per-job stall time
/// (virtual time a job spent queued waiting for a window slot).
#[derive(Clone)]
pub struct TransferTel {
    /// In-flight jobs across this component's windowed transfers.
    pub window_inflight: Gauge,
    /// Jobs submitted through [`run_windowed`].
    pub jobs: Counter,
    /// Time from submission to a worker picking the job up.
    pub stall: Histogram,
}

impl TransferTel {
    /// Register under `gvfs/<inst>.transfer.*`.
    pub fn register(registry: &Telemetry, inst: &str) -> Self {
        TransferTel {
            window_inflight: registry.gauge("gvfs", format!("{inst}.transfer.window_inflight")),
            jobs: registry.counter("gvfs", format!("{inst}.transfer.jobs")),
            stall: registry.histogram("gvfs", format!("{inst}.transfer.stall")),
        }
    }

    /// An unregistered instance (tests, or callers without a registry).
    pub fn unregistered() -> Self {
        TransferTel {
            window_inflight: Gauge::new(),
            jobs: Counter::new(),
            stall: Histogram::new(),
        }
    }
}

/// Run `f` over `items` with at most `window` jobs in flight, returning
/// one slot per item in submission order. A job returning `None` (or a
/// worker dying with it) leaves its slot `None`; callers decide whether
/// that is an error.
///
/// With `window <= 1` (or a single item) the jobs run inline on the
/// calling process — no helper processes, identical to the pre-engine
/// serial code path. Otherwise `min(window, items)` workers drain a
/// shared FIFO queue, so at most `window` invocations of `f` are
/// suspended in RPC at any instant.
pub fn run_windowed<I, T, F>(
    env: &Env,
    label: &str,
    window: usize,
    items: Vec<I>,
    tel: Option<&TransferTel>,
    f: F,
) -> Vec<Option<T>>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(&Env, I) -> Option<T> + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if let Some(t) = tel {
        t.jobs.add(n as u64);
    }
    let workers = window.min(n).max(1);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(None);
    }
    if workers == 1 {
        // Serial fast path: inline, no helper processes, no queue.
        for (slot, item) in out.iter_mut().zip(items) {
            if let Some(t) = tel {
                t.window_inflight.inc();
            }
            let r = f(env, item);
            if let Some(t) = tel {
                t.window_inflight.dec();
            }
            *slot = r;
        }
        return out;
    }
    let queue: Arc<Mutex<VecDeque<(usize, I)>>> =
        Arc::new(Mutex::new(items.into_iter().enumerate().collect()));
    let results: Arc<Mutex<Vec<(usize, T)>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let f = Arc::new(f);
    let t0 = env.now();
    let mut joins = Vec::with_capacity(workers);
    for w in 0..workers {
        let queue = queue.clone();
        let results = results.clone();
        let f = f.clone();
        let tel = tel.cloned();
        joins.push(env.spawn(format!("{label}-{w}"), move |env| loop {
            let job = {
                let j = queue.lock().pop_front();
                j
            };
            let (i, item) = match job {
                Some(j) => j,
                None => return,
            };
            if let Some(t) = &tel {
                // Queue wait before this job got a window slot.
                t.stall.record(env.now() - t0);
                t.window_inflight.inc();
            }
            let r = f(&env, item);
            if let Some(t) = &tel {
                t.window_inflight.dec();
            }
            if let Some(v) = r {
                results.lock().push((i, v));
            }
        }));
    }
    for j in joins {
        j.join(env);
    }
    let mut collected = match Arc::try_unwrap(results) {
        Ok(m) => m.into_inner(),
        Err(_) => return out, // worker leak: every slot reads as failed
    };
    collected.sort_unstable_by_key(|(i, _)| *i);
    for (i, v) in collected {
        if let Some(slot) = out.get_mut(i) {
            *slot = Some(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, Simulation};

    #[test]
    fn windowed_results_arrive_in_submission_order() {
        for window in [1usize, 2, 4, 16] {
            let sim = Simulation::new();
            sim.spawn("t", move |env| {
                // Earlier items sleep longer, so completion order is the
                // reverse of submission order.
                let items: Vec<u64> = (0..8).collect();
                let out = run_windowed(&env, "rev", window, items, None, |env, i| {
                    env.sleep(SimDuration::from_millis(100 - 10 * i));
                    Some(i * 2)
                });
                let got: Vec<Option<u64>> = (0..8).map(|i| Some(i * 2)).collect();
                assert_eq!(out, got, "window={window}");
            });
            sim.run();
        }
    }

    #[test]
    fn window_bounds_inflight_and_overlaps_time() {
        let sim = Simulation::new();
        sim.spawn("t", move |env| {
            let tel = TransferTel::register(env.telemetry(), "test");
            let t0 = env.now();
            let out = run_windowed(&env, "w", 3, vec![(); 9], Some(&tel), |env, ()| {
                env.sleep(SimDuration::from_secs(1));
                Some(())
            });
            assert_eq!(out.len(), 9);
            // 9 one-second jobs, 3 at a time: 3 virtual seconds, not 9.
            assert_eq!((env.now() - t0).as_nanos(), 3_000_000_000);
            assert_eq!(tel.window_inflight.high_water(), 3);
            assert_eq!(tel.window_inflight.get(), 0);
            assert_eq!(tel.jobs.get(), 9);
        });
        sim.run();
    }

    #[test]
    fn failed_jobs_leave_their_slot_none() {
        let sim = Simulation::new();
        sim.spawn("t", move |env| {
            let out = run_windowed(&env, "f", 2, vec![1u64, 2, 3, 4], None, |_, i| {
                if i % 2 == 0 {
                    None
                } else {
                    Some(i)
                }
            });
            assert_eq!(out, vec![Some(1), None, Some(3), None]);
        });
        sim.run();
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let sim = Simulation::new();
        sim.spawn("t", move |env| {
            let out: Vec<Option<u64>> = run_windowed(&env, "e", 4, Vec::new(), None, |_, ()| None);
            assert!(out.is_empty());
        });
        sim.run();
    }
}
