//! Middleware session management.
//!
//! Grid middleware establishes per-user file system sessions: it
//! allocates a short-lived identity, registers it with the server-side
//! proxy's identity mapper, starts a client-side proxy configured for the
//! user/application, and later drives consistency by signalling the proxy
//! to write back and flush its caches (paper §3.2.1: "a session-based
//! consistency model ... middleware-controlled writing back and flushing
//! of cache contents").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oncrpc::{AuthGvfs, OpaqueAuth};
use simnet::Env;
use vfs::Fs;

use crate::identity::{IdentityMapper, MappedAccount};
use crate::meta::{
    generate_content_map, generate_zero_map, meta_name_for, FileChannelSpec, MetaFile,
};
use crate::proxy::{FlushReport, Proxy};

/// Chunk granularity for middleware-generated content maps (matches the
/// channel's transfer chunk so recipe records line up with `FETCH_BLOBS`
/// payloads).
pub const CONTENT_MAP_CHUNK_BYTES: u32 = 1 << 20;

/// Middleware-side helpers: things the Grid middleware does outside the
/// data path (meta-data generation, account allocation).
pub struct Middleware {
    next_session: AtomicU64,
    next_shadow_uid: AtomicU64,
}

impl Middleware {
    /// Fresh middleware instance.
    pub fn new() -> Self {
        Middleware {
            next_session: AtomicU64::new(1),
            next_shadow_uid: AtomicU64::new(6000),
        }
    }

    /// Pre-process a file on the image server: generate its meta-data
    /// (zero map and/or file-channel actions) and store it in the same
    /// directory under the special meta name. This happens when the VM
    /// image is archived, off the critical path, so it costs no
    /// simulation time.
    pub fn generate_meta(
        fs: &mut Fs,
        dir_path: &str,
        file_name: &str,
        block_size: u32,
        with_zero_map: bool,
        channel: Option<FileChannelSpec>,
    ) -> vfs::FsResult<MetaFile> {
        Self::generate_meta_chunked(
            fs,
            dir_path,
            file_name,
            block_size,
            CONTENT_MAP_CHUNK_BYTES,
            with_zero_map,
            channel,
        )
    }

    /// [`Middleware::generate_meta`] with an explicit content-map record
    /// size. The zero map and the content map serve different masters:
    /// the zero map granularity (`block_size`) follows the NFS block
    /// size, while the content-map record size sets the dedup/transfer
    /// unit — fleet runs use small records so a cold transfer is many
    /// round-trips and proxy-tier batching has something to coalesce.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_meta_chunked(
        fs: &mut Fs,
        dir_path: &str,
        file_name: &str,
        block_size: u32,
        content_chunk_bytes: u32,
        with_zero_map: bool,
        channel: Option<FileChannelSpec>,
    ) -> vfs::FsResult<MetaFile> {
        let dir = fs.resolve(dir_path)?;
        let subject = fs.lookup(dir, file_name)?;
        let file_size = fs.size(subject)?;
        let zero_map = if with_zero_map {
            Some(generate_zero_map(fs, subject, block_size)?)
        } else {
            None
        };
        // Channel-transferred files also get a content map: the recipe
        // lets the client proxy skip every chunk its CAS already holds.
        let content_map = if channel.is_some() {
            Some(generate_content_map(fs, subject, content_chunk_bytes)?)
        } else {
            None
        };
        let meta = MetaFile {
            file_size,
            zero_map,
            channel,
            content_map,
        };
        let meta_name = meta_name_for(file_name);
        // Replace any stale meta file.
        let _ = fs.remove(dir, &meta_name, 0);
        let mh = fs.create(dir, &meta_name, 0o600, 0)?;
        fs.write(mh, 0, &meta.to_bytes(), 0)?;
        Ok(meta)
    }

    /// Establish a session: allocate a session id + shadow account,
    /// register with the server-side mapper, and mint the user credential.
    pub fn establish_session(
        &self,
        mapper: &IdentityMapper,
        grid_user: &str,
        now_ns: u64,
        lifetime_ns: u64,
    ) -> (u64, OpaqueAuth) {
        let session_id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let uid = self.next_shadow_uid.fetch_add(1, Ordering::Relaxed) as u32;
        let expires_ns = now_ns.saturating_add(lifetime_ns);
        mapper.register(
            session_id,
            MappedAccount {
                uid,
                gid: uid,
                expires_ns,
            },
        );
        let cred = OpaqueAuth::gvfs(&AuthGvfs {
            session_id,
            grid_user: grid_user.to_string(),
            expires_at: expires_ns,
        });
        (session_id, cred)
    }
}

impl Default for Middleware {
    fn default() -> Self {
        Self::new()
    }
}

/// A live GVFS session: the client-side proxy plus the credential the
/// middleware allocated for it.
pub struct GvfsSession {
    /// Session identifier.
    pub session_id: u64,
    /// Middleware credential presented on every call.
    pub cred: OpaqueAuth,
    /// The session's client-side proxy.
    pub proxy: Arc<Proxy>,
    mapper: Option<Arc<IdentityMapper>>,
}

impl GvfsSession {
    /// Bundle an established session.
    pub fn new(
        session_id: u64,
        cred: OpaqueAuth,
        proxy: Arc<Proxy>,
        mapper: Option<Arc<IdentityMapper>>,
    ) -> Self {
        GvfsSession {
            session_id,
            cred,
            proxy,
            mapper,
        }
    }

    /// Middleware signal: write back dirty cache contents (e.g. when the
    /// user goes off-line or the session is idle).
    pub fn flush(&self, env: &Env) -> FlushReport {
        self.proxy.flush(env, &self.cred)
    }

    /// End the session: flush, then revoke the identity.
    pub fn terminate(&self, env: &Env) -> FlushReport {
        let report = self.flush(env);
        if let Some(m) = &self.mapper {
            m.revoke(self.session_id);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn establish_session_registers_identity() {
        let mw = Middleware::new();
        let mapper = IdentityMapper::new();
        let (sid, cred) = mw.establish_session(&mapper, "alice", 0, 1_000_000);
        assert_eq!(mapper.len(), 1);
        let mapped = mapper.map(&cred, 10).unwrap();
        assert!(mapped.as_sys().unwrap().uid >= 6000);
        // Second session gets a different id and shadow uid.
        let (sid2, cred2) = mw.establish_session(&mapper, "bob", 0, 1_000_000);
        assert_ne!(sid, sid2);
        let u1 = mapper.map(&cred, 10).unwrap().as_sys().unwrap().uid;
        let u2 = mapper.map(&cred2, 10).unwrap().as_sys().unwrap().uid;
        assert_ne!(u1, u2);
    }

    #[test]
    fn generate_meta_writes_meta_file_next_to_subject() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let dir = fs.mkdir(root, "images", 0o755, 0).unwrap();
        let f = fs.create(dir, "vm.vmss", 0o644, 0).unwrap();
        fs.setattr(f, Some(128 * 1024), None, 0).unwrap();
        fs.write(f, 0, &[1u8; 100], 0).unwrap();
        let meta = Middleware::generate_meta(
            &mut fs,
            "images",
            "vm.vmss",
            32 * 1024,
            true,
            Some(FileChannelSpec {
                compress: true,
                writeback: false,
            }),
        )
        .unwrap();
        assert_eq!(meta.file_size, 128 * 1024);
        let zm = meta.zero_map.as_ref().unwrap();
        assert!(!zm.is_zero(0));
        assert!(zm.is_zero(1));
        // The meta file exists with the right contents.
        let mh = fs.resolve("images/.gvfs_meta.vm.vmss").unwrap();
        let size = fs.size(mh).unwrap();
        let (bytes, _) = fs.read(mh, 0, size as usize, 0).unwrap();
        assert_eq!(MetaFile::from_bytes(&bytes).unwrap(), meta);
        // Regeneration replaces, not duplicates.
        Middleware::generate_meta(&mut fs, "images", "vm.vmss", 32 * 1024, false, None).unwrap();
        let mh2 = fs.resolve("images/.gvfs_meta.vm.vmss").unwrap();
        let size2 = fs.size(mh2).unwrap();
        let (bytes2, _) = fs.read(mh2, 0, size2 as usize, 0).unwrap();
        assert!(MetaFile::from_bytes(&bytes2).unwrap().zero_map.is_none());
    }
}
