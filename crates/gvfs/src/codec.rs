//! Zero-aware run-length codec, standing in for GZIP.
//!
//! The paper's file-based data channel compresses VM memory state with
//! GZIP before the SCP transfer. Suspended memory images are dominated by
//! zero-filled pages plus long runs of repeated bytes, which is where GZIP
//! gets its ratio on this data; this codec captures the same structure
//! (zero runs, byte runs, literals) deterministically and in-repo. A
//! [`CodecModel`] charges virtual CPU time for both directions.
//!
//! Wire format (little repetition of real formats is intended — this is a
//! private proxy-to-proxy stream):
//!
//! ```text
//! magic "GZRL" | u64 original_len | records...
//! record: tag u8
//!   0 = zero run:   u32 len
//!   1 = byte run:   u32 len, u8 value
//!   2 = literal:    u32 len, bytes
//! ```

use simnet::SimDuration;

const MAGIC: &[u8; 4] = b"GZRL";
/// Minimum run length worth encoding as a run record.
const MIN_RUN: usize = 16;
/// Largest length a single record can carry (its length field is a u32).
/// Longer runs and literals are split across consecutive records; the
/// previous `as u32` casts silently truncated them instead, corrupting
/// any input with a >4 GiB run.
const MAX_RECORD: usize = u32::MAX as usize;

/// Compress `data`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_record_cap(data, MAX_RECORD)
}

/// `compress` with the per-record length cap exposed, so tests can force
/// record splitting on small inputs instead of allocating >4 GiB.
fn compress_with_record_cap(data: &[u8], cap: usize) -> Vec<u8> {
    debug_assert!((1..=MAX_RECORD).contains(&cap));
    // lint:allow(bounded-decode): capacity derives from local input size, not wire bytes
    let mut out = Vec::with_capacity(64 + data.len() / 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_be_bytes());
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        // Measure the run starting at i.
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        let run = j - i;
        if run >= MIN_RUN {
            flush_literal(&mut out, &data[lit_start..i], cap);
            push_run(&mut out, b, run, cap);
            i = j;
            lit_start = i;
        } else {
            i = j;
        }
    }
    flush_literal(&mut out, &data[lit_start..], cap);
    out
}

/// Emit a run of `run` copies of `b`, split into records of at most `cap`.
fn push_run(out: &mut Vec<u8>, b: u8, mut run: usize, cap: usize) {
    while run > 0 {
        let n = run.min(cap);
        if b == 0 {
            out.push(0);
            out.extend_from_slice(&(n as u32).to_be_bytes());
        } else {
            out.push(1);
            out.extend_from_slice(&(n as u32).to_be_bytes());
            out.push(b);
        }
        run -= n;
    }
}

fn flush_literal(out: &mut Vec<u8>, lit: &[u8], cap: usize) {
    for chunk in lit.chunks(cap) {
        out.push(2);
        out.extend_from_slice(&(chunk.len() as u32).to_be_bytes());
        out.extend_from_slice(chunk);
    }
}

/// Decompression errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Missing or wrong magic.
    BadMagic,
    /// Stream ended unexpectedly or record malformed.
    Truncated,
    /// Output did not match the declared original length.
    LengthMismatch,
    /// Declared original length exceeds [`MAX_DECOMPRESS_LEN`].
    TooLarge,
}

/// Hard cap on the original length a stream may declare. The header's
/// `u64 original_len` bounds every later growth check, so an honest cap
/// here bounds total decoder memory; 1 GiB comfortably exceeds any VM
/// memory image the simulated 2004-era hosts ship around.
pub const MAX_DECOMPRESS_LEN: usize = 1 << 30;

fn be_u32(bytes: &[u8]) -> Result<u32, CodecError> {
    match <[u8; 4]>::try_from(bytes) {
        Ok(a) => Ok(u32::from_be_bytes(a)),
        Err(_) => Err(CodecError::Truncated),
    }
}

fn be_u64(bytes: &[u8]) -> Result<u64, CodecError> {
    match <[u8; 8]>::try_from(bytes) {
        Ok(a) => Ok(u64::from_be_bytes(a)),
        Err(_) => Err(CodecError::Truncated),
    }
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    if stream.len() < 12 || &stream[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let orig_len = be_u64(&stream[4..12])? as usize;
    if orig_len > MAX_DECOMPRESS_LEN {
        return Err(CodecError::TooLarge);
    }
    // Blessed sink for the wire-declared length: caps the speculative
    // reservation, while the check above bounds all later growth.
    let mut out: Vec<u8> =
        xdr::bounded_alloc(orig_len, MAX_DECOMPRESS_LEN).map_err(|_| CodecError::TooLarge)?;
    let mut i = 12;
    while i < stream.len() {
        let tag = stream[i];
        i += 1;
        if stream.len() < i + 4 {
            return Err(CodecError::Truncated);
        }
        let len = be_u32(&stream[i..i + 4])? as usize;
        i += 4;
        // A record claiming to expand past the declared original length
        // can only come from a corrupt stream; bail before allocating —
        // run-length records otherwise let a few bytes of header demand
        // gigabytes of output.
        if out.len() + len > orig_len {
            return Err(CodecError::LengthMismatch);
        }
        match tag {
            // lint:allow(bounded-decode): growth bounded by orig_len <= MAX_DECOMPRESS_LEN above
            0 => out.resize(out.len() + len, 0),
            1 => {
                if stream.len() < i + 1 {
                    return Err(CodecError::Truncated);
                }
                let b = stream[i];
                i += 1;
                // lint:allow(bounded-decode): growth bounded by orig_len <= MAX_DECOMPRESS_LEN above
                out.resize(out.len() + len, b);
            }
            2 => {
                if stream.len() < i + len {
                    return Err(CodecError::Truncated);
                }
                out.extend_from_slice(&stream[i..i + len]);
                i += len;
            }
            _ => return Err(CodecError::Truncated),
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::LengthMismatch);
    }
    Ok(out)
}

/// CPU-time model for the codec (GZIP-class throughputs on 2004 CPUs).
#[derive(Debug, Clone, Copy)]
pub struct CodecModel {
    /// Compression throughput, input bytes per second.
    pub compress_bytes_per_sec: f64,
    /// Decompression throughput, output bytes per second.
    pub decompress_bytes_per_sec: f64,
    /// Content-digest throughput, input bytes per second
    /// ([`crate::digest`] is a word-at-a-time mix, far cheaper than
    /// GZIP-class compression).
    pub digest_bytes_per_sec: f64,
}

impl Default for CodecModel {
    fn default() -> Self {
        // GZIP-class throughput on ~1 GHz Pentium III-era CPUs; digesting
        // is a small fixed number of ALU ops per word.
        CodecModel {
            compress_bytes_per_sec: 15e6,
            decompress_bytes_per_sec: 60e6,
            digest_bytes_per_sec: 400e6,
        }
    }
}

impl CodecModel {
    /// Time to compress `bytes` of input.
    pub fn compress_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.compress_bytes_per_sec)
    }

    /// Time to decompress to `bytes` of output.
    pub fn decompress_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.decompress_bytes_per_sec)
    }

    /// Time to digest `bytes` of input.
    pub fn digest_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.digest_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trips() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn literal_data_round_trips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn zero_dominated_data_compresses_hard() {
        // Like a post-boot memory image: 90% zeros.
        let mut data = vec![0u8; 1_000_000];
        for i in 0..100 {
            let off = i * 10_000;
            for j in 0..1_000 {
                data[off + j] = ((i * 7 + j) % 251) as u8;
            }
        }
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 8,
            "expected >8x ratio, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn byte_runs_compress() {
        let mut data = vec![0xFFu8; 100_000];
        data.extend_from_slice(b"tail");
        let c = compress(&data);
        assert!(c.len() < 100);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_grows_only_slightly() {
        // Pseudo-random bytes: no runs of 16.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + 64);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert_eq!(decompress(b"nope"), Err(CodecError::BadMagic));
        let mut c = compress(&vec![0u8; 1000]);
        c.truncate(c.len() - 2);
        assert!(decompress(&c).is_err());
        let mut c2 = compress(b"hello world hello world");
        let last = c2.len() - 1;
        c2[last] ^= 0xFF; // corrupt literal byte: still decodes, lengths ok
        let _ = decompress(&c2); // must not panic
    }

    #[test]
    fn oversized_record_is_rejected_without_allocating() {
        // Hand-built stream: declared original length 8, but a single
        // zero-run record claims 1 GiB. Must fail fast (LengthMismatch)
        // instead of materialising the run and failing at the final
        // length check.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&8u64.to_be_bytes());
        s.push(0); // zero-run tag
        s.extend_from_slice(&(1u32 << 30).to_be_bytes());
        assert_eq!(decompress(&s), Err(CodecError::LengthMismatch));

        // Same for a byte-run record.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&8u64.to_be_bytes());
        s.push(1); // byte-run tag
        s.extend_from_slice(&(1u32 << 30).to_be_bytes());
        s.push(0xAB);
        assert_eq!(decompress(&s), Err(CodecError::LengthMismatch));
    }

    #[test]
    fn huge_declared_length_is_rejected_before_allocating() {
        // A 12-byte header alone must not be able to demand gigabytes of
        // reservation: the declared original length is capped up front.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&(MAX_DECOMPRESS_LEN as u64 + 1).to_be_bytes());
        assert_eq!(decompress(&s), Err(CodecError::TooLarge));
    }

    #[test]
    fn runs_past_the_record_cap_split_without_truncating() {
        // A run longer than one record can hold must become several
        // records whose lengths sum to the full run — the old `as u32`
        // cast would have truncated it. No input buffer is needed:
        // push_run takes the length directly, so the >4 GiB case is
        // exercised without a >4 GiB allocation.
        for &(run, b) in &[
            (MAX_RECORD + 1, 0u8),
            (2 * MAX_RECORD + 17, 0u8),
            (MAX_RECORD + 5, 0xABu8),
        ] {
            let mut out = Vec::new();
            push_run(&mut out, b, run, MAX_RECORD);
            // Parse the records back and sum their declared lengths.
            let mut total = 0u64;
            let mut i = 0;
            while i < out.len() {
                let tag = out[i];
                assert_eq!(tag, if b == 0 { 0 } else { 1 });
                let len = be_u32(&out[i + 1..i + 5]).unwrap();
                assert!(len > 0);
                total += u64::from(len);
                i += if b == 0 { 5 } else { 6 };
            }
            assert_eq!(i, out.len());
            assert_eq!(total, run as u64, "run of {run} must survive splitting");
        }
    }

    #[test]
    fn split_records_round_trip() {
        // Force splitting with a tiny record cap: every run and literal
        // in this input exceeds the cap, so the stream is made entirely
        // of split records — and the (unchanged) decoder must reassemble
        // them byte-for-byte.
        let mut data = vec![0u8; 100]; // zero run, split into ceil(100/7) records
        data.extend(std::iter::repeat_n(0x5A, 40)); // byte run
        data.extend((0..60u8).map(|i| i.wrapping_mul(37))); // literal, no runs
        data.extend(vec![0u8; MIN_RUN]); // trailing run exactly at threshold
        let c = compress_with_record_cap(&data, 7);
        assert_eq!(decompress(&c).unwrap(), data);
        // And the default cap produces the same bytes back too.
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn codec_model_times_scale_linearly() {
        let m = CodecModel::default();
        let t1 = m.compress_time(15_000_000);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = m.decompress_time(120_000_000);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
        let t3 = m.digest_time(400_000_000);
        assert!((t3.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
