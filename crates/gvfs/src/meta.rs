//! Meta-data handling (paper §3.2.2).
//!
//! Grid middleware generates per-file meta-data from application-tailored
//! knowledge; a GVFS proxy interprets it when the file is accessed:
//!
//! * a **zero map** marks which blocks of a (memory state) file are
//!   all-zero, so the client-side proxy services those reads locally and
//!   only non-zero blocks cross the WAN;
//! * **file-channel actions** — `compress`, `remote copy`, `uncompress`,
//!   `read locally` — switch the transfer of a file that will certainly
//!   be read in full (e.g. `.vmss` on resume) from block-by-block NFS to
//!   one compressed stream into the proxy's file cache.
//!
//! The meta-data file lives in the same directory as its subject, under
//! the special name [`meta_name_for`], exactly as the paper describes.

/// Special file-name prefix for meta-data files.
pub const META_PREFIX: &str = ".gvfs_meta.";

/// The meta-data file name for a subject file name.
pub fn meta_name_for(name: &str) -> String {
    format!("{META_PREFIX}{name}")
}

/// Whether a name denotes a meta-data file.
pub fn is_meta_name(name: &str) -> bool {
    name.starts_with(META_PREFIX)
}

/// A bitmap of all-zero blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroMap {
    /// Block granularity the map was computed at.
    pub block_size: u32,
    /// Number of blocks in the file.
    pub nblocks: u64,
    bits: Vec<u64>,
}

impl ZeroMap {
    /// Create an all-nonzero map for `nblocks` blocks.
    pub fn new(block_size: u32, nblocks: u64) -> Self {
        assert!(block_size > 0);
        ZeroMap {
            block_size,
            nblocks,
            bits: vec![0; nblocks.div_ceil(64) as usize],
        }
    }

    /// Mark a block as all-zero.
    pub fn set_zero(&mut self, block: u64) {
        assert!(block < self.nblocks);
        self.bits[(block / 64) as usize] |= 1 << (block % 64);
    }

    /// Whether a block is known all-zero. Out-of-range blocks are "zero"
    /// (reads past EOF return nothing).
    pub fn is_zero(&self, block: u64) -> bool {
        if block >= self.nblocks {
            return true;
        }
        self.bits[(block / 64) as usize] & (1 << (block % 64)) != 0
    }

    /// Whether an entire byte range is known zero.
    pub fn range_is_zero(&self, offset: u64, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        (first..=last).all(|b| self.is_zero(b))
    }

    /// Number of blocks marked zero.
    pub fn zero_count(&self) -> u64 {
        let full = self.bits.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        full
    }
}

/// File-channel action list. The order is fixed by the paper: compress on
/// the server, remote-copy, uncompress into the file cache, then read
/// locally; we keep a flag for the compress step so the benchmarks can
/// ablate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileChannelSpec {
    /// Compress before the copy (GZIP in the paper, [`crate::codec`] here).
    pub compress: bool,
    /// Write-back uploads through the channel too.
    pub writeback: bool,
}

/// Parsed meta-data for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaFile {
    /// Subject file size when the meta-data was generated.
    pub file_size: u64,
    /// Zero-block map, if generated.
    pub zero_map: Option<ZeroMap>,
    /// File-channel actions, if specified.
    pub channel: Option<FileChannelSpec>,
}

impl MetaFile {
    /// Serialize to the on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"GVFSMETA1\n");
        out.extend_from_slice(&self.file_size.to_be_bytes());
        match &self.channel {
            Some(c) => {
                out.push(1);
                out.push(c.compress as u8);
                out.push(c.writeback as u8);
            }
            None => out.push(0),
        }
        match &self.zero_map {
            Some(zm) => {
                out.push(1);
                out.extend_from_slice(&zm.block_size.to_be_bytes());
                out.extend_from_slice(&zm.nblocks.to_be_bytes());
                for w in &zm.bits {
                    out.extend_from_slice(&w.to_be_bytes());
                }
            }
            None => out.push(0),
        }
        out
    }

    /// Parse the on-disk representation.
    pub fn from_bytes(data: &[u8]) -> Option<MetaFile> {
        let mut p = 0usize;
        let take = |p: &mut usize, n: usize| -> Option<&[u8]> {
            if data.len() < *p + n {
                return None;
            }
            let s = &data[*p..*p + n];
            *p += n;
            Some(s)
        };
        if take(&mut p, 10)? != b"GVFSMETA1\n" {
            return None;
        }
        let file_size = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
        let channel = match take(&mut p, 1)?[0] {
            0 => None,
            1 => {
                let flags = take(&mut p, 2)?;
                Some(FileChannelSpec {
                    compress: flags[0] != 0,
                    writeback: flags[1] != 0,
                })
            }
            _ => return None,
        };
        let zero_map = match take(&mut p, 1)?[0] {
            0 => None,
            1 => {
                let block_size = u32::from_be_bytes(take(&mut p, 4)?.try_into().ok()?);
                let nblocks = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                if block_size == 0 || nblocks > (1 << 40) {
                    return None;
                }
                let nwords = nblocks.div_ceil(64) as usize;
                let mut bits = Vec::with_capacity(nwords);
                for _ in 0..nwords {
                    bits.push(u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?));
                }
                Some(ZeroMap {
                    block_size,
                    nblocks,
                    bits,
                })
            }
            _ => return None,
        };
        if p != data.len() {
            return None;
        }
        Some(MetaFile {
            file_size,
            zero_map,
            channel,
        })
    }
}

/// Middleware-side generator: scan a file in `fs` and produce a zero map
/// at `block_size` granularity. This is the paper's pre-processing of the
/// memory state file on the image server.
pub fn generate_zero_map(fs: &vfs::Fs, h: vfs::Handle, block_size: u32) -> vfs::FsResult<ZeroMap> {
    let size = fs.size(h)?;
    let nblocks = size.div_ceil(block_size as u64);
    let mut zm = ZeroMap::new(block_size, nblocks);
    for b in 0..nblocks {
        let off = b * block_size as u64;
        let len = ((size - off).min(block_size as u64)) as usize;
        if fs.is_zero_range(h, off, len)? {
            zm.set_zero(b);
        }
    }
    Ok(zm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Fs;

    #[test]
    fn meta_names() {
        assert_eq!(meta_name_for("vm.vmss"), ".gvfs_meta.vm.vmss");
        assert!(is_meta_name(".gvfs_meta.vm.vmss"));
        assert!(!is_meta_name("vm.vmss"));
    }

    #[test]
    fn zero_map_bit_operations() {
        let mut zm = ZeroMap::new(4096, 200);
        assert!(!zm.is_zero(0));
        zm.set_zero(0);
        zm.set_zero(64);
        zm.set_zero(199);
        assert!(zm.is_zero(0));
        assert!(zm.is_zero(64));
        assert!(zm.is_zero(199));
        assert!(!zm.is_zero(1));
        assert!(zm.is_zero(1000)); // out of range = past EOF = zero
        assert_eq!(zm.zero_count(), 3);
    }

    #[test]
    fn range_is_zero_spans_blocks() {
        let mut zm = ZeroMap::new(100, 10);
        for b in 2..=5 {
            zm.set_zero(b);
        }
        assert!(zm.range_is_zero(200, 400)); // blocks 2..=5
        assert!(!zm.range_is_zero(150, 100)); // touches block 1
        assert!(zm.range_is_zero(500, 0));
    }

    #[test]
    fn meta_file_round_trips_all_combinations() {
        let mut zm = ZeroMap::new(32768, 100);
        zm.set_zero(7);
        zm.set_zero(99);
        for meta in [
            MetaFile {
                file_size: 335_544_320,
                zero_map: Some(zm.clone()),
                channel: Some(FileChannelSpec {
                    compress: true,
                    writeback: false,
                }),
            },
            MetaFile {
                file_size: 0,
                zero_map: None,
                channel: None,
            },
            MetaFile {
                file_size: 5,
                zero_map: None,
                channel: Some(FileChannelSpec {
                    compress: false,
                    writeback: true,
                }),
            },
            MetaFile {
                file_size: 1 << 31,
                zero_map: Some(zm.clone()),
                channel: None,
            },
        ] {
            let bytes = meta.to_bytes();
            assert_eq!(MetaFile::from_bytes(&bytes), Some(meta));
        }
    }

    #[test]
    fn malformed_meta_is_rejected() {
        assert_eq!(MetaFile::from_bytes(b""), None);
        assert_eq!(MetaFile::from_bytes(b"GVFSMETA1\n"), None);
        let good = MetaFile {
            file_size: 10,
            zero_map: None,
            channel: None,
        }
        .to_bytes();
        assert_eq!(MetaFile::from_bytes(&good[..good.len() - 1]), None);
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(MetaFile::from_bytes(&trailing), None);
    }

    #[test]
    fn generate_zero_map_matches_file_contents() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let f = fs.create(root, "mem.vmss", 0o644, 0).unwrap();
        // 10 blocks of 4 KB; blocks 3 and 7 have data.
        fs.setattr(f, Some(40_960), None, 0).unwrap();
        fs.write(f, 3 * 4096 + 17, &[9u8; 100], 0).unwrap();
        fs.write(f, 7 * 4096, &[1u8; 4096], 0).unwrap();
        let zm = generate_zero_map(&fs, f, 4096).unwrap();
        assert_eq!(zm.nblocks, 10);
        for b in 0..10u64 {
            assert_eq!(zm.is_zero(b), b != 3 && b != 7, "block {b}");
        }
        assert_eq!(zm.zero_count(), 8);
    }
}
