//! Meta-data handling (paper §3.2.2).
//!
//! Grid middleware generates per-file meta-data from application-tailored
//! knowledge; a GVFS proxy interprets it when the file is accessed:
//!
//! * a **zero map** marks which blocks of a (memory state) file are
//!   all-zero, so the client-side proxy services those reads locally and
//!   only non-zero blocks cross the WAN;
//! * **file-channel actions** — `compress`, `remote copy`, `uncompress`,
//!   `read locally` — switch the transfer of a file that will certainly
//!   be read in full (e.g. `.vmss` on resume) from block-by-block NFS to
//!   one compressed stream into the proxy's file cache.
//!
//! The meta-data file lives in the same directory as its subject, under
//! the special name [`meta_name_for`], exactly as the paper describes.
//!
//! The **content map** generalizes the zero map: instead of one bit
//! ("this block is zero"), it records one [`crate::digest`] digest per
//! fixed-size chunk, so the client proxy can serve *any* chunk whose
//! bytes it already holds — not just the all-zero ones — from its
//! content-addressed store, and fetch only the missing payloads through
//! the channel's `FETCH_BLOBS` procedure.

use crate::digest::{digest, Digest};

/// Special file-name prefix for meta-data files.
pub const META_PREFIX: &str = ".gvfs_meta.";

/// The meta-data file name for a subject file name.
pub fn meta_name_for(name: &str) -> String {
    format!("{META_PREFIX}{name}")
}

/// Whether a name denotes a meta-data file.
pub fn is_meta_name(name: &str) -> bool {
    name.starts_with(META_PREFIX)
}

/// A bitmap of all-zero blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroMap {
    /// Block granularity the map was computed at.
    pub block_size: u32,
    /// Number of blocks in the file.
    pub nblocks: u64,
    bits: Vec<u64>,
}

impl ZeroMap {
    /// Create an all-nonzero map for `nblocks` blocks.
    pub fn new(block_size: u32, nblocks: u64) -> Self {
        assert!(block_size > 0);
        ZeroMap {
            block_size,
            nblocks,
            bits: vec![0; nblocks.div_ceil(64) as usize],
        }
    }

    /// Mark a block as all-zero.
    pub fn set_zero(&mut self, block: u64) {
        assert!(block < self.nblocks);
        self.bits[(block / 64) as usize] |= 1 << (block % 64);
    }

    /// Whether a block is known all-zero. Out-of-range blocks are "zero"
    /// (reads past EOF return nothing).
    pub fn is_zero(&self, block: u64) -> bool {
        if block >= self.nblocks {
            return true;
        }
        self.bits[(block / 64) as usize] & (1 << (block % 64)) != 0
    }

    /// Whether an entire byte range is known zero.
    pub fn range_is_zero(&self, offset: u64, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let bs = self.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        (first..=last).all(|b| self.is_zero(b))
    }

    /// Number of blocks marked zero.
    pub fn zero_count(&self) -> u64 {
        let full = self.bits.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        full
    }
}

/// File-channel action list. The order is fixed by the paper: compress on
/// the server, remote-copy, uncompress into the file cache, then read
/// locally; we keep a flag for the compress step so the benchmarks can
/// ablate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileChannelSpec {
    /// Compress before the copy (GZIP in the paper, [`crate::codec`] here).
    pub compress: bool,
    /// Write-back uploads through the channel too.
    pub writeback: bool,
}

/// The per-chunk digest recipe of a file: ordered `(digest, len)`
/// records at `chunk_bytes` granularity (the last record may be short).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentMap {
    /// Chunk granularity the digests were computed at.
    pub chunk_bytes: u32,
    /// Total bytes covered (the subject's size at generation time).
    pub total: u64,
    /// One record per chunk, in file order.
    pub records: Vec<(Digest, u32)>,
}

/// Cap on content-map records a parser will materialize: 16 M records
/// cover a 16 TB file at 1 MB chunks, far beyond any VM state file.
const MAX_CONTENT_RECORDS: u64 = 1 << 24;

/// Parsed meta-data for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaFile {
    /// Subject file size when the meta-data was generated.
    pub file_size: u64,
    /// Zero-block map, if generated.
    pub zero_map: Option<ZeroMap>,
    /// File-channel actions, if specified.
    pub channel: Option<FileChannelSpec>,
    /// Per-chunk digest recipe, if generated (dedup'd channel fetches).
    pub content_map: Option<ContentMap>,
}

impl MetaFile {
    /// Serialize to the on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"GVFSMETA1\n");
        out.extend_from_slice(&self.file_size.to_be_bytes());
        match &self.channel {
            Some(c) => {
                out.push(1);
                out.push(c.compress as u8);
                out.push(c.writeback as u8);
            }
            None => out.push(0),
        }
        match &self.zero_map {
            Some(zm) => {
                out.push(1);
                out.extend_from_slice(&zm.block_size.to_be_bytes());
                out.extend_from_slice(&zm.nblocks.to_be_bytes());
                for w in &zm.bits {
                    out.extend_from_slice(&w.to_be_bytes());
                }
            }
            None => out.push(0),
        }
        match &self.content_map {
            Some(cm) => {
                out.push(1);
                out.extend_from_slice(&cm.chunk_bytes.to_be_bytes());
                out.extend_from_slice(&cm.total.to_be_bytes());
                out.extend_from_slice(&(cm.records.len() as u64).to_be_bytes());
                for (d, len) in &cm.records {
                    out.extend_from_slice(&d.0.to_be_bytes());
                    out.extend_from_slice(&d.1.to_be_bytes());
                    out.extend_from_slice(&len.to_be_bytes());
                }
            }
            None => out.push(0),
        }
        out
    }

    /// Parse the on-disk representation.
    pub fn from_bytes(data: &[u8]) -> Option<MetaFile> {
        let mut p = 0usize;
        let take = |p: &mut usize, n: usize| -> Option<&[u8]> {
            if data.len() < *p + n {
                return None;
            }
            let s = &data[*p..*p + n];
            *p += n;
            Some(s)
        };
        if take(&mut p, 10)? != b"GVFSMETA1\n" {
            return None;
        }
        let file_size = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
        let channel = match take(&mut p, 1)?[0] {
            0 => None,
            1 => {
                let flags = take(&mut p, 2)?;
                Some(FileChannelSpec {
                    compress: flags[0] != 0,
                    writeback: flags[1] != 0,
                })
            }
            _ => return None,
        };
        let zero_map = match take(&mut p, 1)?[0] {
            0 => None,
            1 => {
                let block_size = u32::from_be_bytes(take(&mut p, 4)?.try_into().ok()?);
                let nblocks = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                if block_size == 0 || nblocks > (1 << 40) {
                    return None;
                }
                let nwords = nblocks.div_ceil(64) as usize;
                let mut bits = Vec::with_capacity(nwords);
                for _ in 0..nwords {
                    bits.push(u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?));
                }
                Some(ZeroMap {
                    block_size,
                    nblocks,
                    bits,
                })
            }
            _ => return None,
        };
        // Content-map section: absent entirely in pre-CAS meta files,
        // which remain parseable.
        let content_map = if p == data.len() {
            None
        } else {
            match take(&mut p, 1)?[0] {
                0 => None,
                1 => {
                    let chunk_bytes = u32::from_be_bytes(take(&mut p, 4)?.try_into().ok()?);
                    let total = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                    let nrecords = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                    if chunk_bytes == 0 || nrecords > MAX_CONTENT_RECORDS {
                        return None;
                    }
                    // Remaining input bounds the record count before any
                    // allocation: 20 bytes per record.
                    if data.len() - p < nrecords as usize * 20 {
                        return None;
                    }
                    let mut records = Vec::with_capacity(nrecords as usize);
                    for _ in 0..nrecords {
                        let d0 = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                        let d1 = u64::from_be_bytes(take(&mut p, 8)?.try_into().ok()?);
                        let len = u32::from_be_bytes(take(&mut p, 4)?.try_into().ok()?);
                        records.push((Digest(d0, d1), len));
                    }
                    Some(ContentMap {
                        chunk_bytes,
                        total,
                        records,
                    })
                }
                _ => return None,
            }
        };
        if p != data.len() {
            return None;
        }
        Some(MetaFile {
            file_size,
            zero_map,
            channel,
            content_map,
        })
    }
}

/// Middleware-side generator: scan a file in `fs` and produce a zero map
/// at `block_size` granularity. This is the paper's pre-processing of the
/// memory state file on the image server.
pub fn generate_zero_map(fs: &vfs::Fs, h: vfs::Handle, block_size: u32) -> vfs::FsResult<ZeroMap> {
    let size = fs.size(h)?;
    let nblocks = size.div_ceil(block_size as u64);
    let mut zm = ZeroMap::new(block_size, nblocks);
    for b in 0..nblocks {
        let off = b * block_size as u64;
        let len = ((size - off).min(block_size as u64)) as usize;
        if fs.is_zero_range(h, off, len)? {
            zm.set_zero(b);
        }
    }
    Ok(zm)
}

/// Middleware-side generator: scan a file in `fs` and produce its
/// per-chunk digest recipe at `chunk_bytes` granularity. Like the zero
/// map this runs where the data lives (the image server), so clients get
/// the recipe for free with the meta-data.
pub fn generate_content_map(
    fs: &mut vfs::Fs,
    h: vfs::Handle,
    chunk_bytes: u32,
) -> vfs::FsResult<ContentMap> {
    assert!(chunk_bytes > 0);
    let total = fs.size(h)?;
    let nchunks = total.div_ceil(chunk_bytes as u64);
    let mut records = Vec::with_capacity(nchunks as usize);
    for c in 0..nchunks {
        let off = c * chunk_bytes as u64;
        let len = ((total - off).min(chunk_bytes as u64)) as u32;
        let (data, _) = fs.read(h, off, len as usize, 0)?;
        records.push((digest(&data), len));
    }
    Ok(ContentMap {
        chunk_bytes,
        total,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Fs;

    #[test]
    fn meta_names() {
        assert_eq!(meta_name_for("vm.vmss"), ".gvfs_meta.vm.vmss");
        assert!(is_meta_name(".gvfs_meta.vm.vmss"));
        assert!(!is_meta_name("vm.vmss"));
    }

    #[test]
    fn zero_map_bit_operations() {
        let mut zm = ZeroMap::new(4096, 200);
        assert!(!zm.is_zero(0));
        zm.set_zero(0);
        zm.set_zero(64);
        zm.set_zero(199);
        assert!(zm.is_zero(0));
        assert!(zm.is_zero(64));
        assert!(zm.is_zero(199));
        assert!(!zm.is_zero(1));
        assert!(zm.is_zero(1000)); // out of range = past EOF = zero
        assert_eq!(zm.zero_count(), 3);
    }

    #[test]
    fn range_is_zero_spans_blocks() {
        let mut zm = ZeroMap::new(100, 10);
        for b in 2..=5 {
            zm.set_zero(b);
        }
        assert!(zm.range_is_zero(200, 400)); // blocks 2..=5
        assert!(!zm.range_is_zero(150, 100)); // touches block 1
        assert!(zm.range_is_zero(500, 0));
    }

    #[test]
    fn meta_file_round_trips_all_combinations() {
        let mut zm = ZeroMap::new(32768, 100);
        zm.set_zero(7);
        zm.set_zero(99);
        let cm = ContentMap {
            chunk_bytes: 1 << 20,
            total: 335_544_320,
            records: (0..320u64)
                .map(|i| (Digest(i.wrapping_mul(0x9E37), !i), 1 << 20))
                .collect(),
        };
        for meta in [
            MetaFile {
                file_size: 335_544_320,
                zero_map: Some(zm.clone()),
                channel: Some(FileChannelSpec {
                    compress: true,
                    writeback: false,
                }),
                content_map: Some(cm.clone()),
            },
            MetaFile {
                file_size: 0,
                zero_map: None,
                channel: None,
                content_map: None,
            },
            MetaFile {
                file_size: 5,
                zero_map: None,
                channel: Some(FileChannelSpec {
                    compress: false,
                    writeback: true,
                }),
                content_map: Some(ContentMap {
                    chunk_bytes: 4096,
                    total: 5,
                    records: vec![(Digest(1, 2), 5)],
                }),
            },
            MetaFile {
                file_size: 1 << 31,
                zero_map: Some(zm.clone()),
                channel: None,
                content_map: None,
            },
        ] {
            let bytes = meta.to_bytes();
            assert_eq!(MetaFile::from_bytes(&bytes), Some(meta));
        }
    }

    #[test]
    fn pre_content_map_meta_still_parses() {
        // A serialization ending right after the zero-map section (the
        // pre-CAS layout) must parse with `content_map: None`.
        let meta = MetaFile {
            file_size: 10,
            zero_map: None,
            channel: None,
            content_map: None,
        };
        let bytes = meta.to_bytes();
        // Dropping the trailing content-map tag byte yields the old layout.
        assert_eq!(
            MetaFile::from_bytes(&bytes[..bytes.len() - 1]),
            Some(meta.clone())
        );
        assert_eq!(MetaFile::from_bytes(&bytes), Some(meta));
    }

    #[test]
    fn malformed_meta_is_rejected() {
        assert_eq!(MetaFile::from_bytes(b""), None);
        assert_eq!(MetaFile::from_bytes(b"GVFSMETA1\n"), None);
        let good = MetaFile {
            file_size: 10,
            zero_map: None,
            channel: None,
            content_map: Some(ContentMap {
                chunk_bytes: 4096,
                total: 10,
                records: vec![(Digest(3, 4), 10)],
            }),
        }
        .to_bytes();
        // Truncation inside the content-map section is rejected.
        assert_eq!(MetaFile::from_bytes(&good[..good.len() - 1]), None);
        assert_eq!(MetaFile::from_bytes(&good[..good.len() - 21]), None);
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(MetaFile::from_bytes(&trailing), None);
        // A bogus section tag is rejected.
        let mut bad_tag = MetaFile {
            file_size: 10,
            zero_map: None,
            channel: None,
            content_map: None,
        }
        .to_bytes();
        *bad_tag.last_mut().unwrap() = 7;
        assert_eq!(MetaFile::from_bytes(&bad_tag), None);
        // A record count far beyond the remaining input is rejected
        // without allocating.
        let mut huge = good.clone();
        // count field lives right after tag(1)+chunk_bytes(4)+total(8).
        let count_at = good.len() - 20 - 8;
        huge[count_at..count_at + 8].copy_from_slice(&(1u64 << 20).to_be_bytes());
        assert_eq!(MetaFile::from_bytes(&huge), None);
    }

    #[test]
    fn generate_content_map_matches_file_contents() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let f = fs.create(root, "mem.vmss", 0o644, 0).unwrap();
        // 2.5 chunks at 4 KB granularity; chunk 1 repeats chunk 0.
        let chunk: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        fs.write(f, 0, &chunk, 0).unwrap();
        fs.write(f, 4096, &chunk, 0).unwrap();
        fs.write(f, 8192, &[5u8; 2048], 0).unwrap();
        let cm = generate_content_map(&mut fs, f, 4096).unwrap();
        assert_eq!(cm.total, 10_240);
        assert_eq!(cm.chunk_bytes, 4096);
        assert_eq!(
            cm.records,
            vec![
                (digest(&chunk), 4096),
                (digest(&chunk), 4096),
                (digest(&[5u8; 2048]), 2048),
            ]
        );
        // Round-trips through the meta file.
        let meta = MetaFile {
            file_size: 10_240,
            zero_map: None,
            channel: None,
            content_map: Some(cm),
        };
        assert_eq!(MetaFile::from_bytes(&meta.to_bytes()), Some(meta));
    }

    #[test]
    fn generate_zero_map_matches_file_contents() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let f = fs.create(root, "mem.vmss", 0o644, 0).unwrap();
        // 10 blocks of 4 KB; blocks 3 and 7 have data.
        fs.setattr(f, Some(40_960), None, 0).unwrap();
        fs.write(f, 3 * 4096 + 17, &[9u8; 100], 0).unwrap();
        fs.write(f, 7 * 4096, &[1u8; 4096], 0).unwrap();
        let zm = generate_zero_map(&fs, f, 4096).unwrap();
        assert_eq!(zm.nblocks, 10);
        for b in 0..10u64 {
            assert_eq!(zm.is_zero(b), b != 3 && b != 7, "block {b}");
        }
        assert_eq!(zm.zero_count(), 8);
    }
}
