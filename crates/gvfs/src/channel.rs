//! The file-based data channel (paper §3.2.2).
//!
//! When meta-data marks a file as "will be required in full" (e.g. a VM
//! memory state before resume), the client-side proxy bypasses
//! block-by-block NFS and runs the action list: **compress** the file on
//! the server (GZIP), **remote copy** it (GSI-enabled SCP in the paper),
//! **uncompress** into the file cache, then **read locally**.
//!
//! We model the server half as an RPC program co-located with the
//! server-side GVFS proxy ([`FileChannelServer`]): FETCH reads the file
//! off the server disk, compresses it (CPU time charged), and returns the
//! compressed stream — whose bytes are what actually crosses the
//! simulated WAN link, exactly like the SCP of a `.gz`. UPLOAD is the
//! reverse path used for write-back of dirty cached files.

use std::sync::Arc;

use oncrpc::{OpaqueAuth, ProgramError, RpcClient, RpcProgram};
use parking_lot::Mutex;
use simnet::{Env, Resource};
use vfs::{Disk, Fs, Handle};
use xdr::{Decode, Decoder, Encoder};

use std::collections::BTreeMap;

use crate::cas::{ContentStore, DedupTel};
use crate::codec::{self, CodecModel};
use crate::digest::{digest, Digest};
use crate::meta::ContentMap;
use crate::transfer::{run_windowed, TransferTel};

/// Cap on recipe records a client will decode from a reply (matches the
/// meta parser's bound: 16 M records ≈ 16 TB at 1 MB chunks).
const MAX_RECIPE_RECORDS: u64 = 1 << 24;

/// Cap on the bytes a client will materialize from one recipe's `total`
/// (the same 16 TB ceiling the records bound implies at 1 MB chunks).
const MAX_RECIPE_BYTES: u64 = 1 << 44;

/// RPC program number for the GVFS file channel (private range).
pub const CHANNEL_PROGRAM: u32 = 400_100;
/// Program version.
pub const CHANNEL_V1: u32 = 1;

/// Procedures.
pub mod chanproc {
    /// Ping.
    pub const NULL: u32 = 0;
    /// Fetch a whole file, compressed.
    pub const FETCH: u32 = 1;
    /// Upload a whole file, compressed.
    pub const UPLOAD: u32 = 2;
    /// Fetch one chunk `[offset, offset+count)` of a file, compressed.
    /// Successive chunks pipeline: the server compresses chunk `k+1`
    /// while chunk `k` crosses the WAN and chunk `k-1` decompresses.
    pub const FETCH_CHUNK: u32 = 3;
    /// Upload one chunk of a file at a given offset (write-back path).
    pub const UPLOAD_CHUNK: u32 = 4;
    /// Fetch a file's per-chunk digest recipe (server-computed fallback
    /// when middleware meta carries no content map).
    pub const FETCH_RECIPE: u32 = 5;
    /// Fetch one recipe chunk's payload by `(offset, len, digest)`. The
    /// digest travels in the request so intermediate proxies can serve
    /// and single-flight the call by *content*, not just by file.
    pub const FETCH_BLOBS: u32 = 6;
    /// Batched read-side fetches: the args are an [`oncrpc::batch`]
    /// envelope of `(proc, args)` sub-calls (fetch procedures only) and
    /// the result is the matching per-item reply envelope. One WAN
    /// round-trip — and one tunnel per-message cost — covers the whole
    /// envelope; shard proxies in a fleet cloning run coalesce adjacent
    /// `FETCH_BLOBS` misses into this.
    pub const FETCH_BLOBS_BATCH: u32 = 7;
    /// Intra-region anti-entropy between sibling shard proxies: the
    /// caller pushes a bounded delta of blob digests it newly holds and
    /// the reply carries the receiver's own delta (tracked by a
    /// per-sender cursor). Proxy-to-proxy only — the origin has no
    /// digest-keyed reply cache and answers `ProcUnavail`.
    pub const GOSSIP_DIGESTS: u32 = 8;
    /// Peer-to-peer blob fetch between sibling shard proxies. Args are
    /// the `FETCH_BLOBS` wire format; the receiver serves *only* from
    /// its local digest-keyed reply cache (never forwards upstream, so
    /// two shards can never ping-pong a miss) and fails the call on a
    /// local miss. The reply is a `FETCH_BLOBS` reply, so the caller's
    /// digest verification applies unchanged.
    pub const FETCH_BLOBS_PEER: u32 = 9;
}

/// Cap on digests per [`chanproc::GOSSIP_DIGESTS`] message in either
/// direction, enforced by the bounded decoder below (lint:
/// bounded-decode). [`FleetTuning::gossip_batch`](crate::FleetTuning)
/// must stay at or below this.
pub const MAX_GOSSIP_DIGESTS: usize = 1024;

/// Encode a gossip message: sender shard id + digest delta. Used for
/// both the call args and the reply body (the reply's "sender" is the
/// replying shard).
pub fn encode_gossip(sender: u32, digests: &[Digest]) -> Vec<u8> {
    debug_assert!(digests.len() <= MAX_GOSSIP_DIGESTS);
    let mut enc = Encoder::new();
    enc.put_u32(sender);
    enc.put_u32(digests.len() as u32);
    for d in digests {
        enc.put_u64(d.0);
        enc.put_u64(d.1);
    }
    enc.into_bytes()
}

/// Decode a gossip message, rejecting counts beyond
/// [`MAX_GOSSIP_DIGESTS`] *before* allocating (a hostile length prefix
/// must not size an allocation — the bounded-decode rule all channel
/// procs follow).
pub fn decode_gossip(bytes: &[u8]) -> Option<(u32, Vec<Digest>)> {
    let mut dec = Decoder::new(bytes);
    let sender = dec.get_u32().ok()?;
    let n = dec.get_u32().ok()? as usize;
    let mut digests: Vec<Digest> = xdr::bounded_alloc(n, MAX_GOSSIP_DIGESTS).ok()?;
    for _ in 0..n {
        let d0 = dec.get_u64().ok()?;
        let d1 = dec.get_u64().ok()?;
        digests.push(Digest(d0, d1));
    }
    Some((sender, digests))
}

/// Channel status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanStatus {
    /// Success.
    Ok,
    /// No such file.
    NoEnt,
    /// Stale handle.
    Stale,
    /// Stream failed to decode.
    BadStream,
}

impl ChanStatus {
    fn as_u32(self) -> u32 {
        match self {
            ChanStatus::Ok => 0,
            ChanStatus::NoEnt => 2,
            ChanStatus::Stale => 70,
            ChanStatus::BadStream => 9000,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            0 => ChanStatus::Ok,
            2 => ChanStatus::NoEnt,
            70 => ChanStatus::Stale,
            9000 => ChanStatus::BadStream,
            _ => return None,
        })
    }
}

/// Server half of the file channel (runs with the server-side proxy).
pub struct FileChannelServer {
    fs: Arc<Mutex<Fs>>,
    disk: Disk,
    codec: CodecModel,
    /// When false, FETCH returns the raw file (ablation: channel without
    /// compression).
    compress: bool,
    /// Optional CPU contention: compressions serialize on the image
    /// server's processors (a dual-CPU node in the paper's testbed), so
    /// eight parallel clonings cannot all gzip at once.
    cpu: Option<Resource>,
}

/// How a blob serve charges the origin disk: a positioned access (seek +
/// stream) or a streaming continuation of the previous record in the
/// same envelope (no positioning — the platter is already there).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlobDiskCharge {
    Positioned,
    Continuation,
}

/// Decode the `(fh, offset, len)` range of `FETCH_BLOBS` args (the
/// trailing digest is for proxies along the path; the origin serves by
/// range and the client verifies).
fn decode_blob_args_range(args: &[u8]) -> Option<(nfs3::Fh3, u64, u32)> {
    let mut dec = Decoder::new(args);
    let fh = nfs3::Fh3::decode(&mut dec).ok()?;
    let offset = dec.get_u64().ok()?;
    let len = dec.get_u32().ok()?;
    let _d0 = dec.get_u64().ok()?;
    let _d1 = dec.get_u64().ok()?;
    Some((fh, offset, len))
}

impl FileChannelServer {
    /// Serve one blob range: filesystem read, disk charge, optional
    /// compression, reply encoding. The single-call and batched paths
    /// both end here, so their reply bytes are identical by
    /// construction; only the disk-positioning charge differs.
    fn serve_blob(
        &self,
        env: &Env,
        fh: nfs3::Fh3,
        offset: u64,
        len: u32,
        charge: BlobDiskCharge,
    ) -> Vec<u8> {
        let contents = {
            let mut fs = self.fs.lock();
            let now = env.now().as_nanos();
            match fs.read(fh.0, offset, len as usize, now) {
                Ok((data, _)) => data,
                Err(e) => {
                    let mut enc = Encoder::new();
                    enc.put_u32(ChanStatus::from_fs(e).as_u32());
                    return enc.into_bytes();
                }
            }
        };
        match charge {
            BlobDiskCharge::Positioned => self.disk.sequential_io(env, contents.len() as u64),
            BlobDiskCharge::Continuation => self.disk.stream_io(env, contents.len() as u64),
        }
        let payload = if self.compress {
            let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
            env.sleep(self.codec.compress_time(contents.len() as u64));
            codec::compress(&contents)
        } else {
            contents.clone()
        };
        let mut enc = Encoder::new();
        enc.put_u32(ChanStatus::Ok.as_u32());
        enc.put_u64(contents.len() as u64);
        enc.put_bool(self.compress);
        enc.put_opaque_var(&payload);
        enc.into_bytes()
    }

    /// Create a channel server over the image server's filesystem/disk.
    pub fn new(fs: Arc<Mutex<Fs>>, disk: Disk, codec: CodecModel, compress: bool) -> Arc<Self> {
        Arc::new(FileChannelServer {
            fs,
            disk,
            codec,
            compress,
            cpu: None,
        })
    }

    /// As [`FileChannelServer::new`], with a bounded CPU resource.
    pub fn with_cpu(
        fs: Arc<Mutex<Fs>>,
        disk: Disk,
        codec: CodecModel,
        compress: bool,
        cpu: Resource,
    ) -> Arc<Self> {
        Arc::new(FileChannelServer {
            fs,
            disk,
            codec,
            compress,
            cpu: Some(cpu),
        })
    }
}

impl RpcProgram for FileChannelServer {
    fn program(&self) -> u32 {
        CHANNEL_PROGRAM
    }

    fn version(&self) -> u32 {
        CHANNEL_V1
    }

    fn call(
        &self,
        env: &Env,
        _cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        match proc {
            chanproc::NULL => Ok(Vec::new()),
            chanproc::FETCH => {
                let fh: nfs3::Fh3 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
                let contents = {
                    let mut fs = self.fs.lock();
                    let size = match fs.size(fh.0) {
                        Ok(s) => s,
                        Err(e) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::from_fs(e).as_u32());
                            return Ok(enc.into_bytes());
                        }
                    };
                    let now = env.now().as_nanos();
                    match fs.read(fh.0, 0, size as usize, now) {
                        Ok((data, _)) => data,
                        Err(e) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::from_fs(e).as_u32());
                            return Ok(enc.into_bytes());
                        }
                    }
                };
                // Stream the file off the server disk.
                self.disk.sequential_io(env, contents.len() as u64);
                let payload = if self.compress {
                    let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
                    env.sleep(self.codec.compress_time(contents.len() as u64));
                    codec::compress(&contents)
                } else {
                    contents.clone()
                };
                let mut enc = Encoder::new();
                enc.put_u32(ChanStatus::Ok.as_u32());
                enc.put_u64(contents.len() as u64);
                enc.put_bool(self.compress);
                enc.put_opaque_var(&payload);
                Ok(enc.into_bytes())
            }
            chanproc::FETCH_CHUNK => {
                let mut dec = Decoder::new(args);
                let fh = nfs3::Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
                let offset = dec.get_u64().map_err(|_| ProgramError::GarbageArgs)?;
                let count = dec.get_u32().map_err(|_| ProgramError::GarbageArgs)?;
                let (total, contents) = {
                    let mut fs = self.fs.lock();
                    let size = match fs.size(fh.0) {
                        Ok(s) => s,
                        Err(e) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::from_fs(e).as_u32());
                            return Ok(enc.into_bytes());
                        }
                    };
                    // Reads past EOF yield an empty chunk, not an error:
                    // the probe chunk doubles as the size query.
                    #[allow(clippy::implicit_saturating_sub)]
                    let len = if offset >= size {
                        0
                    } else {
                        (count as u64).min(size - offset) as usize
                    };
                    let now = env.now().as_nanos();
                    match fs.read(fh.0, offset, len, now) {
                        Ok((data, _)) => (size, data),
                        Err(e) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::from_fs(e).as_u32());
                            return Ok(enc.into_bytes());
                        }
                    }
                };
                self.disk.sequential_io(env, contents.len() as u64);
                let payload = if self.compress {
                    let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
                    env.sleep(self.codec.compress_time(contents.len() as u64));
                    codec::compress(&contents)
                } else {
                    contents.clone()
                };
                let mut enc = Encoder::new();
                enc.put_u32(ChanStatus::Ok.as_u32());
                enc.put_u64(total);
                enc.put_u64(contents.len() as u64);
                enc.put_bool(self.compress);
                enc.put_opaque_var(&payload);
                Ok(enc.into_bytes())
            }
            chanproc::UPLOAD => {
                let mut dec = Decoder::new(args);
                let fh = nfs3::Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
                let compressed = dec.get_bool().map_err(|_| ProgramError::GarbageArgs)?;
                let payload = dec
                    .get_opaque_var()
                    .map_err(|_| ProgramError::GarbageArgs)?;
                let contents = if compressed {
                    match codec::decompress(&payload) {
                        Ok(c) => {
                            let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
                            env.sleep(self.codec.decompress_time(c.len() as u64));
                            c
                        }
                        Err(_) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::BadStream.as_u32());
                            return Ok(enc.into_bytes());
                        }
                    }
                } else {
                    payload
                };
                let status = {
                    let mut fs = self.fs.lock();
                    let now = env.now().as_nanos();
                    match fs
                        .setattr(fh.0, Some(0), None, now)
                        .and_then(|_| fs.write(fh.0, 0, &contents, now))
                    {
                        Ok(_) => ChanStatus::Ok,
                        Err(e) => ChanStatus::from_fs(e),
                    }
                };
                if status == ChanStatus::Ok {
                    self.disk.sequential_io(env, contents.len() as u64);
                }
                let mut enc = Encoder::new();
                enc.put_u32(status.as_u32());
                Ok(enc.into_bytes())
            }
            chanproc::UPLOAD_CHUNK => {
                let mut dec = Decoder::new(args);
                let fh = nfs3::Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
                let offset = dec.get_u64().map_err(|_| ProgramError::GarbageArgs)?;
                let total = dec.get_u64().map_err(|_| ProgramError::GarbageArgs)?;
                let compressed = dec.get_bool().map_err(|_| ProgramError::GarbageArgs)?;
                let payload = dec
                    .get_opaque_var()
                    .map_err(|_| ProgramError::GarbageArgs)?;
                let contents = if compressed {
                    match codec::decompress(&payload) {
                        Ok(c) => {
                            let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
                            env.sleep(self.codec.decompress_time(c.len() as u64));
                            c
                        }
                        Err(_) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::BadStream.as_u32());
                            return Ok(enc.into_bytes());
                        }
                    }
                } else {
                    payload
                };
                let status = {
                    let mut fs = self.fs.lock();
                    let now = env.now().as_nanos();
                    // Truncating to the final size is idempotent across
                    // chunks: every chunk lies inside [0, total), so the
                    // file ends at `total` whatever order they land in.
                    match fs
                        .setattr(fh.0, Some(total), None, now)
                        .and_then(|_| fs.write(fh.0, offset, &contents, now))
                    {
                        Ok(_) => ChanStatus::Ok,
                        Err(e) => ChanStatus::from_fs(e),
                    }
                };
                if status == ChanStatus::Ok {
                    self.disk.sequential_io(env, contents.len() as u64);
                }
                let mut enc = Encoder::new();
                enc.put_u32(status.as_u32());
                Ok(enc.into_bytes())
            }
            chanproc::FETCH_RECIPE => {
                let mut dec = Decoder::new(args);
                let fh = nfs3::Fh3::decode(&mut dec).map_err(|_| ProgramError::GarbageArgs)?;
                let chunk_bytes = dec.get_u32().map_err(|_| ProgramError::GarbageArgs)?;
                if chunk_bytes == 0 {
                    return Err(ProgramError::GarbageArgs);
                }
                let (total, records) = {
                    let mut fs = self.fs.lock();
                    let size = match fs.size(fh.0) {
                        Ok(s) => s,
                        Err(e) => {
                            let mut enc = Encoder::new();
                            enc.put_u32(ChanStatus::from_fs(e).as_u32());
                            return Ok(enc.into_bytes());
                        }
                    };
                    let now = env.now().as_nanos();
                    let nchunks = size.div_ceil(chunk_bytes as u64);
                    // `nchunks` is server-derived, but the client caps
                    // the records it will decode at the same bound, so
                    // refuse here instead of encoding a reply the peer
                    // must reject.
                    let mut records =
                        xdr::bounded_alloc(nchunks as usize, MAX_RECIPE_RECORDS as usize)
                            .map_err(|_| ProgramError::GarbageArgs)?;
                    let mut fail = None;
                    for c in 0..nchunks {
                        let off = c * chunk_bytes as u64;
                        let len = ((size - off).min(chunk_bytes as u64)) as usize;
                        match fs.read(fh.0, off, len, now) {
                            Ok((data, _)) => records.push((digest(&data), len as u32)),
                            Err(e) => {
                                fail = Some(e);
                                break;
                            }
                        }
                    }
                    if let Some(e) = fail {
                        let mut enc = Encoder::new();
                        enc.put_u32(ChanStatus::from_fs(e).as_u32());
                        return Ok(enc.into_bytes());
                    }
                    (size, records)
                };
                // Computing a recipe streams the whole file off the disk
                // and digests it on the server CPUs.
                self.disk.sequential_io(env, total);
                {
                    let _cpu = self.cpu.as_ref().map(|c| c.acquire(env));
                    env.sleep(self.codec.digest_time(total));
                }
                let mut enc = Encoder::new();
                enc.put_u32(ChanStatus::Ok.as_u32());
                enc.put_u64(total);
                enc.put_u32(chunk_bytes);
                enc.put_u64(records.len() as u64);
                for (d, l) in &records {
                    enc.put_u64(d.0);
                    enc.put_u64(d.1);
                    enc.put_u32(*l);
                }
                Ok(enc.into_bytes())
            }
            chanproc::FETCH_BLOBS => {
                let (fh, offset, len) =
                    decode_blob_args_range(args).ok_or(ProgramError::GarbageArgs)?;
                Ok(self.serve_blob(env, fh, offset, len, BlobDiskCharge::Positioned))
            }
            chanproc::FETCH_BLOBS_BATCH => {
                let items =
                    oncrpc::batch::decode_batch(args).map_err(|_| ProgramError::GarbageArgs)?;
                let mut replies = xdr::bounded_alloc(items.len(), oncrpc::batch::MAX_BATCH_ITEMS)
                    .map_err(|_| ProgramError::GarbageArgs)?;
                // A recipe-ordered envelope asks for *adjacent* file
                // ranges: the platter crosses them in one pass, so only
                // the first record of each contiguous span pays the
                // positioning cost — followers are charged as streaming
                // continuations. Interleaved single FETCH_BLOBS calls
                // cannot get this: the arm has moved for whoever came
                // in between.
                let mut prev: Option<(nfs3::Fh3, u64)> = None;
                for item in items {
                    // Only read-side procedures ride a batch: a batched
                    // mutation retried as a whole envelope would blur
                    // the duplicate-request-cache's at-most-once story,
                    // and nothing on the fleet path needs it. Each item
                    // produces the same reply bytes as the equivalent
                    // single call, so a batched fetch is byte-equivalent
                    // to N sequential ones by construction.
                    let reply = match item.proc {
                        chanproc::FETCH_BLOBS => match decode_blob_args_range(&item.args) {
                            Some((fh, offset, len)) => {
                                let charge = match prev {
                                    Some((pfh, pend)) if pfh.0 == fh.0 && pend == offset => {
                                        BlobDiskCharge::Continuation
                                    }
                                    _ => BlobDiskCharge::Positioned,
                                };
                                prev = Some((fh, offset + len as u64));
                                Some(self.serve_blob(env, fh, offset, len, charge))
                            }
                            None => None,
                        },
                        chanproc::FETCH | chanproc::FETCH_CHUNK | chanproc::FETCH_RECIPE => {
                            prev = None;
                            self.call(env, _cred, item.proc, &item.args).ok()
                        }
                        _ => None,
                    };
                    replies.push(match reply {
                        Some(result) => oncrpc::BatchReplyItem {
                            stat: oncrpc::BATCH_OK,
                            result,
                        },
                        None => oncrpc::BatchReplyItem {
                            stat: oncrpc::BATCH_ITEM_FAILED,
                            result: Vec::new(),
                        },
                    });
                }
                Ok(oncrpc::batch::encode_batch_reply(&replies))
            }
            _ => Err(ProgramError::ProcUnavail),
        }
    }
}

impl ChanStatus {
    fn from_fs(e: vfs::FsError) -> ChanStatus {
        match e {
            vfs::FsError::Stale => ChanStatus::Stale,
            _ => ChanStatus::NoEnt,
        }
    }
}

/// Result of a recipe-driven fetch ([`ChannelClient::fetch_dedup`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupFetch {
    /// The reassembled file contents (byte-identical to what
    /// [`ChannelClient::fetch_chunked`] would have returned).
    pub contents: Vec<u8>,
    /// Compressed bytes that crossed the wire.
    pub wire: u64,
    /// Logical bytes of the chunks actually fetched (the rest came out
    /// of the local CAS or rode a duplicate in-file digest).
    pub fresh_bytes: u64,
}

/// Result of [`ChannelClient::fetch_recipe_pinned`]: every record of
/// `recipe` is CAS-resident and holds one pin per record occurrence.
/// Ownership of those pins passes to the caller (normally straight into
/// [`crate::FileCache::install_reference`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedRecipe {
    /// The recipe, fully resolved against the local CAS.
    pub recipe: ContentMap,
    /// Compressed bytes that crossed the wire.
    pub wire: u64,
    /// Logical bytes of the chunks actually fetched (the rest were
    /// already resident or rode a duplicate in-file digest).
    pub fresh_bytes: u64,
}

/// Errors surfaced by the client half.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// RPC-level failure.
    Rpc(oncrpc::RpcError),
    /// Channel-level status.
    Status(ChanStatus),
    /// Reply malformed.
    Decode,
}

/// One blob's outcome inside a batched fetch: the verified chunk
/// contents plus the wire bytes it cost, or that slot's failure.
pub type BlobFetchResult = Result<(Vec<u8>, u64), ChannelError>;

/// Encode `FETCH_BLOBS` argument bytes: file handle, byte range, and the
/// expected content digest (the digest rides along so proxies can serve
/// and coalesce by content).
fn encode_blob_args(h: Handle, offset: u64, len: u32, want: Digest) -> Vec<u8> {
    let mut enc = Encoder::new();
    nfs3::Fh3(h).encode(&mut enc);
    enc.put_u64(offset);
    enc.put_u32(len);
    enc.put_u64(want.0);
    enc.put_u64(want.1);
    enc.into_bytes()
}

/// Client half of the file channel, used by the client-side proxy.
#[derive(Clone)]
pub struct ChannelClient {
    rpc: RpcClient,
    codec: CodecModel,
}

impl ChannelClient {
    /// Bind to an RPC stub whose endpoint serves [`FileChannelServer`].
    pub fn new(rpc: RpcClient, codec: CodecModel) -> Self {
        ChannelClient { rpc, codec }
    }

    /// The CPU-cost model this client charges for codec and digest work.
    /// The proxy copies it so its own dedup bookkeeping (flush-side
    /// digesting, blob verification) prices CPU consistently with the
    /// fetch paths.
    pub fn codec(&self) -> &CodecModel {
        &self.codec
    }

    /// Fetch and decompress a whole file. Returns (contents, wire_bytes):
    /// the caller can report the compression ratio achieved on the WAN.
    pub fn fetch(&self, env: &Env, h: Handle) -> Result<(Vec<u8>, u64), ChannelError> {
        let args = xdr::to_bytes(&nfs3::Fh3(h));
        let res = self
            .rpc
            .call_dl(env, CHANNEL_PROGRAM, CHANNEL_V1, chanproc::FETCH, &args)
            .map_err(ChannelError::Rpc)?;
        let mut dec = Decoder::new(&res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        let orig_size = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        let compressed = dec.get_bool().map_err(|_| ChannelError::Decode)?;
        let payload = dec.get_opaque_var().map_err(|_| ChannelError::Decode)?;
        let wire = payload.len() as u64;
        let contents = if compressed {
            env.sleep(self.codec.decompress_time(orig_size));
            codec::decompress(&payload).map_err(|_| ChannelError::Status(ChanStatus::BadStream))?
        } else {
            payload
        };
        if contents.len() as u64 != orig_size {
            return Err(ChannelError::Decode);
        }
        Ok((contents, wire))
    }

    /// Fetch one chunk. Returns (file_total, chunk_contents, wire_bytes);
    /// a read past EOF yields an empty chunk, so the first chunk doubles
    /// as the size probe.
    fn fetch_chunk(
        &self,
        env: &Env,
        h: Handle,
        offset: u64,
        count: u32,
    ) -> Result<(u64, Vec<u8>, u64), ChannelError> {
        let mut enc = Encoder::new();
        nfs3::Fh3(h).encode(&mut enc);
        enc.put_u64(offset);
        enc.put_u32(count);
        let res = self
            .rpc
            .call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_CHUNK,
                &enc.into_bytes(),
            )
            .map_err(ChannelError::Rpc)?;
        let mut dec = Decoder::new(&res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        let total = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        let chunk_len = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        let compressed = dec.get_bool().map_err(|_| ChannelError::Decode)?;
        let payload = dec.get_opaque_var().map_err(|_| ChannelError::Decode)?;
        let wire = payload.len() as u64;
        let contents = if compressed {
            env.sleep(self.codec.decompress_time(chunk_len));
            codec::decompress(&payload).map_err(|_| ChannelError::Status(ChanStatus::BadStream))?
        } else {
            payload
        };
        if contents.len() as u64 != chunk_len {
            return Err(ChannelError::Decode);
        }
        Ok((total, contents, wire))
    }

    /// Fetch a whole file in pipelined chunks: up to `window` chunk RPCs
    /// in flight, so server compression, WAN transfer and client
    /// decompression of successive chunks overlap. Returns the same
    /// (contents, wire_bytes) as [`ChannelClient::fetch`]; with
    /// `chunk_bytes == 0` or `window <= 1` it *is* the monolithic fetch.
    pub fn fetch_chunked(
        &self,
        env: &Env,
        h: Handle,
        chunk_bytes: u32,
        window: usize,
        tel: Option<&TransferTel>,
    ) -> Result<(Vec<u8>, u64), ChannelError> {
        if chunk_bytes == 0 || window <= 1 {
            return self.fetch(env, h);
        }
        // The first chunk is also the size probe.
        let (total, first, first_wire) = self.fetch_chunk(env, h, 0, chunk_bytes)?;
        if total <= chunk_bytes as u64 {
            if first.len() as u64 != total {
                return Err(ChannelError::Decode);
            }
            return Ok((first, first_wire));
        }
        let mut offsets = Vec::new();
        let mut off = chunk_bytes as u64;
        while off < total {
            offsets.push(off);
            off += chunk_bytes as u64;
        }
        let me = self.clone();
        let slots = run_windowed(env, "chan-fetch", window, offsets, tel, move |env, off| {
            Some(me.fetch_chunk(env, h, off, chunk_bytes))
        });
        let mut contents = first;
        let mut wire = first_wire;
        for slot in slots {
            match slot {
                Some(Ok((_, data, w))) => {
                    contents.extend_from_slice(&data);
                    wire += w;
                }
                Some(Err(e)) => return Err(e),
                None => return Err(ChannelError::Decode),
            }
        }
        if contents.len() as u64 != total {
            return Err(ChannelError::Decode);
        }
        Ok((contents, wire))
    }

    /// Fetch the per-chunk digest recipe of a file from the server. Used
    /// when the middleware meta carries no content map; the server scans
    /// and digests the file (disk + CPU time charged there).
    pub fn fetch_recipe(
        &self,
        env: &Env,
        h: Handle,
        chunk_bytes: u32,
    ) -> Result<ContentMap, ChannelError> {
        let mut enc = Encoder::new();
        nfs3::Fh3(h).encode(&mut enc);
        enc.put_u32(chunk_bytes);
        let res = self
            .rpc
            .call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_RECIPE,
                &enc.into_bytes(),
            )
            .map_err(ChannelError::Rpc)?;
        let mut dec = Decoder::new(&res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        let total = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        let chunk_bytes = dec.get_u32().map_err(|_| ChannelError::Decode)?;
        let count = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        if chunk_bytes == 0 || count > MAX_RECIPE_RECORDS {
            return Err(ChannelError::Decode);
        }
        // Growth is bounded by the actual reply length: each record costs
        // 20 reply bytes, so a truncated stream fails before the Vec grows.
        let mut records = Vec::new();
        for _ in 0..count {
            let d0 = dec.get_u64().map_err(|_| ChannelError::Decode)?;
            let d1 = dec.get_u64().map_err(|_| ChannelError::Decode)?;
            let len = dec.get_u32().map_err(|_| ChannelError::Decode)?;
            records.push((Digest(d0, d1), len));
        }
        Ok(ContentMap {
            chunk_bytes,
            total,
            records,
        })
    }

    /// Fetch one recipe chunk's payload; the expected digest travels in
    /// the request (content-addressed proxy caching) and is verified
    /// against the decompressed bytes here.
    fn fetch_blob(
        &self,
        env: &Env,
        h: Handle,
        offset: u64,
        len: u32,
        want: Digest,
    ) -> Result<(Vec<u8>, u64), ChannelError> {
        let args = encode_blob_args(h, offset, len, want);
        let res = self
            .rpc
            .call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_BLOBS,
                &args,
            )
            .map_err(ChannelError::Rpc)?;
        self.decode_blob_reply(env, &res, want)
    }

    /// Decode, decompress and digest-verify one `FETCH_BLOBS` reply
    /// (shared between the single-call path and the batched envelope).
    fn decode_blob_reply(
        &self,
        env: &Env,
        res: &[u8],
        want: Digest,
    ) -> Result<(Vec<u8>, u64), ChannelError> {
        let mut dec = Decoder::new(res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        let chunk_len = dec.get_u64().map_err(|_| ChannelError::Decode)?;
        let compressed = dec.get_bool().map_err(|_| ChannelError::Decode)?;
        let payload = dec.get_opaque_var().map_err(|_| ChannelError::Decode)?;
        let wire = payload.len() as u64;
        let contents = if compressed {
            env.sleep(self.codec.decompress_time(chunk_len));
            codec::decompress(&payload).map_err(|_| ChannelError::Status(ChanStatus::BadStream))?
        } else {
            payload
        };
        // Verify the content actually matches the recipe (a regenerated
        // server file would silently corrupt the reassembly otherwise).
        env.sleep(self.codec.digest_time(contents.len() as u64));
        if contents.len() as u64 != chunk_len || digest(&contents) != want {
            return Err(ChannelError::Status(ChanStatus::BadStream));
        }
        Ok((contents, wire))
    }

    /// Fetch several recipe chunks in one `FETCH_BLOBS_BATCH` envelope —
    /// one upstream round-trip for the whole slice. Each returned slot
    /// is the same `(contents, wire_bytes)` the equivalent
    /// [`ChannelClient::fetch_blob`] call would produce, verified against
    /// its digest; a per-item server failure surfaces as that slot's
    /// error without poisoning its neighbours.
    pub fn fetch_blobs_batch(
        &self,
        env: &Env,
        h: Handle,
        wants: &[(u64, u32, Digest)],
    ) -> Result<Vec<BlobFetchResult>, ChannelError> {
        let items: Vec<oncrpc::BatchItem> = wants
            .iter()
            .map(|&(offset, len, want)| oncrpc::BatchItem {
                proc: chanproc::FETCH_BLOBS,
                args: encode_blob_args(h, offset, len, want),
            })
            .collect();
        let replies = self
            .rpc
            .call_batch(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_BLOBS_BATCH,
                &items,
            )
            .map_err(ChannelError::Rpc)?;
        if replies.len() != wants.len() {
            return Err(ChannelError::Decode);
        }
        Ok(replies
            .iter()
            .zip(wants)
            .map(|(r, &(_, _, want))| {
                if !r.ok() {
                    return Err(ChannelError::Status(ChanStatus::BadStream));
                }
                self.decode_blob_reply(env, &r.result, want)
            })
            .collect())
    }

    /// Fetch a whole file by recipe: serve every chunk whose digest the
    /// local CAS already holds, fetch only the missing payloads (one
    /// `FETCH_BLOBS` per *distinct* missing digest, pipelined through
    /// [`run_windowed`]), and reassemble. `contents`/`wire` match what
    /// [`ChannelClient::fetch_chunked`] would return; `fresh_bytes` is the
    /// logical size of the chunks that actually crossed the wire (what a
    /// dedup-aware cache install must charge to disk).
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_dedup(
        &self,
        env: &Env,
        h: Handle,
        recipe_hint: Option<&ContentMap>,
        chunk_bytes: u32,
        window: usize,
        cas: &ContentStore,
        dtel: &DedupTel,
        tel: Option<&TransferTel>,
    ) -> Result<DedupFetch, ChannelError> {
        self.fetch_dedup_batched(env, h, recipe_hint, chunk_bytes, window, 1, cas, dtel, tel)
    }

    /// [`ChannelClient::fetch_dedup`] with multi-digest envelopes: the
    /// missing records are fetched `batch` at a time through
    /// [`ChannelClient::fetch_blobs_batch`] (still `window` envelopes in
    /// flight), so a cold transfer crosses the upstream link in
    /// `misses / batch` round-trips instead of one per distinct chunk.
    /// `batch <= 1` degenerates to the per-chunk path and is
    /// byte-for-byte the plain [`ChannelClient::fetch_dedup`].
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_dedup_batched(
        &self,
        env: &Env,
        h: Handle,
        recipe_hint: Option<&ContentMap>,
        chunk_bytes: u32,
        window: usize,
        batch: usize,
        cas: &ContentStore,
        dtel: &DedupTel,
        tel: Option<&TransferTel>,
    ) -> Result<DedupFetch, ChannelError> {
        let fetched_recipe;
        let recipe = match recipe_hint {
            Some(r) => r,
            None => {
                let cb = if chunk_bytes == 0 {
                    1 << 20
                } else {
                    chunk_bytes
                };
                fetched_recipe = self.fetch_recipe(env, h, cb)?;
                &fetched_recipe
            }
        };
        let span: u64 = recipe.records.iter().map(|(_, l)| *l as u64).sum();
        if span != recipe.total {
            return Err(ChannelError::Decode);
        }
        // Plan each record: local CAS hit, or member of a fetch group
        // (one group per distinct missing digest — duplicates within the
        // file ride the first fetch).
        enum Slot {
            Local(Vec<u8>),
            Group(usize),
        }
        let mut groups: Vec<(u64, u32, Digest)> = Vec::new();
        let mut group_of: BTreeMap<Digest, usize> = BTreeMap::new();
        let mut plan = xdr::bounded_alloc(recipe.records.len(), MAX_RECIPE_RECORDS as usize)
            .map_err(|_| ChannelError::Decode)?;
        let mut off = 0u64;
        for (d, l) in &recipe.records {
            if let Some(bytes) = cas.get(d) {
                if bytes.len() != *l as usize {
                    return Err(ChannelError::Decode);
                }
                dtel.recipe_hits.inc();
                dtel.bytes_avoided.add(*l as u64);
                plan.push(Slot::Local(bytes));
            } else if let Some(&gi) = group_of.get(d) {
                // Duplicate of an in-flight fetch: no extra wire bytes.
                dtel.recipe_hits.inc();
                dtel.bytes_avoided.add(*l as u64);
                plan.push(Slot::Group(gi));
            } else {
                group_of.insert(*d, groups.len());
                plan.push(Slot::Group(groups.len()));
                groups.push((off, *l, *d));
            }
            off += *l as u64;
        }
        let me = self.clone();
        let slots: Vec<Option<BlobFetchResult>> = if batch > 1 {
            // Envelope mode: fetch the misses `batch` digests per
            // round-trip, with `window` envelopes pipelined. Item-level
            // failures surface in their slot; an envelope-level failure
            // fails the whole fetch (the caller falls back to the plain
            // chunked transfer, same as any other dedup error).
            let envelopes: Vec<Vec<(u64, u32, Digest)>> =
                groups.chunks(batch).map(|c| c.to_vec()).collect();
            let rounds = run_windowed(
                env,
                "chan-dedup",
                window.max(1),
                envelopes,
                tel,
                move |env, wants| Some(me.fetch_blobs_batch(env, h, &wants)),
            );
            let mut flat = xdr::bounded_alloc(groups.len(), MAX_RECIPE_RECORDS as usize)
                .map_err(|_| ChannelError::Decode)?;
            for round in rounds {
                match round {
                    Some(Ok(items)) => flat.extend(items.into_iter().map(Some)),
                    Some(Err(e)) => return Err(e),
                    None => return Err(ChannelError::Decode),
                }
            }
            if flat.len() != groups.len() {
                return Err(ChannelError::Decode);
            }
            flat
        } else {
            run_windowed(
                env,
                "chan-dedup",
                window.max(1),
                groups.clone(),
                tel,
                move |env, (off, len, d)| Some(me.fetch_blob(env, h, off, len, d)),
            )
        };
        let mut fetched: Vec<Vec<u8>> =
            xdr::bounded_alloc(groups.len(), MAX_RECIPE_RECORDS as usize)
                .map_err(|_| ChannelError::Decode)?;
        let mut wire = 0u64;
        let mut fresh_bytes = 0u64;
        for slot in slots {
            match slot {
                Some(Ok((data, w))) => {
                    dtel.blob_fetches.inc();
                    wire += w;
                    fresh_bytes += data.len() as u64;
                    cas.insert(&data);
                    fetched.push(data);
                }
                Some(Err(e)) => return Err(e),
                None => return Err(ChannelError::Decode),
            }
        }
        let mut contents = xdr::bounded_alloc(recipe.total as usize, MAX_RECIPE_BYTES as usize)
            .map_err(|_| ChannelError::Decode)?;
        for slot in plan {
            match slot {
                Slot::Local(bytes) => contents.extend_from_slice(&bytes),
                Slot::Group(gi) => contents.extend_from_slice(&fetched[gi]),
            }
        }
        if contents.len() as u64 != recipe.total {
            return Err(ChannelError::Decode);
        }
        Ok(DedupFetch {
            contents,
            wire,
            fresh_bytes,
        })
    }

    /// Resolve a whole file's recipe into the local CAS *without*
    /// assembling the contents, taking one pin per record occurrence:
    /// resident chunks are pinned in place, missing ones are fetched
    /// (batched and windowed exactly like
    /// [`ChannelClient::fetch_dedup_batched`]) and inserted pre-pinned.
    /// On success the returned [`PinnedRecipe`] carries ownership of
    /// every pin; on any error all pins taken so far are released, so
    /// the caller can simply fall back to a materializing fetch.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_recipe_pinned(
        &self,
        env: &Env,
        h: Handle,
        recipe_hint: Option<&ContentMap>,
        chunk_bytes: u32,
        window: usize,
        batch: usize,
        cas: &ContentStore,
        dtel: &DedupTel,
        tel: Option<&TransferTel>,
    ) -> Result<PinnedRecipe, ChannelError> {
        let recipe = match recipe_hint {
            Some(r) => r.clone(),
            None => {
                let cb = if chunk_bytes == 0 {
                    1 << 20
                } else {
                    chunk_bytes
                };
                self.fetch_recipe(env, h, cb)?
            }
        };
        let span: u64 = recipe.records.iter().map(|(_, l)| *l as u64).sum();
        if span != recipe.total {
            return Err(ChannelError::Decode);
        }
        // Pins taken so far, released in bulk if anything goes wrong.
        let mut pins: Vec<Digest> =
            xdr::bounded_alloc(recipe.records.len(), MAX_RECIPE_RECORDS as usize)
                .map_err(|_| ChannelError::Decode)?;
        let unwind = |pins: &[Digest]| {
            for d in pins {
                cas.unpin(d);
            }
        };
        // First pass: pin what is resident, plan one fetch group per
        // distinct missing digest; duplicate occurrences (resident or
        // not) are deferred to the second pass.
        let mut groups: Vec<(u64, u32, Digest)> = Vec::new();
        let mut group_of: BTreeMap<Digest, usize> = BTreeMap::new();
        let mut deferred: Vec<(Digest, u32)> = Vec::new();
        let mut off = 0u64;
        for (d, l) in &recipe.records {
            if group_of.contains_key(d) {
                deferred.push((*d, *l));
            } else if cas.pin(d) {
                if cas.len_of(d) != Some(*l) {
                    cas.unpin(d);
                    unwind(&pins);
                    return Err(ChannelError::Decode);
                }
                pins.push(*d);
                dtel.recipe_hits.inc();
                dtel.bytes_avoided.add(*l as u64);
            } else {
                group_of.insert(*d, groups.len());
                groups.push((off, *l, *d));
            }
            off += *l as u64;
        }
        // Fetch the misses, mirroring `fetch_dedup_batched`'s transport.
        let me = self.clone();
        let slots: Vec<Option<BlobFetchResult>> = if batch > 1 {
            let envelopes: Vec<Vec<(u64, u32, Digest)>> =
                groups.chunks(batch).map(|c| c.to_vec()).collect();
            let rounds = run_windowed(
                env,
                "chan-dedup",
                window.max(1),
                envelopes,
                tel,
                move |env, wants| Some(me.fetch_blobs_batch(env, h, &wants)),
            );
            let mut flat = xdr::bounded_alloc(groups.len(), MAX_RECIPE_RECORDS as usize)
                .map_err(|_| ChannelError::Decode)?;
            for round in rounds {
                match round {
                    Some(Ok(items)) => flat.extend(items.into_iter().map(Some)),
                    Some(Err(_)) | None => {
                        unwind(&pins);
                        return Err(ChannelError::Decode);
                    }
                }
            }
            flat
        } else {
            run_windowed(
                env,
                "chan-dedup",
                window.max(1),
                groups.clone(),
                tel,
                move |env, (off, len, d)| Some(me.fetch_blob(env, h, off, len, d)),
            )
        };
        if slots.len() != groups.len() {
            unwind(&pins);
            return Err(ChannelError::Decode);
        }
        let mut wire = 0u64;
        let mut fresh_bytes = 0u64;
        for (slot, (_, _, d)) in slots.into_iter().zip(&groups) {
            match slot {
                Some(Ok((data, w))) => {
                    dtel.blob_fetches.inc();
                    wire += w;
                    fresh_bytes += data.len() as u64;
                    let got = cas.insert_pinned(&data);
                    debug_assert_eq!(got, *d, "blob digest verified by decode");
                    // An oversized payload is not retained by the CAS and
                    // therefore cannot anchor a reference file.
                    if !cas.contains(d) {
                        unwind(&pins);
                        return Err(ChannelError::Decode);
                    }
                    pins.push(*d);
                }
                _ => {
                    unwind(&pins);
                    return Err(ChannelError::Decode);
                }
            }
        }
        // Second pass: duplicate occurrences each take their own pin —
        // their digest is resident by now (pinned above), so this cannot
        // race an eviction.
        for (d, l) in deferred {
            if !cas.pin(&d) || cas.len_of(&d) != Some(l) {
                unwind(&pins);
                return Err(ChannelError::Decode);
            }
            pins.push(d);
            dtel.recipe_hits.inc();
            dtel.bytes_avoided.add(l as u64);
        }
        Ok(PinnedRecipe {
            recipe,
            wire,
            fresh_bytes,
        })
    }

    /// Upload only the diverged ranges of a file whose final size is
    /// `total`, pipelined like [`ChannelClient::upload_chunked`]. The
    /// server applies each range with a size-preserving set-length +
    /// write, so untouched ranges keep whatever content the server
    /// already holds — exactly what a copy-on-write flush needs when
    /// upstream still has the golden base the recipe came from.
    #[allow(clippy::too_many_arguments)]
    pub fn upload_ranges(
        &self,
        env: &Env,
        h: Handle,
        total: u64,
        ranges: &[(u64, Vec<u8>)],
        compress: bool,
        window: usize,
        tel: Option<&TransferTel>,
    ) -> Result<u64, ChannelError> {
        if ranges.len() <= 1 || window <= 1 {
            let mut wire = 0u64;
            for (off, data) in ranges {
                wire += self.upload_chunk(env, h, *off, total, data, compress)?;
            }
            return Ok(wire);
        }
        let me = self.clone();
        let slots = run_windowed(
            env,
            "chan-upload",
            window,
            ranges.to_vec(),
            tel,
            move |env, (off, data)| Some(me.upload_chunk(env, h, off, total, &data, compress)),
        );
        let mut wire = 0u64;
        for slot in slots {
            match slot {
                Some(Ok(w)) => wire += w,
                Some(Err(e)) => return Err(e),
                None => return Err(ChannelError::Decode),
            }
        }
        Ok(wire)
    }

    /// Upload one chunk of a file whose final size is `total`.
    fn upload_chunk(
        &self,
        env: &Env,
        h: Handle,
        offset: u64,
        total: u64,
        data: &[u8],
        compress: bool,
    ) -> Result<u64, ChannelError> {
        let payload = if compress {
            env.sleep(self.codec.compress_time(data.len() as u64));
            codec::compress(data)
        } else {
            data.to_vec()
        };
        let wire = payload.len() as u64;
        let mut enc = Encoder::new();
        nfs3::Fh3(h).encode(&mut enc);
        enc.put_u64(offset);
        enc.put_u64(total);
        enc.put_bool(compress);
        enc.put_opaque_var(&payload);
        let res = self
            .rpc
            .call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::UPLOAD_CHUNK,
                &enc.into_bytes(),
            )
            .map_err(ChannelError::Rpc)?;
        let mut dec = Decoder::new(&res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        Ok(wire)
    }

    /// Upload a whole file in pipelined chunks (write-back path), the
    /// reverse of [`ChannelClient::fetch_chunked`]: client compression of
    /// chunk `k+1` overlaps the WAN transfer of chunk `k`. Falls back to
    /// the monolithic [`ChannelClient::upload`] for a single chunk,
    /// `chunk_bytes == 0`, or `window <= 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn upload_chunked(
        &self,
        env: &Env,
        h: Handle,
        contents: &[u8],
        compress: bool,
        chunk_bytes: u32,
        window: usize,
        tel: Option<&TransferTel>,
    ) -> Result<u64, ChannelError> {
        if chunk_bytes == 0 || window <= 1 || contents.len() <= chunk_bytes as usize {
            return self.upload(env, h, contents, compress);
        }
        let total = contents.len() as u64;
        let chunks: Vec<(u64, Vec<u8>)> = contents
            .chunks(chunk_bytes as usize)
            .enumerate()
            .map(|(i, c)| (i as u64 * chunk_bytes as u64, c.to_vec()))
            .collect();
        let me = self.clone();
        let slots = run_windowed(
            env,
            "chan-upload",
            window,
            chunks,
            tel,
            move |env, (off, data)| Some(me.upload_chunk(env, h, off, total, &data, compress)),
        );
        let mut wire = 0u64;
        for slot in slots {
            match slot {
                Some(Ok(w)) => wire += w,
                Some(Err(e)) => return Err(e),
                None => return Err(ChannelError::Decode),
            }
        }
        Ok(wire)
    }

    /// Compress and upload a whole file (write-back path).
    pub fn upload(
        &self,
        env: &Env,
        h: Handle,
        contents: &[u8],
        compress: bool,
    ) -> Result<u64, ChannelError> {
        let payload = if compress {
            env.sleep(self.codec.compress_time(contents.len() as u64));
            codec::compress(contents)
        } else {
            contents.to_vec()
        };
        let wire = payload.len() as u64;
        let mut enc = Encoder::new();
        nfs3::Fh3(h).encode(&mut enc);
        enc.put_bool(compress);
        enc.put_opaque_var(&payload);
        let res = self
            .rpc
            .call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::UPLOAD,
                &enc.into_bytes(),
            )
            .map_err(ChannelError::Rpc)?;
        let mut dec = Decoder::new(&res);
        let status = ChanStatus::from_u32(dec.get_u32().map_err(|_| ChannelError::Decode)?)
            .ok_or(ChannelError::Decode)?;
        if status != ChanStatus::Ok {
            return Err(ChannelError::Status(status));
        }
        Ok(wire)
    }
}

// `Encode` must be in scope for Fh3::encode above.
use xdr::Encode;

#[cfg(test)]
mod tests {
    use super::*;
    use oncrpc::{AuthSys, Dispatcher, WireSpec};
    use simnet::{Link, SimDuration, Simulation};
    use vfs::DiskModel;

    fn rig(sim: &Simulation, mbps: f64) -> (Arc<Mutex<Fs>>, ChannelClient, Link) {
        let h = sim.handle();
        let fs = Arc::new(Mutex::new(Fs::new(0)));
        let disk = Disk::new(&h, DiskModel::server_array());
        let server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
        let up = Link::from_mbps(&h, "up", mbps, SimDuration::from_millis(17));
        let down = Link::from_mbps(&h, "down", mbps, SimDuration::from_millis(17));
        let ep = oncrpc::endpoint(&h, up, down.clone(), WireSpec::ssh_tunnel(50e6));
        ep.listener
            .serve("chan", Dispatcher::new().register(server).into_handler(), 2);
        let rpc = RpcClient::new(ep.channel, OpaqueAuth::sys(&AuthSys::new("c", 1, 1)));
        (fs, ChannelClient::new(rpc, CodecModel::default()), down)
    }

    #[test]
    fn fetch_returns_exact_contents_and_compressed_wire_bytes() {
        let sim = Simulation::new();
        let (fs, chan, down) = rig(&sim, 25.0);
        // A 4 MB file, 90% zeros (like a memory image).
        let fh = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "vm.vmss", 0o644, 0).unwrap();
            f.setattr(h, Some(4 << 20), None, 0).unwrap();
            for i in 0..40 {
                f.write(h, i * 100_000, &[0xABu8; 10_000], 0).unwrap();
            }
            h
        };
        sim.spawn("client", move |env| {
            let (contents, wire) = chan.fetch(&env, fh).unwrap();
            assert_eq!(contents.len(), 4 << 20);
            assert_eq!(&contents[0..4], &[0xAB; 4]);
            assert_eq!(contents[50_000], 0);
            assert!(
                wire < (contents.len() / 5) as u64,
                "wire {wire} should be far below {}",
                contents.len()
            );
            // The link only carried roughly the compressed bytes.
            assert!(down.total_bytes() < (1 << 20) as u64 + 65536);
        });
        sim.run();
    }

    #[test]
    fn chunked_fetch_and_upload_round_trip() {
        let sim = Simulation::new();
        let (fs, chan, _down) = rig(&sim, 25.0);
        let fh = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "vm.vmss", 0o644, 0).unwrap();
            let data: Vec<u8> = (0..(3 << 20) + 12345u32).map(|i| (i % 251) as u8).collect();
            f.write(h, 0, &data, 0).unwrap();
            h
        };
        let fs2 = fs.clone();
        sim.spawn("client", move |env| {
            let (mono, _) = chan.fetch(&env, fh).unwrap();
            let (chunked, _) = chan.fetch_chunked(&env, fh, 1 << 20, 4, None).unwrap();
            assert_eq!(mono, chunked);
            // Upload new contents of a different (shorter) length.
            let new: Vec<u8> = (0..(2 << 20) + 7u32).map(|i| (i % 13) as u8).collect();
            chan.upload_chunked(&env, fh, &new, true, 1 << 20, 4, None)
                .unwrap();
            let mut f = fs2.lock();
            assert_eq!(f.size(fh).unwrap(), new.len() as u64);
            let (back, _) = f.read(fh, 0, new.len(), 0).unwrap();
            assert_eq!(back, new);
        });
        sim.run();
    }

    #[test]
    fn chunked_fetch_overlaps_pipeline_stages() {
        let elapsed = |chunk: u32, window: usize| -> f64 {
            let sim = Simulation::new();
            let (fs, chan, _down) = rig(&sim, 14.0);
            let fh = {
                let mut f = fs.lock();
                let root = f.root();
                let h = f.create(root, "m.vmss", 0o644, 0).unwrap();
                let data: Vec<u8> = (0..8 << 20u32).map(|i| (i % 17) as u8).collect();
                f.write(h, 0, &data, 0).unwrap();
                h
            };
            sim.spawn("client", move |env| {
                chan.fetch_chunked(&env, fh, chunk, window, None).unwrap();
            });
            sim.run().as_secs_f64()
        };
        let serial = elapsed(0, 1);
        let pipelined = elapsed(1 << 20, 4);
        assert!(
            pipelined < serial,
            "pipelined {pipelined}s should beat serial {serial}s"
        );
    }

    #[test]
    fn dedup_fetch_reassembles_and_dedupes() {
        let sim = Simulation::new();
        let (fs, chan, down) = rig(&sim, 25.0);
        // 5 MB file whose first and third MB are identical.
        let mb = 1usize << 20;
        let mut data: Vec<u8> = (0..5 * mb).map(|i| (i % 249) as u8).collect();
        let (lo, hi) = data.split_at_mut(2 * mb);
        hi[..mb].copy_from_slice(&lo[..mb]);
        let fh = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "vm.vmss", 0o644, 0).unwrap();
            f.write(h, 0, &data, 0).unwrap();
            h
        };
        let expect = data.clone();
        sim.spawn("client", move |env| {
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            // Cold CAS: the duplicate chunk still rides its twin's fetch.
            let cold = chan
                .fetch_dedup(&env, fh, None, 1 << 20, 4, &cas, &dtel, None)
                .unwrap();
            assert_eq!(cold.contents, expect);
            assert_eq!(dtel.blob_fetches.get(), 4, "4 distinct MB chunks");
            assert_eq!(dtel.recipe_hits.get(), 1, "duplicate chunk served locally");
            assert_eq!(dtel.bytes_avoided.get(), 1 << 20);
            assert!(cold.wire > 0);
            assert_eq!(cold.fresh_bytes, 4 << 20, "4 distinct MB chunks fetched");
            let wire_after_first = down.total_bytes();
            // Warm CAS: everything local, nothing on the wire but the recipe.
            let warm = chan
                .fetch_dedup(&env, fh, None, 1 << 20, 4, &cas, &dtel, None)
                .unwrap();
            assert_eq!(warm.contents, expect);
            assert_eq!(warm.wire, 0);
            assert_eq!(warm.fresh_bytes, 0);
            assert_eq!(dtel.blob_fetches.get(), 4);
            assert_eq!(dtel.recipe_hits.get(), 6);
            // Only the recipe reply crossed the link the second time.
            assert!(down.total_bytes() - wire_after_first < 4096);
        });
        sim.run();
    }

    #[test]
    fn dedup_fetch_with_meta_recipe_hint_matches_chunked() {
        let sim = Simulation::new();
        let (fs, chan, _down) = rig(&sim, 25.0);
        let data: Vec<u8> = (0..(3 << 20) + 777u32).map(|i| (i % 251) as u8).collect();
        let (fh, recipe) = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "vm.vmss", 0o644, 0).unwrap();
            f.write(h, 0, &data, 0).unwrap();
            let r = crate::meta::generate_content_map(&mut f, h, 1 << 20).unwrap();
            (h, r)
        };
        sim.spawn("client", move |env| {
            let (mono, _) = chan.fetch_chunked(&env, fh, 1 << 20, 4, None).unwrap();
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            let deduped = chan
                .fetch_dedup(&env, fh, Some(&recipe), 1 << 20, 4, &cas, &dtel, None)
                .unwrap();
            assert_eq!(mono, deduped.contents);
        });
        sim.run();
    }

    #[test]
    fn dedup_fetch_detects_stale_recipe() {
        let sim = Simulation::new();
        let (fs, chan, _down) = rig(&sim, 100.0);
        let data: Vec<u8> = (0..1 << 20u32).map(|i| (i % 241) as u8).collect();
        let (fh, mut recipe) = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "vm.vmss", 0o644, 0).unwrap();
            f.write(h, 0, &data, 0).unwrap();
            let r = crate::meta::generate_content_map(&mut f, h, 1 << 18).unwrap();
            (h, r)
        };
        // Corrupt one recipe record: the fetched bytes no longer match.
        recipe.records[2].0 = Digest(1, 2);
        sim.spawn("client", move |env| {
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            match chan.fetch_dedup(&env, fh, Some(&recipe), 1 << 18, 4, &cas, &dtel, None) {
                Err(ChannelError::Status(ChanStatus::BadStream)) => {}
                other => panic!("expected BadStream on digest mismatch, got {other:?}"),
            }
        });
        sim.run();
    }

    #[test]
    fn fetch_missing_file_reports_stale() {
        let sim = Simulation::new();
        let (_fs, chan, _down) = rig(&sim, 100.0);
        sim.spawn("client", move |env| {
            let bogus = Handle {
                fileid: 999,
                generation: 9,
            };
            match chan.fetch(&env, bogus) {
                Err(ChannelError::Status(ChanStatus::Stale | ChanStatus::NoEnt)) => {}
                other => panic!("expected stale/noent, got {other:?}"),
            }
        });
        sim.run();
    }

    #[test]
    fn upload_round_trips_contents_to_server() {
        let sim = Simulation::new();
        let (fs, chan, _down) = rig(&sim, 100.0);
        let fh = {
            let mut f = fs.lock();
            let root = f.root();
            f.create(root, "redo.log", 0o644, 0).unwrap()
        };
        let fs2 = fs.clone();
        sim.spawn("client", move |env| {
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 13) as u8).collect();
            chan.upload(&env, fh, &payload, true).unwrap();
            let mut f = fs2.lock();
            let (back, _) = f.read(fh, 0, payload.len(), 0).unwrap();
            assert_eq!(back, payload);
        });
        sim.run();
    }

    #[test]
    fn compressed_fetch_is_faster_than_uncompressed_on_slow_links() {
        let elapsed = |compress: bool| -> f64 {
            let sim = Simulation::new();
            let h = sim.handle();
            let fs = Arc::new(Mutex::new(Fs::new(0)));
            let disk = Disk::new(&h, DiskModel::server_array());
            let server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), compress);
            let up = Link::from_mbps(&h, "up", 25.0, SimDuration::from_millis(17));
            let down = Link::from_mbps(&h, "down", 25.0, SimDuration::from_millis(17));
            let ep = oncrpc::endpoint(&h, up, down, WireSpec::ssh_tunnel(50e6));
            ep.listener
                .serve("chan", Dispatcher::new().register(server).into_handler(), 1);
            let rpc = RpcClient::new(ep.channel, OpaqueAuth::sys(&AuthSys::new("c", 1, 1)));
            let chan = ChannelClient::new(rpc, CodecModel::default());
            let fh = {
                let mut f = fs.lock();
                let root = f.root();
                let h = f.create(root, "m.vmss", 0o644, 0).unwrap();
                f.setattr(h, Some(8 << 20), None, 0).unwrap();
                f.write(h, 0, &[7u8; 100_000], 0).unwrap();
                h
            };
            sim.spawn("client", move |env| {
                chan.fetch(&env, fh).unwrap();
            });
            sim.run().as_secs_f64()
        };
        let with = elapsed(true);
        let without = elapsed(false);
        assert!(
            with < without / 3.0,
            "compressed {with}s should beat raw {without}s"
        );
    }
}
