//! # gvfs — Grid Virtual File System (HPDC 2004 reproduction)
//!
//! The paper's contribution: user-level NFS proxy extensions that make
//! wide-area VM state transfer fast without modifying kernel NFS clients,
//! kernel NFS servers, applications or VM monitors.
//!
//! * [`Proxy`] — the user-level proxy: RPC server toward the kernel
//!   client, RPC client toward the next hop; chains compose into
//!   multi-level hierarchies.
//! * [`BlockCache`] — proxy-managed, set-associative, block-based disk
//!   cache with write-back or write-through policies and bank/frame
//!   structure per the paper.
//! * [`FileCache`] + [`channel`] — whole-file caching fed by the
//!   meta-data-driven file channel (compress → remote copy → uncompress
//!   → read locally), forming heterogeneous disk caching.
//! * [`meta`] — middleware-generated per-file meta-data: zero-block maps
//!   for VM memory state and file-channel action lists.
//! * [`codec`] — the zero-aware compressor standing in for GZIP.
//! * [`IdentityMapper`] — cross-domain authentication: short-lived
//!   middleware credentials mapped to local shadow accounts by
//!   server-side proxies.
//! * [`session`] — middleware session management: establish per-user
//!   proxy chains, signal write-back flushes (session-based consistency).
//! * [`transfer`] — bounded-window pipelined RPC fan-out shared by the
//!   chunked file channel, parallel write-back flush and proxy
//!   read-ahead.
//! * [`digest`] + [`cas`] — content-addressed redundancy elimination:
//!   the canonical 128-bit content hash, per-proxy content store, and
//!   the recipe/blob channel path that ships only bytes the near side
//!   does not already hold.

#![warn(missing_docs)]

pub mod block_cache;
pub mod cas;
pub mod channel;
pub mod codec;
pub mod digest;
pub mod file_cache;
pub mod fleet;
pub mod identity;
pub mod meta;
pub mod proxy;
pub mod session;
pub mod transfer;

pub use block_cache::{BlockCache, BlockCacheConfig, BlockCacheStats, Tag, WritePolicy};
pub use cas::{ContentStore, DedupTel, DedupTuning};
pub use channel::{
    decode_gossip, encode_gossip, ChannelClient, DedupFetch, FileChannelServer, PinnedRecipe,
    CHANNEL_PROGRAM, CHANNEL_V1, MAX_GOSSIP_DIGESTS,
};
pub use codec::CodecModel;
pub use digest::Digest;
pub use file_cache::{CowTuning, DirtyChunks, FileCache, FileCacheStats, FileKey};
pub use fleet::FleetTuning;
pub use identity::{IdentityMapper, MappedAccount};
pub use meta::{
    generate_content_map, generate_zero_map, meta_name_for, ContentMap, FileChannelSpec, MetaFile,
    ZeroMap,
};
pub use proxy::{FlushReport, Proxy, ProxyConfig, ProxyStats};
pub use session::{GvfsSession, Middleware};
pub use transfer::{run_windowed, TransferTel, TransferTuning};
