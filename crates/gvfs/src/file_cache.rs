//! The proxy's whole-file disk cache (the "file cache" of Figure 2).
//!
//! Files arrive here through the meta-data-driven file channel
//! (compress → remote copy → uncompress → read locally); once a file is
//! resident, every request against it is satisfied from the local disk.
//! Together with the block cache this forms the paper's *heterogeneous
//! disk caching* scheme. The file cache also supports write-back: dirty
//! files are re-compressed and uploaded on flush.
//!
//! ## Reference-backed entries (copy-on-write clones, DESIGN.md §5.9)
//!
//! With [`CowTuning`] enabled a file can also be installed as a
//! *reference*: a recipe of `(digest, len)` records resolved against the
//! per-proxy [`ContentStore`] instead of a materialized byte copy. Every
//! shared chunk is pinned in the CAS for the life of the entry (the
//! residency guarantee), so a warm install charges zero disk for
//! resident content; only freshly fetched bytes pay the install write.
//! The first write to a chunk *breaks sharing for that chunk only*: its
//! bytes are materialized into a private overlay (now disk-resident and
//! charged), the pin is released, and the chunk joins the dirty set so
//! flush can upload exactly the diverged ranges. The `bytes` ledger
//! counts disk-resident bytes only — full files by size, reference files
//! by their private overlay — and [`FileCache::validate_accounting`]
//! recomputes it from scratch.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::Env;
use vfs::{Disk, SparseBytes};

use crate::cas::ContentStore;
use crate::digest::{digest, Digest};

/// Knobs for copy-on-write reference installs, carried by
/// [`crate::ProxyConfig`]. [`CowTuning::off`] (the `Default`) keeps the
/// pre-CoW data paths byte-for-byte: every install materializes, exactly
/// as before this subsystem existed. CoW additionally requires dedup —
/// without a [`ContentStore`] there is nothing to reference — so an
/// enabled `cow` with `DedupTuning::off()` is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CowTuning {
    /// Install channel fetches as reference files when a content map is
    /// available, and flush only their diverged chunks.
    pub enabled: bool,
}

impl CowTuning {
    /// Copy-on-write reference installs enabled.
    pub fn on() -> Self {
        CowTuning { enabled: true }
    }

    /// Disabled: the pre-CoW data paths, byte-for-byte.
    pub fn off() -> Self {
        CowTuning { enabled: false }
    }
}

/// A reference-backed file: recipe + CAS + private overlay.
struct RefFile {
    /// The store the recipe resolves through; shared chunks hold pins in
    /// it until broken or the entry is dropped.
    cas: Arc<ContentStore>,
    /// Recipe grid (last chunk may be short).
    chunk_bytes: u32,
    /// `(digest, len)` per chunk, covering `[0, size)`.
    recipe: Vec<(Digest, u32)>,
    /// Chunk index → privately materialized bytes (sharing broken).
    overlay: BTreeMap<u32, Vec<u8>>,
    /// Chunks diverged since the last flush (always ⊆ overlay keys).
    dirty_chunks: BTreeSet<u32>,
}

impl RefFile {
    /// Disk-resident (private overlay) bytes of this entry.
    fn overlay_bytes(&self) -> u64 {
        self.overlay.values().map(|b| b.len() as u64).sum()
    }

    /// Logical length described by the recipe.
    fn total(&self) -> u64 {
        self.recipe.iter().map(|(_, l)| *l as u64).sum()
    }

    /// Bytes of chunk `i`, from the overlay or the pinned CAS entry.
    /// Pins guarantee residency; a miss would be a pin-discipline bug,
    /// so release builds serve zeros rather than panic.
    fn chunk_bytes_of(&self, i: usize) -> Vec<u8> {
        if let Some(b) = self.overlay.get(&(i as u32)) {
            return b.clone();
        }
        let (d, len) = self.recipe[i];
        match self.cas.get(&d) {
            Some(b) => b,
            None => {
                debug_assert!(false, "pinned recipe chunk missing from CAS");
                vec![0u8; len as usize]
            }
        }
    }

    /// Assemble the full current contents (host-side; no time charged,
    /// mirroring the uncharged digest in [`FileCache::install`]).
    fn assemble(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total() as usize);
        for i in 0..self.recipe.len() {
            out.extend_from_slice(&self.chunk_bytes_of(i));
        }
        out
    }

    /// Byte offset where chunk `i` starts.
    fn chunk_offset(&self, i: usize) -> u64 {
        i as u64 * self.chunk_bytes as u64
    }

    /// Read `[offset, offset+len)` clipped to the recipe, returning the
    /// bytes and how many of them came off the disk (private overlay —
    /// shared chunks serve from the pinned host-memory CAS for free).
    fn read_range(&self, offset: u64, len: usize) -> (Vec<u8>, u64) {
        let total = self.total();
        if offset >= total || len == 0 {
            return (Vec::new(), 0);
        }
        let end = total.min(offset + len as u64);
        let cb = self.chunk_bytes as u64;
        let first = (offset / cb) as usize;
        let last = ((end - 1) / cb) as usize;
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut disk = 0u64;
        for i in first..=last {
            let cstart = self.chunk_offset(i);
            let clen = self.recipe[i].1 as u64;
            let s = offset.max(cstart);
            let e = end.min(cstart + clen);
            if s >= e {
                continue;
            }
            if self.overlay.contains_key(&(i as u32)) {
                disk += e - s;
            }
            let chunk = self.chunk_bytes_of(i);
            out.extend_from_slice(&chunk[(s - cstart) as usize..(e - cstart) as usize]);
        }
        (out, disk)
    }

    /// Copy-on-write break: materialize every chunk `[offset,
    /// offset+len)` touches into the overlay (releasing its pin), apply
    /// the write, and mark those chunks dirty. The caller guarantees the
    /// write does not extend past the recipe. Returns the disk bytes the
    /// break wrote (full length of newly materialized chunks + written
    /// spans of already-private ones), the ledger growth (overlay bytes
    /// added — newly private chunks now occupy cache disk), and how many
    /// chunks broke.
    fn cow_write(&mut self, offset: u64, bytes: &[u8]) -> (u64, u64, u64) {
        if bytes.is_empty() {
            return (0, 0, 0);
        }
        let end = offset + bytes.len() as u64;
        let cb = self.chunk_bytes as u64;
        let first = (offset / cb) as usize;
        let last = ((end - 1) / cb) as usize;
        let mut io = 0u64;
        let mut grew = 0u64;
        let mut breaks = 0u64;
        for i in first..=last {
            let (d, clen) = self.recipe[i];
            let cstart = self.chunk_offset(i);
            let s = offset.max(cstart);
            let e = end.min(cstart + clen as u64);
            if s >= e {
                continue;
            }
            let chunk = match self.overlay.entry(i as u32) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    let buf = match self.cas.get(&d) {
                        Some(b) => b,
                        None => {
                            debug_assert!(false, "pinned recipe chunk missing from CAS");
                            vec![0u8; clen as usize]
                        }
                    };
                    self.cas.unpin(&d);
                    breaks += 1;
                    io += clen as u64;
                    grew += clen as u64;
                    slot.insert(buf)
                }
                std::collections::btree_map::Entry::Occupied(o) => {
                    io += e - s;
                    o.into_mut()
                }
            };
            chunk[(s - cstart) as usize..(e - cstart) as usize]
                .copy_from_slice(&bytes[(s - offset) as usize..(e - offset) as usize]);
            self.dirty_chunks.insert(i as u32);
        }
        (io, grew, breaks)
    }
}

impl Drop for RefFile {
    fn drop(&mut self) {
        // Release the residency pins of every still-shared chunk
        // (duplicate digests in the recipe hold one pin per occurrence).
        for (i, (d, _)) in self.recipe.iter().enumerate() {
            if !self.overlay.contains_key(&(i as u32)) {
                self.cas.unpin(d);
            }
        }
    }
}

enum Backing {
    /// Materialized bytes on the cache disk (the historical form).
    Full(SparseBytes),
    /// Recipe + overlay resolved against the proxy's CAS.
    Reference(RefFile),
}

/// Diverged state of a reference-backed file, handed to the flush path
/// by [`FileCache::take_dirty_chunks`]: only the broken chunks travel.
pub struct DirtyChunks {
    /// Current logical file size (reference files never grow past their
    /// recipe; growth converts them to full entries first).
    pub total: u64,
    /// `(offset, bytes)` per diverged chunk, ascending, non-overlapping.
    pub ranges: Vec<(u64, Vec<u8>)>,
    /// Digest of the *full* current contents — what upstream holds after
    /// the ranges are applied over the golden base (for `set_synced`).
    pub full_digest: Digest,
}

/// Identity of a cached file (fileid + generation from the NFS handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileKey {
    /// Inode number.
    pub fileid: u64,
    /// Handle generation.
    pub generation: u64,
}

struct CachedFile {
    backing: Backing,
    size: u64,
    dirty: bool,
    last_use: u64,
    /// Digest of the contents upstream last acknowledged holding (set on
    /// install — the file arrived *from* upstream — and after a
    /// successful upload). A dirty file whose current digest still
    /// matches was rewritten with identical bytes; its upload can be
    /// skipped. Host-side bookkeeping only: no simulated time.
    synced: Option<Digest>,
}

impl CachedFile {
    /// Bytes this entry occupies on the cache disk: full files in full,
    /// reference files only their private overlay.
    fn disk_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Full(_) => self.size,
            Backing::Reference(r) => r.overlay_bytes(),
        }
    }
}

/// Counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct FileCacheStats {
    /// Read requests satisfied from the file cache.
    pub read_hits: u64,
    /// Files installed via the file channel.
    pub installs: u64,
    /// Files evicted for capacity.
    pub evictions: u64,
    /// Installs that created a reference-backed entry (subset of
    /// `installs`).
    pub ref_installs: u64,
    /// Chunks whose sharing was broken by a first write.
    pub cow_breaks: u64,
}

struct Inner {
    // BTreeMap: victim selection and dirty_files() iterate this map, so
    // its order must be deterministic (lint: determinism).
    files: BTreeMap<FileKey, CachedFile>,
    bytes: u64,
    stamp: u64,
    stats: FileCacheStats,
}

/// Whole-file cache on the proxy's local disk.
pub struct FileCache {
    disk: Disk,
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl FileCache {
    /// Create a file cache with the given capacity on `disk`.
    pub fn new(disk: Disk, capacity_bytes: u64) -> Self {
        FileCache {
            disk,
            capacity_bytes,
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                bytes: 0,
                stamp: 0,
                stats: FileCacheStats::default(),
            }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FileCacheStats {
        self.inner.lock().stats
    }

    /// Whether a file is resident.
    pub fn contains(&self, key: FileKey) -> bool {
        self.inner.lock().files.contains_key(&key)
    }

    /// Bytes resident.
    pub fn bytes_stored(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Install a file's full contents (paying the local-disk write for
    /// every byte — a dedup'd fetch saves WAN transfer and origin work,
    /// not the local write of the assembled file; CAS entries live in
    /// host memory, so a CAS hit is no guarantee the bytes are still on
    /// this cache disk). Evicts least-recently-used clean files if over
    /// capacity.
    pub fn install(&self, env: &Env, key: FileKey, contents: &[u8]) {
        {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            let mut data = SparseBytes::new();
            data.write_at(0, contents);
            let size = contents.len() as u64;
            if let Some(old) = inner.files.insert(
                key,
                CachedFile {
                    backing: Backing::Full(data),
                    size,
                    dirty: false,
                    last_use: stamp,
                    synced: Some(digest(contents)),
                },
            ) {
                let old_bytes = old.disk_bytes();
                debug_assert!(
                    inner.bytes >= old_bytes,
                    "file-cache byte accounting underflow"
                );
                inner.bytes -= old_bytes;
            }
            inner.bytes += size;
            inner.stats.installs += 1;
            Self::evict_for_capacity(&mut inner, self.capacity_bytes, key);
        }
        self.disk.sequential_io(env, contents.len() as u64);
    }

    /// Install a file as a *reference*: `recipe` records resolved
    /// against `cas`, every one of which the caller has already pinned
    /// (one pin per record occurrence — ownership of those pins passes
    /// to the entry and is released on break/eviction/replace). Shared
    /// content charges no disk at all; only `fresh_bytes` — the payloads
    /// that actually crossed the upstream link to satisfy this install —
    /// pay the sequential install write.
    pub fn install_reference(
        &self,
        env: &Env,
        key: FileKey,
        cas: Arc<ContentStore>,
        chunk_bytes: u32,
        recipe: Vec<(Digest, u32)>,
        fresh_bytes: u64,
    ) {
        let rf = RefFile {
            cas,
            chunk_bytes,
            recipe,
            overlay: BTreeMap::new(),
            dirty_chunks: BTreeSet::new(),
        };
        let size = rf.total();
        // Host-side digest of the assembled contents, mirroring the
        // uncharged `digest(contents)` of a materialized install: the
        // recipe came *from* upstream, so upstream holds exactly this.
        let synced = digest(&rf.assemble());
        {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            if let Some(old) = inner.files.insert(
                key,
                CachedFile {
                    backing: Backing::Reference(rf),
                    size,
                    dirty: false,
                    last_use: stamp,
                    synced: Some(synced),
                },
            ) {
                let old_bytes = old.disk_bytes();
                debug_assert!(
                    inner.bytes >= old_bytes,
                    "file-cache byte accounting underflow"
                );
                inner.bytes -= old_bytes;
            }
            // A fresh reference has no overlay: zero disk-resident bytes.
            inner.stats.installs += 1;
            inner.stats.ref_installs += 1;
            Self::evict_for_capacity(&mut inner, self.capacity_bytes, key);
        }
        if fresh_bytes > 0 {
            self.disk.sequential_io(env, fresh_bytes);
        }
    }

    /// Capacity enforcement: evict LRU clean files (dirty files must be
    /// uploaded first; they are pinned until flushed). Reference entries
    /// release their CAS pins on removal via `RefFile::drop`.
    fn evict_for_capacity(inner: &mut Inner, capacity_bytes: u64, just_installed: FileKey) {
        while inner.bytes > capacity_bytes {
            let victim = inner
                .files
                .iter()
                .filter(|(k, f)| !f.dirty && **k != just_installed)
                // A reference with no overlay occupies no disk: evicting
                // it frees nothing and would only drop useful pins.
                .filter(|(_, f)| match &f.backing {
                    Backing::Full(_) => true,
                    Backing::Reference(r) => r.overlay_bytes() > 0,
                })
                .min_by_key(|(_, f)| f.last_use)
                .map(|(k, _)| *k);
            match victim.and_then(|k| inner.files.remove(&k)) {
                Some(f) => {
                    let freed = f.disk_bytes();
                    debug_assert!(inner.bytes >= freed, "file-cache byte accounting underflow");
                    inner.bytes -= freed;
                    inner.stats.evictions += 1;
                }
                None => break, // everything is dirty or it's just us
            }
        }
    }

    /// Digest of the contents upstream last acknowledged for this file
    /// (`None` when the file is absent or was never synced).
    pub fn synced_digest(&self, key: FileKey) -> Option<Digest> {
        self.inner.lock().files.get(&key).and_then(|f| f.synced)
    }

    /// Record that upstream now durably holds contents with this digest
    /// (called after a successful channel upload). No-op when absent.
    pub fn set_synced(&self, key: FileKey, d: Digest) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.synced = Some(d);
        }
    }

    /// Forget what upstream holds for this file. Called *before* every
    /// upload attempt: a failed `upload_chunked` may already have
    /// durably applied leading chunks upstream (a torn file), so from
    /// the moment an upload starts until it succeeds the upstream copy
    /// must be treated as unknown — otherwise a VM rewriting the
    /// pre-upload bytes would match the stale digest and skip the
    /// repair upload forever. No-op when absent.
    pub fn clear_synced(&self, key: FileKey) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.synced = None;
        }
    }

    /// Read a range from a resident file, paying local-disk time for the
    /// disk-resident bytes touched. A reference file's shared chunks are
    /// served out of the pinned host-memory CAS (that residency is what
    /// the pin buys — DESIGN.md §5.9), so only its private overlay bytes
    /// charge the disk. Returns `None` if the file is not resident.
    pub fn read(&self, env: &Env, key: FileKey, offset: u64, len: u32) -> Option<(Vec<u8>, bool)> {
        let out = {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            let f = inner.files.get_mut(&key)?;
            f.last_use = stamp;
            let (data, disk_bytes) = match &f.backing {
                Backing::Full(sparse) => {
                    let data = sparse.read_range(offset, len as usize);
                    // Streaming from the local file: positioning
                    // amortized across the whole-file access pattern
                    // these reads come from.
                    let n = data.len().max(1) as u64;
                    (data, n)
                }
                Backing::Reference(r) => r.read_range(offset, len as usize),
            };
            let eof = offset + data.len() as u64 >= f.size;
            inner.stats.read_hits += 1;
            Some((data, eof, disk_bytes))
        };
        let (data, eof, disk_bytes) = out?;
        if disk_bytes > 0 {
            self.disk.stream_io(env, disk_bytes);
        }
        Some((data, eof))
    }

    /// Write a range into a resident file, marking it dirty. On a
    /// reference file this is the copy-on-write break: each touched
    /// chunk is materialized into the private overlay (charged as disk
    /// traffic, pin released), and only those chunks join the dirty set.
    /// A write extending past the recipe converts the entry to a full
    /// file first. Returns false if the file is not resident.
    pub fn write(&self, env: &Env, key: FileKey, offset: u64, bytes: &[u8]) -> bool {
        let io_bytes = {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            match inner.files.get_mut(&key) {
                Some(f) => {
                    // Growth is incompatible with a recipe-bounded
                    // backing: materialize to a full entry first (the
                    // assembled shared bytes become disk-resident and
                    // the ledger charges them; `RefFile::drop` releases
                    // the pins).
                    let mut materialize_delta = 0u64;
                    if let Backing::Reference(r) = &f.backing {
                        if offset + bytes.len() as u64 > f.size {
                            let full = r.assemble();
                            materialize_delta = f.size - r.overlay_bytes();
                            let mut sparse = SparseBytes::new();
                            sparse.write_at(0, &full);
                            f.backing = Backing::Full(sparse);
                        }
                    }
                    let (grew, io, breaks) = match &mut f.backing {
                        Backing::Full(sparse) => {
                            sparse.write_at(offset, bytes);
                            let new_len = sparse.len();
                            // clippy suggests saturating_sub here, but that is exactly
                            // what the exact-accounting invariant bans in this file.
                            #[allow(clippy::implicit_saturating_sub)]
                            let grew = if new_len > f.size {
                                new_len - f.size
                            } else {
                                0
                            };
                            f.size = new_len;
                            (grew, bytes.len().max(1) as u64, 0u64)
                        }
                        Backing::Reference(r) => {
                            let (io, grew, breaks) = r.cow_write(offset, bytes);
                            (grew, io.max(1), breaks)
                        }
                    };
                    f.dirty = true;
                    f.last_use = stamp;
                    inner.bytes += grew + materialize_delta;
                    inner.stats.cow_breaks += breaks;
                    Some(io + materialize_delta)
                }
                None => None,
            }
        };
        match io_bytes {
            Some(io) => {
                self.disk.stream_io(env, io);
                true
            }
            None => false,
        }
    }

    /// Full contents of a resident file (for upload), paying the disk
    /// read; clears the dirty bit. On a reference file only the private
    /// overlay is read off the disk (shared chunks assemble from the
    /// pinned CAS) and the whole dirty-chunk set is consumed — the
    /// backing stays a reference, so the ledger is untouched.
    pub fn take_dirty_contents(&self, env: &Env, key: FileKey) -> Option<Vec<u8>> {
        let (data, disk_read) = {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&key)?;
            if !f.dirty {
                return None;
            }
            f.dirty = false;
            match &mut f.backing {
                Backing::Full(sparse) => {
                    let data = sparse.read_range(0, f.size as usize);
                    let n = data.len() as u64;
                    (data, n)
                }
                Backing::Reference(r) => {
                    r.dirty_chunks.clear();
                    (r.assemble(), r.overlay_bytes())
                }
            }
        };
        self.disk.sequential_io(env, disk_read);
        Some(data)
    }

    /// Diverged chunks of a dirty *reference* file, for a flush that
    /// uploads only the broken ranges (upstream still holds the golden
    /// base the recipe came from). Clears the dirty state; the chunks
    /// stay privately resident. Returns `None` for absent, clean, or
    /// full-backed files — and for a reference re-marked dirty with no
    /// recorded chunk set (e.g. after a failed upload), which must take
    /// the whole-file path instead.
    pub fn take_dirty_chunks(&self, env: &Env, key: FileKey) -> Option<DirtyChunks> {
        let (out, disk_read) = {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&key)?;
            if !f.dirty {
                return None;
            }
            let size = f.size;
            let Backing::Reference(r) = &mut f.backing else {
                return None;
            };
            if r.dirty_chunks.is_empty() {
                return None;
            }
            let mut ranges = Vec::with_capacity(r.dirty_chunks.len());
            let mut disk = 0u64;
            for &i in r.dirty_chunks.iter() {
                let b = match r.overlay.get(&i) {
                    Some(b) => b.clone(),
                    None => {
                        debug_assert!(false, "dirty chunk without overlay bytes");
                        continue;
                    }
                };
                disk += b.len() as u64;
                ranges.push((r.chunk_offset(i as usize), b));
            }
            let full_digest = digest(&r.assemble());
            r.dirty_chunks.clear();
            f.dirty = false;
            (
                DirtyChunks {
                    total: size,
                    ranges,
                    full_digest,
                },
                disk,
            )
        };
        self.disk.sequential_io(env, disk_read);
        Some(out)
    }

    /// Whether a resident file is reference-backed.
    pub fn is_reference(&self, key: FileKey) -> bool {
        matches!(
            self.inner.lock().files.get(&key).map(|f| &f.backing),
            Some(Backing::Reference(_))
        )
    }

    /// Recompute the byte ledger from scratch and assert every
    /// accounting invariant (test and audit hook; the exact-accounting
    /// discipline of PR 1 extended across the shared/private split).
    pub fn validate_accounting(&self) {
        let inner = self.inner.lock();
        let mut total = 0u64;
        for (k, f) in inner.files.iter() {
            match &f.backing {
                Backing::Full(_) => total += f.size,
                Backing::Reference(r) => {
                    assert_eq!(
                        f.size,
                        r.total(),
                        "reference size diverged from its recipe for {k:?}"
                    );
                    assert!(
                        r.dirty_chunks.iter().all(|i| r.overlay.contains_key(i)),
                        "dirty chunk without overlay bytes for {k:?}"
                    );
                    assert!(
                        f.dirty || r.dirty_chunks.is_empty(),
                        "clean file with a non-empty dirty-chunk set for {k:?}"
                    );
                    total += r.overlay_bytes();
                }
            }
        }
        assert_eq!(
            inner.bytes, total,
            "file-cache byte ledger drifted from per-file disk bytes"
        );
    }

    /// Re-mark a resident file dirty. A failed write-back upload calls
    /// this so the contents (still resident) stay queued for the next
    /// flush instead of being silently dropped. No-op when absent.
    pub fn mark_dirty(&self, key: FileKey) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.dirty = true;
        }
    }

    /// Keys of dirty files.
    pub fn dirty_files(&self) -> Vec<FileKey> {
        let inner = self.inner.lock();
        let mut v: Vec<FileKey> = inner
            .files
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    /// The size of a resident file.
    pub fn size_of(&self, key: FileKey) -> Option<u64> {
        self.inner.lock().files.get(&key).map(|f| f.size)
    }

    /// Drop everything (dirty data must have been flushed).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.files.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, SimHandle, Simulation};
    use std::sync::Arc;
    use vfs::DiskModel;

    fn cache(h: &SimHandle, cap: u64) -> Arc<FileCache> {
        Arc::new(FileCache::new(
            Disk::new(
                h,
                DiskModel {
                    seek: SimDuration::from_micros(100),
                    bytes_per_sec: 1e9,
                },
            ),
            cap,
        ))
    }

    fn key(n: u64) -> FileKey {
        FileKey {
            fileid: n,
            generation: 1,
        }
    }

    #[test]
    fn install_read_round_trip_with_eof() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            assert!(cc.read(&env, key(1), 0, 10).is_none());
            cc.install(&env, key(1), b"memory state contents");
            let (data, eof) = cc.read(&env, key(1), 0, 1024).unwrap();
            assert_eq!(data, b"memory state contents");
            assert!(eof);
            let (mid, eof2) = cc.read(&env, key(1), 7, 5).unwrap();
            assert_eq!(mid, b"state");
            assert!(!eof2);
        });
        sim.run();
    }

    #[test]
    fn writes_mark_dirty_and_grow() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), b"0123456789");
            assert!(cc.write(&env, key(1), 8, b"XYZ"));
            assert_eq!(cc.size_of(key(1)), Some(11));
            assert_eq!(cc.dirty_files(), vec![key(1)]);
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_eq!(contents, b"01234567XYZ");
            assert!(cc.dirty_files().is_empty());
            assert!(cc.take_dirty_contents(&env, key(1)).is_none());
        });
        sim.run();
    }

    #[test]
    fn capacity_evicts_lru_clean_files() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 2500);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), &[1u8; 1000]);
            cc.install(&env, key(2), &[2u8; 1000]);
            // Touch 1 so 2 becomes LRU.
            cc.read(&env, key(1), 0, 1).unwrap();
            cc.install(&env, key(3), &[3u8; 1000]);
            assert!(cc.contains(key(1)));
            assert!(!cc.contains(key(2)));
            assert!(cc.contains(key(3)));
            assert_eq!(cc.stats().evictions, 1);
        });
        sim.run();
    }

    #[test]
    fn synced_digest_tracks_installs_and_uploads() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            assert_eq!(cc.synced_digest(key(1)), None);
            cc.install(&env, key(1), b"suspend state");
            assert_eq!(cc.synced_digest(key(1)), Some(digest(b"suspend state")));
            // An identical rewrite dirties the file but leaves the synced
            // digest equal to the current contents' digest.
            assert!(cc.write(&env, key(1), 0, b"suspend state"));
            assert_eq!(cc.dirty_files(), vec![key(1)]);
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_eq!(cc.synced_digest(key(1)), Some(digest(&contents)));
            // A real change diverges; set_synced records the new upload.
            assert!(cc.write(&env, key(1), 0, b"SUSPEND"));
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_ne!(cc.synced_digest(key(1)), Some(digest(&contents)));
            cc.set_synced(key(1), digest(&contents));
            assert_eq!(cc.synced_digest(key(1)), Some(digest(&contents)));
        });
        sim.run();
    }

    #[test]
    fn clear_synced_forgets_the_upstream_digest() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), b"suspend state");
            assert!(cc.synced_digest(key(1)).is_some());
            // An upload attempt starts: upstream state is now unknown
            // until set_synced records a completed upload.
            cc.clear_synced(key(1));
            assert_eq!(cc.synced_digest(key(1)), None);
            cc.set_synced(key(1), digest(b"suspend state"));
            assert_eq!(cc.synced_digest(key(1)), Some(digest(b"suspend state")));
            // Absent files are a no-op, not a panic.
            cc.clear_synced(key(9));
        });
        sim.run();
    }

    #[test]
    fn dirty_files_are_pinned_against_eviction() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 2500);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), &[1u8; 1000]);
            cc.write(&env, key(1), 0, b"dirty");
            cc.install(&env, key(2), &[2u8; 1000]);
            cc.install(&env, key(3), &[3u8; 1000]);
            // Key 2 (clean LRU) went, key 1 stayed despite being older.
            assert!(cc.contains(key(1)));
            assert!(!cc.contains(key(2)));
        });
        sim.run();
    }

    /// Chunk `content` onto `cas` with one pin per record occurrence —
    /// exactly what the proxy's reference-install path does before
    /// handing the recipe (and pin ownership) to `install_reference`.
    fn pinned_recipe(cas: &Arc<ContentStore>, content: &[u8], chunk: u32) -> Vec<(Digest, u32)> {
        content
            .chunks(chunk as usize)
            .map(|c| {
                let d = cas.insert(c);
                assert!(cas.pin(&d));
                (d, c.len() as u32)
            })
            .collect()
    }

    fn golden(len: usize) -> Vec<u8> {
        // Aperiodic so equal-size chunks get distinct digests.
        (0..len as u64)
            .map(|i| ((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u8)
            .collect()
    }

    #[test]
    fn reference_install_serves_reads_with_zero_disk_bytes() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(2500);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            assert!(cc.is_reference(key(1)));
            assert_eq!(cc.bytes_stored(), 0, "shared content charged disk");
            assert_eq!(cc.size_of(key(1)), Some(2500));
            assert_eq!(cc.synced_digest(key(1)), Some(digest(&content)));
            // Reads assemble byte-identically, across chunk boundaries.
            let (data, eof) = cc.read(&env, key(1), 0, 4096).unwrap();
            assert_eq!(data, content);
            assert!(eof);
            let (mid, eof2) = cc.read(&env, key(1), 1000, 100).unwrap();
            assert_eq!(mid, &content[1000..1100]);
            assert!(!eof2);
            assert_eq!(cas.pinned_bytes(), 2500);
            cc.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn cow_break_charges_only_the_broken_chunk() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(4096);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            // First write to chunk 1 breaks sharing for that chunk only.
            assert!(cc.write(&env, key(1), 1500, b"DIVERGED"));
            assert_eq!(cc.bytes_stored(), 1024, "exactly one chunk private");
            assert_eq!(cc.stats().cow_breaks, 1);
            assert_eq!(cas.pinned_bytes(), 3072, "broken chunk still pinned");
            cc.validate_accounting();
            // A second write to the same chunk breaks nothing further.
            assert!(cc.write(&env, key(1), 1024, b"x"));
            assert_eq!(cc.stats().cow_breaks, 1);
            assert_eq!(cc.bytes_stored(), 1024);
            // Guest-visible contents match a materialized equivalent.
            let mut want = content.clone();
            want[1500..1508].copy_from_slice(b"DIVERGED");
            want[1024] = b'x';
            let (data, _) = cc.read(&env, key(1), 0, 4096).unwrap();
            assert_eq!(data, want);
            // Flush hands over exactly the diverged chunk.
            assert_eq!(cc.dirty_files(), vec![key(1)]);
            let dc = cc.take_dirty_chunks(&env, key(1)).unwrap();
            assert_eq!(dc.total, 4096);
            assert_eq!(dc.ranges.len(), 1);
            assert_eq!(dc.ranges[0].0, 1024);
            assert_eq!(dc.ranges[0].1, &want[1024..2048]);
            assert_eq!(dc.full_digest, digest(&want));
            assert!(cc.dirty_files().is_empty());
            assert!(cc.take_dirty_chunks(&env, key(1)).is_none());
            cc.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn take_dirty_contents_on_partial_divergence_keeps_the_ledger_exact() {
        // The satellite-1 audit: a whole-file take on a partially
        // diverged reference must neither convert the entry (double
        // charge) nor drop overlay bytes (under charge).
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(3000);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            assert!(cc.write(&env, key(1), 0, b"new-head"));
            let before = cc.bytes_stored();
            assert_eq!(before, 1024);
            cc.clear_synced(key(1));
            let took = cc.take_dirty_contents(&env, key(1)).unwrap();
            let mut want = content.clone();
            want[..8].copy_from_slice(b"new-head");
            assert_eq!(took, want);
            assert_eq!(cc.bytes_stored(), before, "ledger moved on take");
            assert!(cc.is_reference(key(1)), "take must not convert");
            assert!(cc.take_dirty_chunks(&env, key(1)).is_none());
            cc.validate_accounting();
            // Re-dirtying after a failed upload keeps the full-file path.
            cc.mark_dirty(key(1));
            assert!(cc.take_dirty_chunks(&env, key(1)).is_none());
            assert_eq!(cc.take_dirty_contents(&env, key(1)).unwrap(), want);
            cc.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn replacing_and_clearing_reference_entries_releases_pins() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(2048);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            assert_eq!(cas.pinned_bytes(), 2048);
            // Reinstalling the file as a full copy drops the reference
            // and its pins.
            cc.install(&env, key(1), &content);
            assert_eq!(cas.pinned_bytes(), 0);
            assert_eq!(cc.bytes_stored(), 2048);
            // And a cleared cache holds no pins either.
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(2), cas.clone(), 1024, recipe, 0);
            assert_eq!(cas.pinned_bytes(), 2048);
            cc.clear();
            assert_eq!(cas.pinned_bytes(), 0);
            assert_eq!(cc.bytes_stored(), 0);
            cc.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn extending_write_converts_reference_to_full() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(2000);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            assert!(cc.write(&env, key(1), 1990, b"past-the-end-tail"));
            assert!(!cc.is_reference(key(1)));
            assert_eq!(cc.size_of(key(1)), Some(2007));
            assert_eq!(cc.bytes_stored(), 2007);
            assert_eq!(cas.pinned_bytes(), 0, "conversion must release pins");
            let mut want = content.clone();
            want.resize(2007, 0);
            want[1990..].copy_from_slice(b"past-the-end-tail");
            let (data, _) = cc.read(&env, key(1), 0, 4096).unwrap();
            assert_eq!(data, want);
            cc.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn capacity_pressure_spares_zero_cost_references() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 2500);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            let cas = Arc::new(ContentStore::new(1 << 20));
            let content = golden(2048);
            let recipe = pinned_recipe(&cas, &content, 1024);
            cc.install_reference(&env, key(1), cas.clone(), 1024, recipe, 0);
            // Two full installs blow the 2500-byte budget repeatedly; the
            // zero-overlay reference occupies no disk, so it survives
            // while full files pay.
            cc.install(&env, key(2), &[2u8; 2000]);
            cc.install(&env, key(3), &[3u8; 2000]);
            assert!(cc.contains(key(1)), "free reference evicted");
            assert!(!cc.contains(key(2)));
            assert!(cc.contains(key(3)));
            // Once it carries private bytes it competes like any file.
            assert!(cc.write(&env, key(1), 0, b"p"));
            let dc = cc.take_dirty_chunks(&env, key(1)).unwrap();
            assert_eq!(dc.ranges.len(), 1);
            cc.install(&env, key(4), &[4u8; 2000]);
            assert!(!cc.contains(key(1)), "diverged reference now evictable");
            assert_eq!(cas.pinned_bytes(), 0, "eviction must release pins");
            cc.validate_accounting();
        });
        sim.run();
    }
}
