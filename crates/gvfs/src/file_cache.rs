//! The proxy's whole-file disk cache (the "file cache" of Figure 2).
//!
//! Files arrive here through the meta-data-driven file channel
//! (compress → remote copy → uncompress → read locally); once a file is
//! resident, every request against it is satisfied from the local disk.
//! Together with the block cache this forms the paper's *heterogeneous
//! disk caching* scheme. The file cache also supports write-back: dirty
//! files are re-compressed and uploaded on flush.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use simnet::Env;
use vfs::{Disk, SparseBytes};

use crate::digest::{digest, Digest};

/// Identity of a cached file (fileid + generation from the NFS handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileKey {
    /// Inode number.
    pub fileid: u64,
    /// Handle generation.
    pub generation: u64,
}

struct CachedFile {
    data: SparseBytes,
    size: u64,
    dirty: bool,
    last_use: u64,
    /// Digest of the contents upstream last acknowledged holding (set on
    /// install — the file arrived *from* upstream — and after a
    /// successful upload). A dirty file whose current digest still
    /// matches was rewritten with identical bytes; its upload can be
    /// skipped. Host-side bookkeeping only: no simulated time.
    synced: Option<Digest>,
}

/// Counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct FileCacheStats {
    /// Read requests satisfied from the file cache.
    pub read_hits: u64,
    /// Files installed via the file channel.
    pub installs: u64,
    /// Files evicted for capacity.
    pub evictions: u64,
}

struct Inner {
    // BTreeMap: victim selection and dirty_files() iterate this map, so
    // its order must be deterministic (lint: determinism).
    files: BTreeMap<FileKey, CachedFile>,
    bytes: u64,
    stamp: u64,
    stats: FileCacheStats,
}

/// Whole-file cache on the proxy's local disk.
pub struct FileCache {
    disk: Disk,
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl FileCache {
    /// Create a file cache with the given capacity on `disk`.
    pub fn new(disk: Disk, capacity_bytes: u64) -> Self {
        FileCache {
            disk,
            capacity_bytes,
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                bytes: 0,
                stamp: 0,
                stats: FileCacheStats::default(),
            }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FileCacheStats {
        self.inner.lock().stats
    }

    /// Whether a file is resident.
    pub fn contains(&self, key: FileKey) -> bool {
        self.inner.lock().files.contains_key(&key)
    }

    /// Bytes resident.
    pub fn bytes_stored(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Install a file's full contents (paying the local-disk write for
    /// every byte — a dedup'd fetch saves WAN transfer and origin work,
    /// not the local write of the assembled file; CAS entries live in
    /// host memory, so a CAS hit is no guarantee the bytes are still on
    /// this cache disk). Evicts least-recently-used clean files if over
    /// capacity.
    pub fn install(&self, env: &Env, key: FileKey, contents: &[u8]) {
        {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            let mut data = SparseBytes::new();
            data.write_at(0, contents);
            let size = contents.len() as u64;
            if let Some(old) = inner.files.insert(
                key,
                CachedFile {
                    data,
                    size,
                    dirty: false,
                    last_use: stamp,
                    synced: Some(digest(contents)),
                },
            ) {
                debug_assert!(
                    inner.bytes >= old.size,
                    "file-cache byte accounting underflow"
                );
                inner.bytes -= old.size;
            }
            inner.bytes += size;
            inner.stats.installs += 1;
            // Capacity: evict LRU clean files (dirty files must be
            // uploaded first; they are pinned until flushed).
            while inner.bytes > self.capacity_bytes {
                let victim = inner
                    .files
                    .iter()
                    .filter(|(k, f)| !f.dirty && **k != key)
                    .min_by_key(|(_, f)| f.last_use)
                    .map(|(k, _)| *k);
                match victim.and_then(|k| inner.files.remove(&k)) {
                    Some(f) => {
                        debug_assert!(
                            inner.bytes >= f.size,
                            "file-cache byte accounting underflow"
                        );
                        inner.bytes -= f.size;
                        inner.stats.evictions += 1;
                    }
                    None => break, // everything is dirty or it's just us
                }
            }
        }
        self.disk.sequential_io(env, contents.len() as u64);
    }

    /// Digest of the contents upstream last acknowledged for this file
    /// (`None` when the file is absent or was never synced).
    pub fn synced_digest(&self, key: FileKey) -> Option<Digest> {
        self.inner.lock().files.get(&key).and_then(|f| f.synced)
    }

    /// Record that upstream now durably holds contents with this digest
    /// (called after a successful channel upload). No-op when absent.
    pub fn set_synced(&self, key: FileKey, d: Digest) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.synced = Some(d);
        }
    }

    /// Forget what upstream holds for this file. Called *before* every
    /// upload attempt: a failed `upload_chunked` may already have
    /// durably applied leading chunks upstream (a torn file), so from
    /// the moment an upload starts until it succeeds the upstream copy
    /// must be treated as unknown — otherwise a VM rewriting the
    /// pre-upload bytes would match the stale digest and skip the
    /// repair upload forever. No-op when absent.
    pub fn clear_synced(&self, key: FileKey) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.synced = None;
        }
    }

    /// Read a range from a resident file, paying local-disk time.
    /// Returns `None` if the file is not resident.
    pub fn read(&self, env: &Env, key: FileKey, offset: u64, len: u32) -> Option<(Vec<u8>, bool)> {
        let out = {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            let f = inner.files.get_mut(&key)?;
            f.last_use = stamp;
            let data = f.data.read_range(offset, len as usize);
            let eof = offset + data.len() as u64 >= f.size;
            inner.stats.read_hits += 1;
            Some((data, eof))
        };
        if let Some((data, _)) = &out {
            // Streaming from the local file: positioning amortized across
            // the whole-file access pattern these reads come from.
            self.disk.stream_io(env, data.len().max(1) as u64);
        }
        out
    }

    /// Write a range into a resident file, marking it dirty. Returns
    /// false if the file is not resident.
    pub fn write(&self, env: &Env, key: FileKey, offset: u64, bytes: &[u8]) -> bool {
        let ok = {
            let mut inner = self.inner.lock();
            inner.stamp += 1;
            let stamp = inner.stamp;
            match inner.files.get_mut(&key) {
                Some(f) => {
                    f.data.write_at(offset, bytes);
                    let new_len = f.data.len();
                    // clippy suggests saturating_sub here, but that is exactly
                    // what the exact-accounting invariant bans in this file.
                    #[allow(clippy::implicit_saturating_sub)]
                    let grew = if new_len > f.size {
                        new_len - f.size
                    } else {
                        0
                    };
                    f.size = new_len;
                    f.dirty = true;
                    f.last_use = stamp;
                    if grew > 0 {
                        inner.bytes += grew;
                    }
                    true
                }
                None => false,
            }
        };
        if ok {
            self.disk.stream_io(env, bytes.len().max(1) as u64);
        }
        ok
    }

    /// Full contents of a resident file (for upload), paying the disk
    /// read; clears the dirty bit.
    pub fn take_dirty_contents(&self, env: &Env, key: FileKey) -> Option<Vec<u8>> {
        let data = {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&key)?;
            if !f.dirty {
                return None;
            }
            f.dirty = false;
            f.data.read_range(0, f.size as usize)
        };
        self.disk.sequential_io(env, data.len() as u64);
        Some(data)
    }

    /// Re-mark a resident file dirty. A failed write-back upload calls
    /// this so the contents (still resident) stay queued for the next
    /// flush instead of being silently dropped. No-op when absent.
    pub fn mark_dirty(&self, key: FileKey) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(&key) {
            f.dirty = true;
        }
    }

    /// Keys of dirty files.
    pub fn dirty_files(&self) -> Vec<FileKey> {
        let inner = self.inner.lock();
        let mut v: Vec<FileKey> = inner
            .files
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    /// The size of a resident file.
    pub fn size_of(&self, key: FileKey) -> Option<u64> {
        self.inner.lock().files.get(&key).map(|f| f.size)
    }

    /// Drop everything (dirty data must have been flushed).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.files.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, SimHandle, Simulation};
    use std::sync::Arc;
    use vfs::DiskModel;

    fn cache(h: &SimHandle, cap: u64) -> Arc<FileCache> {
        Arc::new(FileCache::new(
            Disk::new(
                h,
                DiskModel {
                    seek: SimDuration::from_micros(100),
                    bytes_per_sec: 1e9,
                },
            ),
            cap,
        ))
    }

    fn key(n: u64) -> FileKey {
        FileKey {
            fileid: n,
            generation: 1,
        }
    }

    #[test]
    fn install_read_round_trip_with_eof() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            assert!(cc.read(&env, key(1), 0, 10).is_none());
            cc.install(&env, key(1), b"memory state contents");
            let (data, eof) = cc.read(&env, key(1), 0, 1024).unwrap();
            assert_eq!(data, b"memory state contents");
            assert!(eof);
            let (mid, eof2) = cc.read(&env, key(1), 7, 5).unwrap();
            assert_eq!(mid, b"state");
            assert!(!eof2);
        });
        sim.run();
    }

    #[test]
    fn writes_mark_dirty_and_grow() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), b"0123456789");
            assert!(cc.write(&env, key(1), 8, b"XYZ"));
            assert_eq!(cc.size_of(key(1)), Some(11));
            assert_eq!(cc.dirty_files(), vec![key(1)]);
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_eq!(contents, b"01234567XYZ");
            assert!(cc.dirty_files().is_empty());
            assert!(cc.take_dirty_contents(&env, key(1)).is_none());
        });
        sim.run();
    }

    #[test]
    fn capacity_evicts_lru_clean_files() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 2500);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), &[1u8; 1000]);
            cc.install(&env, key(2), &[2u8; 1000]);
            // Touch 1 so 2 becomes LRU.
            cc.read(&env, key(1), 0, 1).unwrap();
            cc.install(&env, key(3), &[3u8; 1000]);
            assert!(cc.contains(key(1)));
            assert!(!cc.contains(key(2)));
            assert!(cc.contains(key(3)));
            assert_eq!(cc.stats().evictions, 1);
        });
        sim.run();
    }

    #[test]
    fn synced_digest_tracks_installs_and_uploads() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            assert_eq!(cc.synced_digest(key(1)), None);
            cc.install(&env, key(1), b"suspend state");
            assert_eq!(cc.synced_digest(key(1)), Some(digest(b"suspend state")));
            // An identical rewrite dirties the file but leaves the synced
            // digest equal to the current contents' digest.
            assert!(cc.write(&env, key(1), 0, b"suspend state"));
            assert_eq!(cc.dirty_files(), vec![key(1)]);
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_eq!(cc.synced_digest(key(1)), Some(digest(&contents)));
            // A real change diverges; set_synced records the new upload.
            assert!(cc.write(&env, key(1), 0, b"SUSPEND"));
            let contents = cc.take_dirty_contents(&env, key(1)).unwrap();
            assert_ne!(cc.synced_digest(key(1)), Some(digest(&contents)));
            cc.set_synced(key(1), digest(&contents));
            assert_eq!(cc.synced_digest(key(1)), Some(digest(&contents)));
        });
        sim.run();
    }

    #[test]
    fn clear_synced_forgets_the_upstream_digest() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 1 << 20);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), b"suspend state");
            assert!(cc.synced_digest(key(1)).is_some());
            // An upload attempt starts: upstream state is now unknown
            // until set_synced records a completed upload.
            cc.clear_synced(key(1));
            assert_eq!(cc.synced_digest(key(1)), None);
            cc.set_synced(key(1), digest(b"suspend state"));
            assert_eq!(cc.synced_digest(key(1)), Some(digest(b"suspend state")));
            // Absent files are a no-op, not a panic.
            cc.clear_synced(key(9));
        });
        sim.run();
    }

    #[test]
    fn dirty_files_are_pinned_against_eviction() {
        let sim = Simulation::new();
        let c = cache(&sim.handle(), 2500);
        let cc = c.clone();
        sim.spawn("t", move |env| {
            cc.install(&env, key(1), &[1u8; 1000]);
            cc.write(&env, key(1), 0, b"dirty");
            cc.install(&env, key(2), &[2u8; 1000]);
            cc.install(&env, key(3), &[3u8; 1000]);
            // Key 2 (clean LRU) went, key 1 stayed despite being older.
            assert!(cc.contains(key(1)));
            assert!(!cc.contains(key(2)));
        });
        sim.run();
    }
}
