//! The proxy-managed, block-based disk cache (paper §3.2.1).
//!
//! Structured like a hardware cache, as the paper describes: the cache
//! consists of **file banks** holding **frames** for data blocks and tags.
//! Banks are created on the local disk on demand; indexing hashes the NFS
//! file handle and offset, with consecutive blocks of a file mapped to
//! consecutive sets to exploit spatial locality; sets are N-way
//! associative with LRU replacement. Caches are configurable in size,
//! associativity and block size (up to the 32 KB NFS limit), support
//! write-back or write-through policies, and can be shared read-only
//! between proxies.
//!
//! All frame accesses charge local-disk time (sequential streaming when
//! the access pattern is sequential, positioning otherwise) — the whole
//! point of the design is that a local disk is much closer than a
//! wide-area server.

use std::collections::HashMap;

use parking_lot::Mutex;
use simnet::telemetry::Counter;
use simnet::{Env, SimHandle};
use vfs::Disk;

/// Write policy for cached writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Forward writes upstream synchronously (cache is still updated).
    WriteThrough,
    /// Absorb writes locally; flush on middleware signal.
    WriteBack,
}

/// Identifies one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// Inode number from the NFS file handle.
    pub fileid: u64,
    /// Handle generation.
    pub generation: u64,
    /// Block index (offset / block_size).
    pub block: u64,
}

/// Geometry and policy of a block cache.
#[derive(Debug, Clone, Copy)]
pub struct BlockCacheConfig {
    /// Number of file banks.
    pub banks: usize,
    /// Sets per bank.
    pub sets_per_bank: usize,
    /// Frames per set (associativity).
    pub assoc: usize,
    /// Block size in bytes.
    pub block_size: u32,
}

impl BlockCacheConfig {
    /// The paper's experimental configuration: 512 banks, 16-way
    /// associative, 8 GB capacity, 32 KB blocks.
    pub fn paper_default() -> Self {
        Self::with_capacity(8 << 30, 512, 16, 32 * 1024)
    }

    /// Derive sets-per-bank from a target capacity.
    pub fn with_capacity(capacity_bytes: u64, banks: usize, assoc: usize, block_size: u32) -> Self {
        assert!(banks > 0 && assoc > 0 && block_size > 0);
        let frames = (capacity_bytes / block_size as u64).max(1) as usize;
        let sets_total = (frames / assoc).max(1);
        let sets_per_bank = (sets_total / banks).max(1);
        BlockCacheConfig {
            banks,
            sets_per_bank,
            assoc,
            block_size,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks as u64 * self.sets_per_bank as u64 * self.assoc as u64 * self.block_size as u64
    }

    /// Total number of sets.
    pub fn total_sets(&self) -> usize {
        self.banks * self.sets_per_bank
    }
}

/// Cache activity counters (a point-in-time view of the telemetry
/// registry's `gvfs/block-cache*` counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockCacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Frames inserted.
    pub insertions: u64,
    /// Frames evicted (any state).
    pub evictions: u64,
    /// Dirty frames evicted (returned for upstream write-back).
    pub dirty_evictions: u64,
    /// Frames written dirty (write-back absorbed writes).
    pub dirty_writes: u64,
}

/// Telemetry-backed counters; `BlockCacheStats` is read out of these.
struct BcTel {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    dirty_evictions: Counter,
    dirty_writes: Counter,
}

impl BcTel {
    fn register(handle: &SimHandle) -> Self {
        let tel = handle.telemetry();
        let inst = tel.instance_name("block-cache");
        let c = |suffix: &str| tel.counter("gvfs", format!("{inst}.{suffix}"));
        BcTel {
            hits: c("hits"),
            misses: c("misses"),
            insertions: c("insertions"),
            evictions: c("evictions"),
            dirty_evictions: c("dirty_evictions"),
            dirty_writes: c("dirty_writes"),
        }
    }
}

struct Frame {
    tag: Tag,
    data: Vec<u8>,
    dirty: bool,
    stamp: u64,
}

struct Inner {
    // sets[global_set] -> frames (≤ assoc)
    sets: Vec<Vec<Frame>>,
    banks_created: Vec<bool>,
    stamp: u64,
    next_seq: HashMap<(u64, u64), u64>, // (fileid, gen) -> expected next block
    bytes_stored: u64,
}

impl Inner {
    /// Exact sum of resident frame payloads — the ground truth that
    /// `bytes_stored` must track incrementally.
    fn recount_bytes(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .map(|f| f.data.len() as u64)
            .sum()
    }

    /// Subtract `n` bytes with an underflow check: accounting drift is a
    /// bug, not something to mask with saturation.
    fn debit_bytes(&mut self, n: u64) {
        debug_assert!(
            self.bytes_stored >= n,
            "block-cache byte accounting underflow: stored {} < debit {}",
            self.bytes_stored,
            n
        );
        // Exact subtraction: an underflow here must show up as loud drift
        // in validate_accounting(), never be clamped to zero.
        self.bytes_stored -= n;
    }
}

/// The proxy disk cache.
pub struct BlockCache {
    cfg: BlockCacheConfig,
    disk: Disk,
    tel: BcTel,
    inner: Mutex<Inner>,
}

fn mix(fileid: u64, generation: u64) -> u64 {
    // 64-bit finalizer (splitmix64-style) over the handle identity.
    let mut x = fileid ^ generation.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    // lint:allow(exact-accounting): deliberate wraparound in the set-index hash, not byte accounting
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    // lint:allow(exact-accounting): deliberate wraparound in the set-index hash, not byte accounting
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

impl BlockCache {
    /// Create a cache over the given local cache disk. Counters register
    /// in `handle`'s telemetry registry under `gvfs/block-cache*`.
    pub fn new(handle: &SimHandle, disk: Disk, cfg: BlockCacheConfig) -> Self {
        BlockCache {
            cfg,
            disk,
            tel: BcTel::register(handle),
            inner: Mutex::new(Inner {
                sets: (0..cfg.total_sets()).map(|_| Vec::new()).collect(),
                banks_created: vec![false; cfg.banks],
                stamp: 0,
                next_seq: HashMap::new(),
                bytes_stored: 0,
            }),
        }
    }

    /// Geometry.
    pub fn config(&self) -> BlockCacheConfig {
        self.cfg
    }

    /// Counter snapshot (reads the shared telemetry counters).
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.tel.hits.get(),
            misses: self.tel.misses.get(),
            insertions: self.tel.insertions.get(),
            evictions: self.tel.evictions.get(),
            dirty_evictions: self.tel.dirty_evictions.get(),
            dirty_writes: self.tel.dirty_writes.get(),
        }
    }

    /// Reset counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.tel.hits.reset();
        self.tel.misses.reset();
        self.tel.insertions.reset();
        self.tel.evictions.reset();
        self.tel.dirty_evictions.reset();
        self.tel.dirty_writes.reset();
    }

    /// Bytes currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.inner.lock().bytes_stored
    }

    /// Assert that the incremental `bytes_stored` counter matches a full
    /// recount of resident frame payloads. Cheap enough for tests; call
    /// after any sequence of inserts/updates/evictions to catch drift.
    pub fn validate_accounting(&self) {
        let inner = self.inner.lock();
        let actual = inner.recount_bytes();
        assert_eq!(
            inner.bytes_stored, actual,
            "block-cache byte accounting drift: tracked {} vs recounted {}",
            inner.bytes_stored, actual
        );
    }

    /// Number of dirty frames.
    pub fn dirty_frames(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .sets
            .iter()
            .map(|s| s.iter().filter(|f| f.dirty).count() as u64)
            .sum()
    }

    /// The set index for a tag: hash of the file handle plus the block
    /// index, so consecutive blocks land in consecutive sets.
    fn set_index(&self, tag: &Tag) -> usize {
        // lint:allow(exact-accounting): deliberate wraparound mixing the block into the hash
        ((mix(tag.fileid, tag.generation).wrapping_add(tag.block)) % self.cfg.total_sets() as u64)
            as usize
    }

    /// Charge local-disk time for touching one frame; sequential streams
    /// skip positioning.
    fn charge_io(&self, env: &Env, tag: &Tag) {
        let sequential = {
            let mut inner = self.inner.lock();
            let key = (tag.fileid, tag.generation);
            let seq = inner.next_seq.get(&key) == Some(&tag.block);
            inner.next_seq.insert(key, tag.block + 1);
            seq
        };
        if sequential {
            self.disk.stream_io(env, self.cfg.block_size as u64);
        } else {
            self.disk.random_io(env, self.cfg.block_size as u64);
        }
    }

    /// Look up a block; a hit pays local-disk time and returns the data.
    pub fn lookup(&self, env: &Env, tag: Tag) -> Option<Vec<u8>> {
        let found = {
            let mut inner = self.inner.lock();
            let set = self.set_index(&tag);
            inner.stamp += 1;
            let stamp = inner.stamp;
            let frames = &mut inner.sets[set];
            match frames.iter_mut().find(|f| f.tag == tag) {
                Some(f) => {
                    f.stamp = stamp;
                    Some(f.data.clone())
                }
                None => None,
            }
        };
        match found {
            Some(data) => {
                self.tel.hits.inc();
                self.charge_io(env, &tag);
                Some(data)
            }
            None => {
                self.tel.misses.inc();
                None
            }
        }
    }

    /// Whether a block is present, without charging time or recency.
    pub fn contains(&self, tag: Tag) -> bool {
        let inner = self.inner.lock();
        let set = self.set_index(&tag);
        inner.sets[set].iter().any(|f| f.tag == tag)
    }

    /// Insert (or overwrite) a block, paying local-disk time. Returns an
    /// evicted dirty block, if any, which the caller must write upstream.
    pub fn insert(
        &self,
        env: &Env,
        tag: Tag,
        data: Vec<u8>,
        dirty: bool,
    ) -> Option<(Tag, Vec<u8>)> {
        debug_assert!(data.len() <= self.cfg.block_size as usize);
        let mut evicted = None;
        {
            let mut inner = self.inner.lock();
            let set = self.set_index(&tag);
            inner.stamp += 1;
            let stamp = inner.stamp;
            let assoc = self.cfg.assoc;
            let existing = inner.sets[set].iter().position(|f| f.tag == tag);
            match existing {
                Some(i) => {
                    // Overwrite in place: account the payload-size delta
                    // (short tail blocks may grow or shrink).
                    let old_len = inner.sets[set][i].data.len() as u64;
                    inner.debit_bytes(old_len);
                    inner.bytes_stored += data.len() as u64;
                    let f = &mut inner.sets[set][i];
                    f.data = data;
                    f.dirty = f.dirty || dirty;
                    f.stamp = stamp;
                }
                None => {
                    if inner.sets[set].len() >= assoc {
                        // Evict LRU (prefer clean frames to avoid
                        // upstream write-backs).
                        let victim_idx = inner.sets[set]
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, f)| (f.dirty, f.stamp))
                            .map(|(i, _)| i)
                            .unwrap_or(0); // set is non-empty: len >= assoc >= 1
                        let victim = inner.sets[set].swap_remove(victim_idx);
                        self.tel.evictions.inc();
                        // Debit what the victim actually held, not the
                        // nominal block size — tail blocks are shorter.
                        let victim_len = victim.data.len() as u64;
                        inner.debit_bytes(victim_len);
                        if victim.dirty {
                            self.tel.dirty_evictions.inc();
                            evicted = Some((victim.tag, victim.data));
                        }
                    }
                    inner.bytes_stored += data.len() as u64;
                    inner.sets[set].push(Frame {
                        tag,
                        data,
                        dirty,
                        stamp,
                    });
                    self.tel.insertions.inc();
                    // Bank creation on demand (bookkeeping only).
                    let bank = set / self.cfg.sets_per_bank;
                    inner.banks_created[bank] = true;
                }
            }
            if dirty {
                self.tel.dirty_writes.inc();
            }
        }
        self.charge_io(env, &tag);
        evicted
    }

    /// Merge bytes into a cached block at `offset_in_block`, marking it
    /// dirty if requested. Returns false if the block is absent.
    pub fn update(
        &self,
        env: &Env,
        tag: Tag,
        offset_in_block: usize,
        bytes: &[u8],
        mark_dirty: bool,
    ) -> bool {
        let updated = {
            let mut inner = self.inner.lock();
            let set = self.set_index(&tag);
            inner.stamp += 1;
            let stamp = inner.stamp;
            let bs = self.cfg.block_size as usize;
            let merged = match inner.sets[set].iter_mut().find(|f| f.tag == tag) {
                Some(f) => {
                    let end = offset_in_block + bytes.len();
                    debug_assert!(end <= bs);
                    let old_len = f.data.len();
                    let grown = if end > old_len {
                        (end - old_len) as u64
                    } else {
                        0
                    };
                    if old_len < end {
                        f.data.resize(end, 0);
                    }
                    f.data[offset_in_block..end].copy_from_slice(bytes);
                    f.dirty = f.dirty || mark_dirty;
                    f.stamp = stamp;
                    Some(grown)
                }
                None => None,
            };
            match merged {
                Some(grown) => {
                    // resize() may have extended the frame payload; keep
                    // the byte accounting in step.
                    inner.bytes_stored += grown;
                    if mark_dirty {
                        self.tel.dirty_writes.inc();
                    }
                    true
                }
                None => false,
            }
        };
        if updated {
            self.charge_io(env, &tag);
        }
        updated
    }

    /// Take every dirty block (clearing dirty bits), sorted by
    /// (fileid, block) — the flush path for middleware-driven write-back.
    /// Pays local-disk time to stream the dirty frames back off the cache
    /// disk.
    pub fn take_dirty(&self, env: &Env) -> Vec<(Tag, Vec<u8>)> {
        let mut out = Vec::new();
        {
            let mut inner = self.inner.lock();
            for set in inner.sets.iter_mut() {
                for f in set.iter_mut() {
                    if f.dirty {
                        f.dirty = false;
                        out.push((f.tag, f.data.clone()));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|(t, _)| *t);
        if !out.is_empty() {
            self.disk
                .sequential_io(env, out.len() as u64 * self.cfg.block_size as u64);
        }
        out
    }

    /// Drop every frame (flush must have happened first; dirty data is
    /// discarded). Used to make caches cold between benchmark runs.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        for set in inner.sets.iter_mut() {
            set.clear();
        }
        inner.bytes_stored = 0;
        inner.next_seq.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, SimHandle, Simulation};
    use vfs::DiskModel;

    fn small_cache(h: &SimHandle, assoc: usize) -> BlockCache {
        let disk = Disk::new(
            h,
            DiskModel {
                seek: SimDuration::from_micros(100),
                bytes_per_sec: 1e9,
            },
        );
        // 2 banks × 2 sets × assoc frames of 1 KB
        BlockCache::new(
            h,
            disk,
            BlockCacheConfig {
                banks: 2,
                sets_per_bank: 2,
                assoc,
                block_size: 1024,
            },
        )
    }

    fn tag(file: u64, block: u64) -> Tag {
        Tag {
            fileid: file,
            generation: 1,
            block,
        }
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = BlockCacheConfig::paper_default();
        assert_eq!(cfg.banks, 512);
        assert_eq!(cfg.assoc, 16);
        assert_eq!(cfg.block_size, 32 * 1024);
        assert_eq!(cfg.capacity_bytes(), 8 << 30);
    }

    #[test]
    fn insert_then_lookup_hits() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 4));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            assert!(c.lookup(&env, tag(1, 0)).is_none());
            c.insert(&env, tag(1, 0), vec![7u8; 1024], false);
            assert_eq!(c.lookup(&env, tag(1, 0)).unwrap(), vec![7u8; 1024]);
            let st = c.stats();
            assert_eq!(st.hits, 1);
            assert_eq!(st.misses, 1);
        });
        sim.run();
    }

    #[test]
    fn consecutive_blocks_map_to_consecutive_sets() {
        let sim = Simulation::new();
        let cache = small_cache(&sim.handle(), 4);
        let s0 = cache.set_index(&tag(9, 0));
        let s1 = cache.set_index(&tag(9, 1));
        let s2 = cache.set_index(&tag(9, 2));
        let total = cache.config().total_sets();
        assert_eq!(s1, (s0 + 1) % total);
        assert_eq!(s2, (s0 + 2) % total);
    }

    #[test]
    fn set_eviction_is_lru_and_prefers_clean_victims() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 2));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            // Three blocks mapping to the same set: same file, strides of
            // total_sets (4) keep the set index constant.
            let t0 = tag(1, 0);
            let t4 = tag(1, 4);
            let t8 = tag(1, 8);
            c.insert(&env, t0, vec![0; 1024], true); // dirty
            c.insert(&env, t4, vec![4; 1024], false); // clean
                                                      // Set full (assoc 2); inserting t8 must evict the CLEAN t4
                                                      // even though t0 is older.
            let evicted = c.insert(&env, t8, vec![8; 1024], false);
            assert!(evicted.is_none(), "clean eviction returns nothing");
            assert!(c.contains(t0), "dirty block must survive");
            assert!(!c.contains(t4));
            // Now both resident are t0(dirty), t8(clean): insert another,
            // evicting t8; then only dirty remains, so the next eviction
            // returns the dirty data for upstream write-back.
            c.insert(&env, tag(1, 12), vec![12; 1024], true);
            let ev = c.insert(&env, tag(1, 16), vec![16; 1024], false);
            assert!(ev.is_some());
            let st = c.stats();
            assert_eq!(st.dirty_evictions, 1);
        });
        sim.run();
    }

    #[test]
    fn update_merges_into_existing_frame() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 4));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            c.insert(&env, tag(2, 0), vec![0xAA; 1024], false);
            assert!(c.update(&env, tag(2, 0), 100, b"XYZ", true));
            let data = c.lookup(&env, tag(2, 0)).unwrap();
            assert_eq!(&data[100..103], b"XYZ");
            assert_eq!(data[99], 0xAA);
            assert_eq!(c.dirty_frames(), 1);
            assert!(!c.update(&env, tag(2, 99), 0, b"no", true));
        });
        sim.run();
    }

    #[test]
    fn take_dirty_returns_sorted_and_clears() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 4));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            c.insert(&env, tag(5, 3), vec![3; 1024], true);
            c.insert(&env, tag(4, 9), vec![9; 1024], true);
            c.insert(&env, tag(4, 1), vec![1; 1024], true);
            c.insert(&env, tag(4, 2), vec![2; 1024], false);
            let dirty = c.take_dirty(&env);
            let keys: Vec<(u64, u64)> = dirty.iter().map(|(t, _)| (t.fileid, t.block)).collect();
            assert_eq!(keys, vec![(4, 1), (4, 9), (5, 3)]);
            assert_eq!(c.dirty_frames(), 0);
            assert!(c.take_dirty(&env).is_empty());
        });
        sim.run();
    }

    #[test]
    fn sequential_hits_are_cheaper_than_random_hits() {
        let sim = Simulation::new();
        let h = sim.handle();
        let disk = Disk::new(
            &h,
            DiskModel {
                seek: SimDuration::from_millis(6),
                bytes_per_sec: 40e6,
            },
        );
        let cache = std::sync::Arc::new(BlockCache::new(
            &h,
            disk,
            BlockCacheConfig::with_capacity(64 << 20, 8, 4, 32 * 1024),
        ));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            for b in 0..64u64 {
                c.insert(&env, tag(1, b), vec![1; 32 * 1024], false);
            }
            let t0 = env.now();
            for b in 0..64u64 {
                c.lookup(&env, tag(1, b)).unwrap();
            }
            let seq_time = env.now() - t0;
            let t1 = env.now();
            // Random-ish order: stride 13 mod 64 visits all blocks.
            for i in 0..64u64 {
                c.lookup(&env, tag(1, (i * 13) % 64)).unwrap();
            }
            let rand_time = env.now() - t1;
            assert!(
                rand_time.as_secs_f64() > seq_time.as_secs_f64() * 3.0,
                "rand {rand_time} vs seq {seq_time}"
            );
        });
        sim.run();
    }

    #[test]
    fn byte_accounting_is_exact_for_tail_blocks() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 2));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            // A short "tail" block must be accounted at its real length,
            // not the nominal block size.
            c.insert(&env, tag(1, 0), vec![1; 300], false);
            assert_eq!(c.bytes_stored(), 300);
            // Overwrite with a longer payload: delta accounted.
            c.insert(&env, tag(1, 0), vec![1; 700], false);
            assert_eq!(c.bytes_stored(), 700);
            // Overwrite with a shorter payload: shrink accounted too.
            c.insert(&env, tag(1, 0), vec![1; 200], false);
            assert_eq!(c.bytes_stored(), 200);
            // update() growing past the current payload end.
            assert!(c.update(&env, tag(1, 0), 150, &[9u8; 100], true));
            assert_eq!(c.bytes_stored(), 250);
            // update() within the payload: no growth.
            assert!(c.update(&env, tag(1, 0), 0, &[9u8; 10], false));
            assert_eq!(c.bytes_stored(), 250);
            c.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn eviction_debits_victim_length_not_block_size() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 2));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            // Same set (stride = total_sets = 4), short payloads. With the
            // old block_size-based accounting each eviction debited 1024
            // for a 100-byte frame, driving bytes_stored to zero via
            // saturating_sub and masking the drift.
            c.insert(&env, tag(1, 0), vec![0; 100], false);
            c.insert(&env, tag(1, 4), vec![0; 200], false);
            assert_eq!(c.bytes_stored(), 300);
            c.insert(&env, tag(1, 8), vec![0; 400], false); // evicts one
            assert_eq!(c.stats().evictions, 1);
            c.validate_accounting();
            // Fill more sets and keep evicting; accounting must stay exact.
            for b in 0..32u64 {
                c.insert(&env, tag(2, b), vec![0; 64 + b as usize], (b % 3) == 0);
            }
            c.validate_accounting();
            let _ = c.take_dirty(&env);
            c.validate_accounting();
        });
        sim.run();
    }

    #[test]
    fn clear_empties_cache() {
        let sim = Simulation::new();
        let cache = std::sync::Arc::new(small_cache(&sim.handle(), 4));
        let c = cache.clone();
        sim.spawn("t", move |env| {
            c.insert(&env, tag(1, 0), vec![1; 1024], false);
            c.clear();
            assert!(!c.contains(tag(1, 0)));
            assert_eq!(c.bytes_stored(), 0);
        });
        sim.run();
    }
}
