//! The GVFS user-level file system proxy.
//!
//! A proxy "behaves both as a server (receiving RPC calls) and a client
//! (issuing RPC calls)" (paper §3.2.1): it accepts NFS RPC traffic from
//! the kernel client below it and forwards misses to the next hop above
//! it — another proxy or the kernel NFS server. Because hops compose,
//! arbitrary chains form: kernel client → client-side proxy (disk caches,
//! meta-data) → LAN second-level cache proxy → server-side proxy
//! (identity mapping) → kernel server.
//!
//! Per-session proxies are dynamically created and configured
//! *per user / per application*: cache size, write policy and meta-data
//! handling are all [`ProxyConfig`] fields, which is the paper's central
//! argument for user-level (rather than kernel) extensions.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use oncrpc::msg::{AcceptStat, CallHeader, RejectStat, ReplyBody, RpcMessage};
use oncrpc::transport::RpcHandler;
use oncrpc::{ProgramError, RpcClient, RpcError};
use parking_lot::Mutex;
use simnet::telemetry::{Counter, Telemetry, TraceEvent};
use simnet::{Env, SimDuration};
use vfs::Handle;
use xdr::{Decode, Decoder, Encode, Encoder};

/// Dirty blocks grouped by `(fileid, generation)`: `(offset, data)` runs
/// awaiting write-back. BTreeMap: flush() iterates it, and write-back
/// order must be deterministic (lint: determinism).
type DirtyByFile = BTreeMap<(u64, u64), Vec<(u64, Vec<u8>)>>;

use nfs3::args::{ReadArgs, WriteArgs};
use nfs3::proto::{
    proc3, DirOpArgs3, Fattr3, Fh3, PostOpAttr, StableHow, Status, WccData, NFS_PROGRAM, NFS_V3,
};

use crate::block_cache::{BlockCache, Tag, WritePolicy};
use crate::channel::{chanproc, ChannelClient, CHANNEL_PROGRAM, CHANNEL_V1};
use crate::file_cache::{FileCache, FileKey};
use crate::identity::IdentityMapper;
use crate::meta::{is_meta_name, meta_name_for, MetaFile};

/// Proxy configuration — middleware sets these per user / per application.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Display name for simulation process labels.
    pub name: String,
    /// Write policy for the block cache.
    pub write_policy: WritePolicy,
    /// Interpret meta-data files (zero maps, file channel).
    pub meta_handling: bool,
    /// CPU cost per proxied call.
    pub per_op_cpu: SimDuration,
    /// When true the block cache is treated as shared read-only: absorbed
    /// writes are disabled regardless of policy (paper: "different
    /// proxies [may] share disk caches for read-only data").
    pub read_only_share: bool,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            name: "gvfs-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: true,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
        }
    }
}

/// Proxy activity counters (a point-in-time view of the telemetry
/// registry's `gvfs/<proxy-name>.*` counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProxyStats {
    /// Calls handled.
    pub calls: u64,
    /// NFS READs seen.
    pub reads: u64,
    /// NFS WRITEs seen.
    pub writes: u64,
    /// Calls forwarded upstream.
    pub forwarded: u64,
    /// READs satisfied from the zero map without any upstream traffic.
    pub zero_filtered: u64,
    /// READs served from the file cache.
    pub file_cache_reads: u64,
    /// Whole files fetched through the file channel.
    pub channel_fetches: u64,
    /// Compressed bytes the channel moved (download direction).
    pub channel_wire_bytes: u64,
    /// WRITEs absorbed by write-back caching.
    pub writes_absorbed: u64,
    /// Blocks pushed upstream by flush or dirty eviction.
    pub blocks_written_back: u64,
}

/// Report from a middleware-driven flush.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushReport {
    /// Dirty blocks written upstream.
    pub blocks: u64,
    /// Bytes written upstream (block path).
    pub block_bytes: u64,
    /// Dirty whole files uploaded through the channel.
    pub files: u64,
    /// Bytes uploaded on the wire (channel path, post-compression).
    pub file_wire_bytes: u64,
}

/// Telemetry-backed counters; `ProxyStats` is read out of these. The
/// instance name is derived from `ProxyConfig::name` (deduplicated with
/// `#2`, `#3`, ... when several proxies share a name in one simulation).
struct PxTel {
    registry: Telemetry,
    inst: String,
    calls: Counter,
    reads: Counter,
    writes: Counter,
    forwarded: Counter,
    zero_filtered: Counter,
    file_cache_reads: Counter,
    channel_fetches: Counter,
    channel_wire_bytes: Counter,
    writes_absorbed: Counter,
    blocks_written_back: Counter,
    /// Dispatch-path failures converted into clean degraded handling
    /// instead of a panic (lint: panic-free-dispatch).
    recovered_errors: Counter,
}

impl PxTel {
    fn register(registry: Telemetry, base: &str) -> Self {
        let inst = registry.instance_name(base);
        let c = |suffix: &str| registry.counter("gvfs", format!("{inst}.{suffix}"));
        PxTel {
            calls: c("calls"),
            reads: c("reads"),
            writes: c("writes"),
            forwarded: c("forwarded"),
            zero_filtered: c("zero_filtered"),
            file_cache_reads: c("file_cache_reads"),
            channel_fetches: c("channel_fetches"),
            channel_wire_bytes: c("channel_wire_bytes"),
            writes_absorbed: c("writes_absorbed"),
            blocks_written_back: c("blocks_written_back"),
            recovered_errors: c("recovered_errors"),
            inst,
            registry,
        }
    }
}

struct ProxyState {
    meta: HashMap<FileKey, Option<Arc<MetaFile>>>,
    sizes: HashMap<FileKey, u64>,
    /// Single-flight guard: file-channel fetches in progress. Concurrent
    /// READ misses on the same file (the kernel client's parallel read
    /// workers) must trigger ONE whole-file transfer, with the rest
    /// blocking until the file cache is populated.
    inflight_fetch: HashMap<FileKey, simnet::Signal>,
    /// Cached file-channel FETCH replies (results bytes), for second-level
    /// proxies serving repeated clonings on a LAN.
    chan_replies: HashMap<FileKey, Vec<u8>>,
}

/// A GVFS proxy instance. Implements [`RpcHandler`], so it plugs directly
/// into an [`oncrpc::Listener`].
pub struct Proxy {
    cfg: ProxyConfig,
    upstream: RpcClient,
    chan: Option<ChannelClient>,
    block_cache: Option<Arc<BlockCache>>,
    file_cache: Option<Arc<FileCache>>,
    identity: Option<Arc<IdentityMapper>>,
    tel: PxTel,
    state: Mutex<ProxyState>,
}

fn key_of(h: Handle) -> FileKey {
    FileKey {
        fileid: h.fileid,
        generation: h.generation,
    }
}

impl Proxy {
    /// Build a proxy forwarding to `upstream`. Counters register in the
    /// telemetry registry of the simulation the upstream channel belongs
    /// to, under `gvfs/<cfg.name>.*`.
    pub fn new(cfg: ProxyConfig, upstream: RpcClient) -> Self {
        let tel = PxTel::register(upstream.channel().handle().telemetry().clone(), &cfg.name);
        Proxy {
            cfg,
            upstream,
            chan: None,
            block_cache: None,
            file_cache: None,
            identity: None,
            tel,
            state: Mutex::new(ProxyState {
                meta: HashMap::new(),
                sizes: HashMap::new(),
                inflight_fetch: HashMap::new(),
                chan_replies: HashMap::new(),
            }),
        }
    }

    /// Attach a block-based disk cache.
    pub fn with_block_cache(mut self, cache: Arc<BlockCache>) -> Self {
        self.block_cache = Some(cache);
        self
    }

    /// Attach a file cache and the channel client used to fill it.
    pub fn with_file_channel(mut self, cache: Arc<FileCache>, chan: ChannelClient) -> Self {
        self.file_cache = Some(cache);
        self.chan = Some(chan);
        self
    }

    /// Attach identity mapping (server-side proxies).
    pub fn with_identity(mut self, mapper: Arc<IdentityMapper>) -> Self {
        self.identity = Some(mapper);
        self
    }

    /// Finalize into a handler for an RPC listener.
    pub fn into_handler(self) -> Arc<Proxy> {
        Arc::new(self)
    }

    /// Counter snapshot (reads the shared telemetry counters).
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            calls: self.tel.calls.get(),
            reads: self.tel.reads.get(),
            writes: self.tel.writes.get(),
            forwarded: self.tel.forwarded.get(),
            zero_filtered: self.tel.zero_filtered.get(),
            file_cache_reads: self.tel.file_cache_reads.get(),
            channel_fetches: self.tel.channel_fetches.get(),
            channel_wire_bytes: self.tel.channel_wire_bytes.get(),
            writes_absorbed: self.tel.writes_absorbed.get(),
            blocks_written_back: self.tel.blocks_written_back.get(),
        }
    }

    /// Reset counters.
    pub fn reset_stats(&self) {
        self.tel.calls.reset();
        self.tel.reads.reset();
        self.tel.writes.reset();
        self.tel.forwarded.reset();
        self.tel.zero_filtered.reset();
        self.tel.file_cache_reads.reset();
        self.tel.channel_fetches.reset();
        self.tel.channel_wire_bytes.reset();
        self.tel.writes_absorbed.reset();
        self.tel.blocks_written_back.reset();
    }

    /// The attached block cache, if any.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The attached file cache, if any.
    pub fn file_cache(&self) -> Option<&Arc<FileCache>> {
        self.file_cache.as_ref()
    }

    // -- forwarding ---------------------------------------------------------

    /// Forward a call upstream and wrap the outcome for the downstream xid.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        prog: u32,
        vers: u32,
        proc: u32,
        args: Vec<u8>,
    ) -> RpcMessage {
        self.tel.forwarded.inc();
        let client = self.upstream.with_cred(cred.clone());
        match client.call(env, prog, vers, proc, args) {
            Ok(results) => RpcMessage::success(xid, results),
            Err(e) => Self::error_reply(xid, e),
        }
    }

    fn error_reply(xid: u32, e: RpcError) -> RpcMessage {
        match e {
            RpcError::Accept(stat) => RpcMessage::accept_error(xid, stat),
            RpcError::Denied(stat) => RpcMessage::denied(xid, stat),
            _ => RpcMessage::accept_error(xid, AcceptStat::SystemErr),
        }
    }

    // -- meta-data ----------------------------------------------------------

    /// On a successful LOOKUP of `name`, discover and load the associated
    /// meta-data file (paper: "the meta-data file is stored in the same
    /// directory ... and has a special filename so that it can be easily
    /// looked up").
    fn discover_meta(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        dir: Handle,
        name: &str,
        subject: Handle,
    ) {
        if !self.cfg.meta_handling || is_meta_name(name) {
            return;
        }
        let key = key_of(subject);
        if self.state.lock().meta.contains_key(&key) {
            return;
        }
        let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
        #[cfg(feature = "debug-trace")]
        eprintln!("[gvfs] meta discovery for {name}");
        let meta = (|| -> Option<Arc<MetaFile>> {
            let (meta_fh, attr) = nfs.lookup(env, dir, &meta_name_for(name)).ok()?;
            let size = attr.map(|a| a.size).unwrap_or(0);
            let mut contents = Vec::with_capacity(size as usize);
            let mut off = 0u64;
            loop {
                let r = nfs.read(env, meta_fh, off, nfs3::MAX_BLOCK).ok()?;
                off += r.data.len() as u64;
                let done = r.eof || r.data.is_empty();
                contents.extend_from_slice(&r.data);
                if done {
                    break;
                }
            }
            MetaFile::from_bytes(&contents).map(Arc::new)
        })();
        #[cfg(feature = "debug-trace")]
        eprintln!("[gvfs] meta for {name}: {}", meta.is_some());
        self.state.lock().meta.insert(key, meta);
    }

    fn meta_for(&self, key: FileKey) -> Option<Arc<MetaFile>> {
        self.state.lock().meta.get(&key).cloned().flatten()
    }

    /// Best known size of a file: local override (absorbed writes), then
    /// meta-data, then unknown.
    fn known_size(&self, key: FileKey) -> Option<u64> {
        let st = self.state.lock();
        if let Some(s) = st.sizes.get(&key) {
            return Some(*s);
        }
        if let Some(Some(m)) = st.meta.get(&key) {
            return Some(m.file_size);
        }
        drop(st);
        self.file_cache.as_ref().and_then(|fc| fc.size_of(key))
    }

    fn bump_size(&self, key: FileKey, end: u64) {
        let mut st = self.state.lock();
        let e = st.sizes.entry(key).or_insert(0);
        *e = (*e).max(end);
    }

    // -- READ ---------------------------------------------------------------

    fn read_reply(xid: u32, data: Vec<u8>, eof: bool) -> RpcMessage {
        let mut enc = Encoder::new();
        enc.put_u32(Status::Ok.as_u32());
        PostOpAttr(None).encode(&mut enc);
        enc.put_u32(data.len() as u32);
        enc.put_bool(eof);
        enc.put_opaque_var(&data);
        RpcMessage::success(xid, enc.into_bytes())
    }

    fn handle_read(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: Vec<u8>,
    ) -> RpcMessage {
        let parsed: Result<ReadArgs, _> = xdr::from_bytes(&args);
        let a = match parsed {
            Ok(a) => a,
            Err(_) => return self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args),
        };
        self.tel.reads.inc();
        let key = key_of(a.file.0);

        // 1. File cache ("read locally" of an installed file).
        if let Some(fc) = &self.file_cache {
            if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                self.tel.file_cache_reads.inc();
                return Self::read_reply(xid, data, eof);
            }
        }

        let meta = if self.cfg.meta_handling {
            self.meta_for(key)
        } else {
            None
        };

        // 2. File channel: fetch the whole file on first access, with
        // single-flight de-duplication across concurrent readers.
        if let (Some(m), Some(fc), Some(chan)) = (&meta, &self.file_cache, &self.chan) {
            if m.channel.is_some() {
                loop {
                    if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                        self.tel.file_cache_reads.inc();
                        return Self::read_reply(xid, data, eof);
                    }
                    // Join an in-progress fetch, or claim the fetch.
                    let waiter = {
                        let mut st = self.state.lock();
                        match st.inflight_fetch.get(&key) {
                            Some(sig) => Some(sig.clone()),
                            None => {
                                st.inflight_fetch
                                    .insert(key, simnet::Signal::new(env.handle()));
                                None
                            }
                        }
                    };
                    match waiter {
                        Some(sig) => {
                            sig.wait(env);
                            // Re-check the file cache (fetch may have
                            // failed; then we claim the retry slot).
                            continue;
                        }
                        None => {
                            let fetched = chan.fetch(env, a.file.0);
                            let result = match fetched {
                                Ok((contents, wire)) => {
                                    #[cfg(feature = "debug-trace")]
                                    eprintln!(
                                        "[gvfs] channel fetch ok: {} bytes, {} wire",
                                        contents.len(),
                                        wire
                                    );
                                    fc.install(env, key, &contents);
                                    self.tel.channel_fetches.inc();
                                    self.tel.channel_wire_bytes.add(wire);
                                    let tr = &self.tel.registry;
                                    if tr.trace_enabled() {
                                        tr.trace(
                                            TraceEvent::new(env.now(), "gvfs", "channel_fetch")
                                                .bytes(wire)
                                                .label("proxy", self.tel.inst.clone()),
                                        );
                                    }
                                    true
                                }
                                Err(_e) => {
                                    #[cfg(feature = "debug-trace")]
                                    eprintln!("[gvfs] channel fetch failed: {_e:?}");
                                    false
                                }
                            };
                            let sig = { self.state.lock().inflight_fetch.remove(&key) };
                            if let Some(sig) = sig {
                                sig.set();
                            }
                            if result {
                                if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                                    self.tel.file_cache_reads.inc();
                                    return Self::read_reply(xid, data, eof);
                                }
                            }
                            break; // channel unusable: block path below
                        }
                    }
                }
            }
        }

        // 3. Zero map: serve all-zero ranges locally.
        if let Some(m) = &meta {
            if let Some(zm) = &m.zero_map {
                let size = self.known_size(key).unwrap_or(m.file_size);
                if zm.range_is_zero(a.offset, a.count) {
                    self.tel.zero_filtered.inc();
                    if a.offset >= size {
                        return Self::read_reply(xid, Vec::new(), true);
                    }
                    let len = (a.count as u64).min(size - a.offset) as usize;
                    let eof = a.offset + len as u64 >= size;
                    return Self::read_reply(xid, vec![0u8; len], eof);
                }
            }
        }

        // 4. Block cache.
        if let Some(bc) = &self.block_cache {
            let bs = bc.config().block_size as u64;
            if a.offset % bs == 0 && a.count as u64 <= bs {
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block: a.offset / bs,
                };
                if let Some(data) = bc.lookup(env, tag) {
                    let take = (a.count as usize).min(data.len());
                    let eof = data.len() < bs as usize
                        || self
                            .known_size(key)
                            .map(|s| a.offset + take as u64 >= s)
                            .unwrap_or(false);
                    return Self::read_reply(xid, data[..take].to_vec(), eof);
                }
                // Miss: forward, then install the returned block.
                let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args);
                if let RpcMessage::Reply {
                    body:
                        ReplyBody::Accepted {
                            stat: AcceptStat::Success,
                            results,
                            ..
                        },
                    ..
                } = &reply
                {
                    if let Some((data, eof)) = parse_read_results(results) {
                        if eof {
                            // Server-confirmed size: lets warm hits report
                            // EOF without re-asking upstream.
                            self.bump_size(key, a.offset + data.len() as u64);
                        }
                        if !data.is_empty() {
                            self.install_clean(env, tag, data, cred);
                        }
                    }
                }
                return reply;
            }
        }

        // 5. Plain forwarding (unaligned or cacheless).
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args)
    }

    fn install_clean(&self, env: &Env, tag: Tag, data: Vec<u8>, cred: &oncrpc::OpaqueAuth) {
        if let Some(bc) = &self.block_cache {
            if let Some((etag, edata)) = bc.insert(env, tag, data, false) {
                // A dirty block fell out: write it upstream now.
                self.writeback_block(env, cred, etag, edata);
            }
        }
    }

    fn writeback_block(&self, env: &Env, cred: &oncrpc::OpaqueAuth, tag: Tag, data: Vec<u8>) {
        let bs = self
            .block_cache
            .as_ref()
            .map(|b| b.config().block_size as u64)
            .unwrap_or(32 * 1024);
        let key = FileKey {
            fileid: tag.fileid,
            generation: tag.generation,
        };
        let off = tag.block * bs;
        let mut payload = data;
        if let Some(size) = self.known_size(key) {
            if off >= size {
                return;
            }
            payload.truncate(((size - off).min(bs)) as usize);
        }
        let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
        let h = Handle {
            fileid: tag.fileid,
            generation: tag.generation,
        };
        let _ = nfs.write(env, h, off, payload, StableHow::Unstable);
        self.tel.blocks_written_back.inc();
    }

    // -- WRITE --------------------------------------------------------------

    fn write_reply(xid: u32, count: u32, committed: StableHow) -> RpcMessage {
        let mut enc = Encoder::new();
        enc.put_u32(Status::Ok.as_u32());
        WccData(None).encode(&mut enc);
        enc.put_u32(count);
        enc.put_u32(committed.as_u32());
        enc.put_u64(nfs3::server::WRITE_VERF);
        RpcMessage::success(xid, enc.into_bytes())
    }

    fn handle_write(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: Vec<u8>,
    ) -> RpcMessage {
        let parsed: Result<WriteArgs, _> = xdr::from_bytes(&args);
        let a = match parsed {
            Ok(a) => a,
            Err(_) => return self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::WRITE, args),
        };
        self.tel.writes.inc();
        let key = key_of(a.file.0);

        // File-cache resident files absorb writes there (dirty upload on
        // flush).
        if let Some(fc) = &self.file_cache {
            if fc.contains(key) && !self.cfg.read_only_share {
                fc.write(env, key, a.offset, &a.data);
                self.bump_size(key, a.offset + a.data.len() as u64);
                self.tel.writes_absorbed.inc();
                return Self::write_reply(xid, a.data.len() as u32, StableHow::FileSync);
            }
        }

        let write_back =
            self.cfg.write_policy == WritePolicy::WriteBack && !self.cfg.read_only_share;

        // Write-back: absorb the write into the block cache. The labeled
        // block replaces the old `expect("checked above")` landmine: a
        // write-back policy without a cache attached now recovers by
        // falling through to the write-through path below.
        'write_back: {
            if !write_back {
                break 'write_back;
            }
            let Some(bc) = self.block_cache.as_ref() else {
                self.tel.recovered_errors.inc();
                break 'write_back;
            };
            let bs = bc.config().block_size as u64;
            let end = a.offset + a.data.len() as u64;
            let mut pos = a.offset;
            while pos < end {
                let block = pos / bs;
                let bstart = block * bs;
                let boff = (pos - bstart) as usize;
                let take = ((bstart + bs).min(end) - pos) as usize;
                let chunk = &a.data[(pos - a.offset) as usize..(pos - a.offset) as usize + take];
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block,
                };
                if !bc.update(env, tag, boff, chunk, true) {
                    // Absent frame. Full-block writes insert directly;
                    // partial writes within the current file need
                    // read-modify-write from upstream first.
                    let full = boff == 0 && take as u64 == bs;
                    let existing_size = self.known_size(key).unwrap_or(0);
                    if full || bstart >= existing_size {
                        let mut data = vec![0u8; boff + take];
                        data[boff..].copy_from_slice(chunk);
                        if let Some((etag, edata)) = bc.insert(env, tag, data, true) {
                            self.writeback_block(env, cred, etag, edata);
                        }
                    } else {
                        let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
                        let mut base = match nfs.read(env, a.file.0, bstart, bs as u32) {
                            Ok(r) => r.data,
                            Err(_) => {
                                // Base fetch for read-modify-write failed:
                                // don't fabricate a zero base — hand the
                                // original WRITE upstream untouched.
                                self.tel.recovered_errors.inc();
                                return self.forward(
                                    env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::WRITE, args,
                                );
                            }
                        };
                        if base.len() < boff + take {
                            base.resize(boff + take, 0);
                        }
                        base[boff..boff + take].copy_from_slice(chunk);
                        if let Some((etag, edata)) = bc.insert(env, tag, base, true) {
                            self.writeback_block(env, cred, etag, edata);
                        }
                    }
                }
                pos += take as u64;
            }
            self.bump_size(key, end);
            self.tel.writes_absorbed.inc();
            return Self::write_reply(xid, a.data.len() as u32, StableHow::FileSync);
        }

        // Write-through: keep the cache coherent, then forward.
        if let Some(bc) = &self.block_cache {
            let bs = bc.config().block_size as u64;
            if a.offset % bs == 0 && a.data.len() as u64 <= bs {
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block: a.offset / bs,
                };
                if !bc.update(env, tag, 0, &a.data, false) && a.data.len() as u64 == bs {
                    if let Some((etag, edata)) = bc.insert(env, tag, a.data.clone(), false) {
                        self.writeback_block(env, cred, etag, edata);
                    }
                }
            }
            self.bump_size(key, a.offset + a.data.len() as u64);
        }
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::WRITE, args)
    }

    // -- GETATTR / COMMIT / LOOKUP -----------------------------------------

    /// Patch the size in a GETATTR reply if we hold absorbed writes that
    /// grew the file beyond what the server knows.
    fn handle_getattr(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: Vec<u8>,
    ) -> RpcMessage {
        let fh: Result<Fh3, _> = xdr::from_bytes(&args);
        let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::GETATTR, args);
        let fh = match fh {
            Ok(f) => f,
            Err(_) => return reply,
        };
        let key = key_of(fh.0);
        let override_size = {
            let st = self.state.lock();
            st.sizes.get(&key).copied()
        };
        let fc_size = self.file_cache.as_ref().and_then(|fc| fc.size_of(key));
        let local = match (override_size, fc_size) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let local = match local {
            Some(s) => s,
            None => return reply,
        };
        if let RpcMessage::Reply {
            xid,
            body:
                ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    results,
                    verf,
                },
        } = reply
        {
            let mut dec = Decoder::new(&results);
            let patched = (|| -> Option<Vec<u8>> {
                let status = dec.get_u32().ok()?;
                if status != Status::Ok.as_u32() {
                    return None;
                }
                let mut attr = Fattr3::decode(&mut dec).ok()?.0;
                if attr.size >= local {
                    return None;
                }
                attr.size = local;
                let mut enc = Encoder::new();
                enc.put_u32(Status::Ok.as_u32());
                Fattr3(attr).encode(&mut enc);
                Some(enc.into_bytes())
            })();
            let results = patched.unwrap_or(results);
            RpcMessage::Reply {
                xid,
                body: ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    results,
                    verf,
                },
            }
        } else {
            reply
        }
    }

    fn handle_commit(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: Vec<u8>,
    ) -> RpcMessage {
        if self.cfg.write_policy == WritePolicy::WriteBack && self.block_cache.is_some() {
            // Data is stable on the proxy's local cache disk; the real
            // upstream flush happens on a middleware signal.
            let mut enc = Encoder::new();
            enc.put_u32(Status::Ok.as_u32());
            WccData(None).encode(&mut enc);
            enc.put_u64(nfs3::server::WRITE_VERF);
            return RpcMessage::success(xid, enc.into_bytes());
        }
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::COMMIT, args)
    }

    fn handle_lookup(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: Vec<u8>,
    ) -> RpcMessage {
        let parsed: Result<DirOpArgs3, _> = xdr::from_bytes(&args);
        let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::LOOKUP, args);
        if let (
            Ok(dirop),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (parsed, &reply)
        {
            let mut dec = Decoder::new(results);
            if dec.get_u32() == Ok(Status::Ok.as_u32()) {
                if let Ok(fh) = Fh3::decode(&mut dec) {
                    self.discover_meta(env, cred, dirop.dir.0, &dirop.name, fh.0);
                }
            }
        }
        reply
    }

    // -- flush (middleware signal) -------------------------------------------

    /// Middleware-driven write-back: push every dirty block and dirty
    /// cached file upstream. The paper implements this as an O/S signal
    /// to the proxy process; here the scenario driver calls it directly
    /// (session-based consistency, §3.2.1).
    pub fn flush(&self, env: &Env, cred: &oncrpc::OpaqueAuth) -> FlushReport {
        let mut report = FlushReport::default();
        if let Some(bc) = &self.block_cache {
            let dirty = bc.take_dirty(env);
            let bs = bc.config().block_size as u64;
            let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
            let mut by_file: DirtyByFile = BTreeMap::new();
            for (tag, data) in dirty {
                by_file
                    .entry((tag.fileid, tag.generation))
                    .or_default()
                    .push((tag.block, data));
            }
            let mut files: Vec<_> = by_file.into_iter().collect();
            files.sort_unstable_by_key(|(k, _)| *k);
            for ((fileid, generation), blocks) in files {
                let h = Handle { fileid, generation };
                let key = FileKey { fileid, generation };
                let size = self.known_size(key);
                for (block, mut data) in blocks {
                    let off = block * bs;
                    if let Some(s) = size {
                        if off >= s {
                            continue;
                        }
                        data.truncate(((s - off).min(bs)) as usize);
                    }
                    report.block_bytes += data.len() as u64;
                    report.blocks += 1;
                    let _ = nfs.write(env, h, off, data, StableHow::Unstable);
                }
                let _ = nfs.commit(env, h);
            }
            self.tel.blocks_written_back.add(report.blocks);
        }
        if let (Some(fc), Some(chan)) = (&self.file_cache, &self.chan) {
            for key in fc.dirty_files() {
                if let Some(contents) = fc.take_dirty_contents(env, key) {
                    let h = Handle {
                        fileid: key.fileid,
                        generation: key.generation,
                    };
                    if let Ok(wire) = chan.upload(env, h, &contents, true) {
                        report.files += 1;
                        report.file_wire_bytes += wire;
                    }
                }
            }
        }
        // Size overrides deliberately survive the flush: `known_size` is
        // consulted by later write-backs and GETATTR patching, and the
        // meta-data fallback still reports the pre-session file size.
        // Clearing here made a post-flush eviction truncate its payload
        // to the stale meta size, silently dropping appended bytes.
        report
    }

    // -- file channel passthrough with caching --------------------------------

    fn handle_channel(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        proc: u32,
        args: Vec<u8>,
    ) -> RpcMessage {
        if proc != chanproc::FETCH {
            return self.forward(env, xid, cred, CHANNEL_PROGRAM, CHANNEL_V1, proc, args);
        }
        let fh: Result<Fh3, _> = xdr::from_bytes(&args);
        let key = match &fh {
            Ok(f) => Some(key_of(f.0)),
            Err(_) => None,
        };
        // Second-level cache: replay a previously fetched compressed
        // stream from the local disk instead of re-crossing the WAN.
        if let Some(k) = key {
            let cached = { self.state.lock().chan_replies.get(&k).cloned() };
            if let Some(results) = cached {
                if let Some(fc) = &self.file_cache {
                    // Charge the local-disk read of the stored stream.
                    let _ = fc;
                }
                env.sleep(self.cfg.per_op_cpu);
                return RpcMessage::success(xid, results);
            }
        }
        let reply = self.forward(env, xid, cred, CHANNEL_PROGRAM, CHANNEL_V1, proc, args);
        if let (
            Some(k),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (key, &reply)
        {
            self.state.lock().chan_replies.insert(k, results.clone());
        }
        reply
    }
}

/// Parse READ3 success results into (data, eof).
fn parse_read_results(results: &[u8]) -> Option<(Vec<u8>, bool)> {
    let mut dec = Decoder::new(results);
    if dec.get_u32().ok()? != Status::Ok.as_u32() {
        return None;
    }
    let _attr = PostOpAttr::decode(&mut dec).ok()?;
    let _count = dec.get_u32().ok()?;
    let eof = dec.get_bool().ok()?;
    let data = dec.get_opaque_var().ok()?;
    Some((data, eof))
}

impl RpcHandler for Proxy {
    fn handle(&self, env: &Env, request: &[u8]) -> Vec<u8> {
        let msg: RpcMessage = match xdr::from_bytes(request) {
            Ok(m) => m,
            Err(_) => return xdr::to_bytes(&RpcMessage::accept_error(0, AcceptStat::GarbageArgs)),
        };
        let (header, args) = match msg {
            RpcMessage::Call { header, args } => (header, args),
            RpcMessage::Reply { xid, .. } => {
                return xdr::to_bytes(&RpcMessage::accept_error(xid, AcceptStat::GarbageArgs))
            }
        };
        let CallHeader {
            xid,
            prog,
            vers,
            proc,
            cred,
            ..
        } = header;
        self.tel.calls.inc();
        if prog == NFS_PROGRAM {
            self.tel
                .registry
                .counter(
                    "gvfs",
                    format!("{}.proc.{}", self.tel.inst, nfs3::proto::proc3_name(proc)),
                )
                .inc();
        }
        env.sleep(self.cfg.per_op_cpu);

        // Server-side proxies authenticate middleware sessions and map
        // them onto local shadow accounts.
        let cred = match &self.identity {
            Some(mapper) => match mapper.map(&cred, env.now().as_nanos()) {
                Ok(mapped) => mapped,
                Err(ProgramError::AuthError(code)) => {
                    return xdr::to_bytes(&RpcMessage::denied(xid, RejectStat::AuthError(code)))
                }
                Err(_) => {
                    return xdr::to_bytes(&RpcMessage::accept_error(xid, AcceptStat::SystemErr))
                }
            },
            None => cred,
        };

        let reply = if prog == CHANNEL_PROGRAM {
            self.handle_channel(env, xid, &cred, proc, args)
        } else if prog != NFS_PROGRAM || vers != NFS_V3 {
            // MOUNT and anything else passes straight through.
            self.forward(env, xid, &cred, prog, vers, proc, args)
        } else {
            match proc {
                proc3::READ => self.handle_read(env, xid, &cred, args),
                proc3::WRITE => self.handle_write(env, xid, &cred, args),
                proc3::GETATTR => self.handle_getattr(env, xid, &cred, args),
                proc3::COMMIT => self.handle_commit(env, xid, &cred, args),
                proc3::LOOKUP => self.handle_lookup(env, xid, &cred, args),
                _ => self.forward(env, xid, &cred, prog, vers, proc, args),
            }
        };
        xdr::to_bytes(&reply)
    }
}
